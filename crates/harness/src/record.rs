//! Structured JSONL record emission for experiment runs.
//!
//! The markdown tables in `EXPERIMENTS.md` are for humans; this module
//! writes the same results as machine-diffable JSONL so `obsdiff` (and CI)
//! can answer "did E9's Reduce phase get slower than last PR?" without a
//! human re-reading tables.
//!
//! One record file holds, in order:
//!
//! 1. a `kind: "manifest"` line — provenance (experiment, scale, git rev,
//!    crate versions); for trial batches, [`mac_sim::obs::RunManifest`]
//!    carries the full `SimConfig`;
//! 2. `kind: "trial"` lines — one [`mac_sim::obs::RunRecord`] per run,
//!    when the producer records at trial granularity;
//! 3. `kind: "cell"` lines — one per table row of the experiment report,
//!    carrying every column as a typed value.
//!
//! Benches write `kind: "bench"` lines in the same schema (see
//! `BENCH_round_engine.json`). Every line is validated by
//! [`validate_line`], which the `schema_check` test runs over everything
//! the suite emits.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use crate::report::ExperimentReport;
use crate::Scale;
use mac_sim::obs::Json;

pub use mac_sim::obs::SCHEMA_VERSION;

/// The git revision of the working tree, when running inside a checkout
/// with `git` on the PATH. Best-effort: failures degrade to `None`.
#[must_use]
pub fn git_rev() -> Option<String> {
    let output = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()?;
    if !output.status.success() {
        return None;
    }
    let rev = String::from_utf8(output.stdout).ok()?;
    let rev = rev.trim();
    if rev.is_empty() {
        None
    } else {
        Some(rev.to_string())
    }
}

/// Parses a table cell into the most specific JSON value: `u64`, then
/// `f64`, then string. Percentages and dimension labels (`"2^10"`) stay
/// strings.
#[must_use]
pub fn cell_value(cell: &str) -> Json {
    if let Ok(v) = cell.parse::<u64>() {
        return Json::UInt(v);
    }
    if let Ok(v) = cell.parse::<f64>() {
        if v.is_finite() {
            return Json::Float(v);
        }
    }
    Json::Str(cell.to_string())
}

/// The manifest line for an experiment-level record file (no single
/// `SimConfig` exists at this granularity — trial-batch producers use
/// [`mac_sim::obs::RunManifest`] instead).
#[must_use]
pub fn experiment_manifest(report: &ExperimentReport, scale: Scale) -> Json {
    Json::obj(vec![
        ("schema_version".into(), SCHEMA_VERSION.into()),
        ("kind".into(), "manifest".into()),
        ("algorithm".into(), report.id.into()),
        ("title".into(), report.title.into()),
        ("scale".into(), format!("{scale:?}").into()),
        ("git_rev".into(), git_rev().into()),
        (
            "crates".into(),
            Json::Obj(vec![
                (
                    "contention-harness".into(),
                    env!("CARGO_PKG_VERSION").into(),
                ),
                ("mac-sim".into(), mac_sim_version().into()),
            ]),
        ),
    ])
}

fn mac_sim_version() -> &'static str {
    // The workspace pins one version for every member crate.
    env!("CARGO_PKG_VERSION")
}

/// Turns a finished experiment report into JSONL lines: one manifest, then
/// one `cell` record per table row. Row identity is `(experiment, section
/// caption, row index)`; the first column doubles as a human-readable key.
#[must_use]
pub fn experiment_records(report: &ExperimentReport, scale: Scale) -> Vec<String> {
    let mut lines = vec![experiment_manifest(report, scale).render()];
    for section in &report.sections {
        let headers = section.table.headers();
        for (row_idx, row) in section.table.rows().iter().enumerate() {
            let record = row_record(report.id, &section.caption, headers, row_idx, row);
            lines.push(record.render());
        }
    }
    lines
}

/// The `kind: "cell"` record for one table row: typed `values` for
/// `obsdiff`, plus the raw `cells` strings for bit-identical resume
/// (formatted floats do not round-trip through parse/reformat, so the
/// resume layer replays the exact strings).
#[must_use]
pub fn row_record(
    experiment: &str,
    section: &str,
    headers: &[String],
    row_idx: usize,
    row: &[String],
) -> Json {
    let values = Json::Obj(
        headers
            .iter()
            .zip(row)
            .map(|(header, cell)| (header.clone(), cell_value(cell)))
            .collect(),
    );
    let cells = Json::Arr(row.iter().map(|c| Json::Str(c.clone())).collect());
    Json::obj(vec![
        ("schema_version".into(), SCHEMA_VERSION.into()),
        ("kind".into(), "cell".into()),
        ("experiment".into(), experiment.into()),
        ("section".into(), section.into()),
        ("row".into(), row_idx.into()),
        (
            "key".into(),
            row.first().map(String::as_str).unwrap_or("").into(),
        ),
        ("values".into(), values),
        ("cells".into(), cells),
    ])
}

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) — the checksum
/// sealing `.part` checkpoint rows. Hand-rolled bitwise form: checkpoint
/// rows are written once per completed table row, so throughput is
/// irrelevant and the repo stays dependency-free.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFF_u32;
    for &byte in bytes {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Renders `record` with a trailing `crc` field sealing it: the checksum
/// covers the record rendered *without* the field, so a verifier strips the
/// last field, re-renders ([`Json`] preserves key order), and compares.
/// Non-object records render unsealed.
#[must_use]
pub fn seal_line(record: &Json) -> String {
    let body = record.render();
    match record {
        Json::Obj(pairs) => {
            let mut sealed = pairs.clone();
            sealed.push(("crc".into(), Json::UInt(u64::from(crc32(body.as_bytes())))));
            Json::Obj(sealed).render()
        }
        _ => body,
    }
}

/// Parses one checkpoint line and verifies its seal, returning the record
/// with the `crc` field stripped — i.e. exactly the [`Json`] that was
/// sealed. Lines without a trailing `crc` field (final `.jsonl` records
/// are deliberately unsealed, and pre-seal checkpoints lack it) pass
/// through unverified.
///
/// # Errors
///
/// Returns a message naming the defect: unparsable JSON, a mistyped `crc`,
/// or a checksum mismatch (bit rot / torn write).
pub fn verify_sealed_line(line: &str) -> Result<Json, String> {
    let value = Json::parse(line)?;
    let Json::Obj(pairs) = &value else {
        return Ok(value);
    };
    match pairs.last() {
        Some((key, crc_field)) if key == "crc" => {
            let stored = crc_field
                .as_u64()
                .and_then(|v| u32::try_from(v).ok())
                .ok_or("mistyped 'crc' field")?;
            let stripped = Json::Obj(pairs[..pairs.len() - 1].to_vec());
            let computed = crc32(stripped.render().as_bytes());
            if computed != stored {
                return Err(format!(
                    "crc mismatch: stored {stored:#010x}, computed {computed:#010x}"
                ));
            }
            Ok(stripped)
        }
        _ => Ok(value),
    }
}

/// A `kind: "quarantine"` record line: one trial (or checkpoint row) the
/// self-healing machinery set aside so the sweep could complete. `detail`
/// carries kind-specific fields (seed/trial/attempts for a quarantined
/// campaign trial, file/line for a corrupted checkpoint row).
#[must_use]
pub fn quarantine_record(experiment: &str, reason: &str, detail: Vec<(String, Json)>) -> Json {
    let mut fields = vec![
        ("schema_version".into(), SCHEMA_VERSION.into()),
        ("kind".into(), "quarantine".into()),
        ("experiment".into(), experiment.into()),
        ("reason".into(), reason.into()),
    ];
    fields.extend(detail);
    Json::obj(fields)
}

/// A `kind: "bench"` record line.
#[must_use]
pub fn bench_record(name: &str, mean_ns: f64, iters: u64) -> Json {
    Json::obj(vec![
        ("schema_version".into(), SCHEMA_VERSION.into()),
        ("kind".into(), "bench".into()),
        ("name".into(), name.into()),
        ("mean_ns".into(), mean_ns.into()),
        ("iters".into(), iters.into()),
    ])
}

/// Writes JSONL lines to `path`, creating parent directories. The write is
/// atomic — body goes to a `.tmp` sibling first, then renames over `path` —
/// so a kill mid-write leaves either the old complete file or the new one,
/// never a torn hybrid.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_jsonl(path: &Path, lines: &[String]) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    let mut body = String::new();
    for line in lines {
        let _ = writeln!(body, "{line}");
    }
    let tmp = tmp_sibling(path);
    fs::write(&tmp, body)?;
    fs::rename(&tmp, path)
}

/// The `.tmp` staging sibling of `path` (same directory, so the final
/// rename never crosses a filesystem boundary).
fn tmp_sibling(path: &Path) -> std::path::PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Loads a JSONL record file, parsing every non-empty line.
///
/// # Errors
///
/// Returns a message naming the offending line on parse failure.
pub fn load_jsonl(path: &Path) -> Result<Vec<Json>, String> {
    let body =
        fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    body.lines()
        .enumerate()
        .filter(|(_, line)| !line.trim().is_empty())
        .map(|(idx, line)| {
            Json::parse(line).map_err(|e| format!("{}:{}: {e}", path.display(), idx + 1))
        })
        .collect()
}

/// Validates one JSONL line against the record schema: every record needs
/// `schema_version` and a known `kind`, and each kind has required typed
/// fields. This is the repo's schema validator — no external tool.
///
/// # Errors
///
/// Returns a message naming the first violated constraint.
pub fn validate_line(line: &str) -> Result<(), String> {
    let value = Json::parse(line)?;
    validate_record(&value)
}

/// [`validate_line`] for an already-parsed record.
///
/// # Errors
///
/// Returns a message naming the first violated constraint.
pub fn validate_record(value: &Json) -> Result<(), String> {
    let version = value
        .get("schema_version")
        .and_then(Json::as_u64)
        .ok_or("missing or mistyped 'schema_version'")?;
    if version != SCHEMA_VERSION {
        return Err(format!(
            "schema_version {version} != supported {SCHEMA_VERSION}"
        ));
    }
    let kind = value
        .get("kind")
        .and_then(Json::as_str)
        .ok_or("missing or mistyped 'kind'")?;
    let need_str = |key: &str| {
        value
            .get(key)
            .and_then(Json::as_str)
            .map(|_| ())
            .ok_or(format!("{kind} record: missing or mistyped '{key}'"))
    };
    let need_u64 = |key: &str| {
        value
            .get(key)
            .and_then(Json::as_u64)
            .map(|_| ())
            .ok_or(format!("{kind} record: missing or mistyped '{key}'"))
    };
    let need_num = |key: &str| {
        value
            .get(key)
            .and_then(Json::as_f64)
            .map(|_| ())
            .ok_or(format!("{kind} record: missing or mistyped '{key}'"))
    };
    match kind {
        "manifest" => {
            need_str("algorithm")?;
        }
        "trial" => {
            for key in [
                "seed",
                "rounds",
                "transmissions",
                "listens",
                "max_node_transmissions",
                "wall_ns",
            ] {
                need_u64(key)?;
            }
            let spans = value
                .get("spans")
                .and_then(Json::as_arr)
                .ok_or("trial record: missing or mistyped 'spans'")?;
            for span in spans {
                span.get("label")
                    .and_then(Json::as_str)
                    .ok_or("trial span: missing 'label'")?;
                for key in [
                    "start_round",
                    "end_round",
                    "rounds",
                    "transmissions",
                    "listens",
                    "wall_ns",
                ] {
                    span.get(key)
                        .and_then(Json::as_u64)
                        .ok_or(format!("trial span: missing or mistyped '{key}'"))?;
                }
            }
            let channels = value
                .get("channels")
                .and_then(Json::as_arr)
                .ok_or("trial record: missing or mistyped 'channels'")?;
            for tally in channels {
                for key in ["channel", "silences", "messages", "collisions"] {
                    tally
                        .get(key)
                        .and_then(Json::as_u64)
                        .ok_or(format!("trial channel tally: missing or mistyped '{key}'"))?;
                }
            }
        }
        "cell" => {
            need_str("experiment")?;
            need_str("section")?;
            need_u64("row")?;
            value
                .get("values")
                .and_then(Json::as_obj)
                .ok_or("cell record: missing or mistyped 'values'")?;
            // Raw row strings are optional (added for resume); when present
            // every element must be a string.
            if let Some(cells) = value.get("cells") {
                let cells = cells
                    .as_arr()
                    .ok_or("cell record: mistyped 'cells' (want array)")?;
                for cell in cells {
                    cell.as_str()
                        .ok_or("cell record: non-string entry in 'cells'")?;
                }
            }
        }
        "bench" => {
            need_str("name")?;
            need_num("mean_ns")?;
            need_u64("iters")?;
        }
        "quarantine" => {
            need_str("experiment")?;
            need_str("reason")?;
        }
        "snapshot" => {
            need_u64("seq")?;
            for key in ["counters", "gauges", "histograms"] {
                value
                    .get(key)
                    .and_then(Json::as_obj)
                    .ok_or(format!("snapshot record: missing or mistyped '{key}'"))?;
            }
            // Round-trip through the typed parser: bucket arrays, shifts,
            // and scalar types all check out or name the defect.
            mac_sim::MetricsSnapshot::from_json(value).map(|_| ())?;
        }
        other => return Err(format!("unknown record kind '{other}'")),
    }
    Ok(())
}

/// Checkpointing record sink with resume: the persistence half of the
/// campaign layer.
///
/// For each experiment the store keeps an *incremental* `<id>.jsonl.part`
/// file — a minimal manifest line followed by one `cell` record per
/// completed table row, flushed as rows stream out of the campaign pool —
/// and replaces it with the complete `<id>.jsonl` (manifest + every cell)
/// when the experiment finishes. A run killed mid-sweep therefore leaves
/// behind exactly the rows that completed.
///
/// Opened with [`RecordStore::resume`], the store loads previously
/// completed rows (preferring the final `.jsonl`, falling back to a
/// `.part`, tolerating a truncated trailing line) and serves them through
/// [`RecordStore::stored_row`] so the scheduler only re-runs the
/// remainder. Rows are replayed as the *raw formatted strings* recorded in
/// the `cells` field — formatted floats do not round-trip through
/// parse/reformat, and replaying exact strings is what makes a resumed
/// run's output bit-identical to an uninterrupted one. Records from a
/// different [`Scale`] are ignored wholesale: quick rows must never leak
/// into a full sweep.
#[derive(Debug)]
pub struct RecordStore {
    dir: std::path::PathBuf,
    resume: bool,
    current: Option<OpenExperiment>,
    quarantined: Vec<QuarantinedRow>,
}

/// One checkpoint line set aside during resume because it was damaged —
/// unparsable JSON, a failed [`crc32`] seal, or a malformed record. The
/// surrounding intact rows still load (and replay byte-exactly); the
/// damaged row is simply re-run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedRow {
    /// The checkpoint file the line came from.
    pub file: std::path::PathBuf,
    /// 1-indexed line number within that file.
    pub line: usize,
    /// What was wrong with it.
    pub reason: String,
}

#[derive(Debug)]
struct OpenExperiment {
    id: String,
    part_path: std::path::PathBuf,
    part: fs::File,
    loaded: std::collections::HashMap<(String, usize), Vec<String>>,
}

impl RecordStore {
    /// Opens a fresh store in `dir` (created if missing); any prior
    /// records are ignored and will be overwritten experiment by
    /// experiment.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn create(dir: impl Into<std::path::PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        // A fresh store starts a fresh metric history; only resumed
        // stores append to an existing side stream.
        match fs::remove_file(dir.join("metrics.jsonl")) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        Ok(RecordStore {
            dir,
            resume: false,
            current: None,
            quarantined: Vec::new(),
        })
    }

    /// Opens `dir` for resumption: completed rows found in existing
    /// `.jsonl` / `.jsonl.part` files (at a matching scale) are replayed
    /// instead of re-run.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn resume(dir: impl Into<std::path::PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(RecordStore {
            dir,
            resume: true,
            current: None,
            quarantined: Vec::new(),
        })
    }

    /// The directory records are written to.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Checkpoint lines quarantined while resuming, across every
    /// experiment this store has begun. Empty unless a checkpoint file was
    /// damaged (bit rot, torn write, manual edit).
    #[must_use]
    pub fn quarantined(&self) -> &[QuarantinedRow] {
        &self.quarantined
    }

    /// Starts (or resumes) the experiment with registry id `id` (`"e9"`):
    /// loads any previously completed rows, then opens a fresh `.part`
    /// file seeded with a minimal manifest and the replayed rows, so the
    /// checkpoint stays complete even if this run is also killed.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn begin_experiment(&mut self, id: &str, scale: Scale) -> io::Result<()> {
        use io::Write as _;
        let id = id.to_lowercase();
        let part_path = self.dir.join(format!("{id}.jsonl.part"));
        let mut loaded = std::collections::HashMap::new();
        if self.resume {
            let final_path = self.dir.join(format!("{id}.jsonl"));
            for source in [&final_path, &part_path] {
                if source.exists() {
                    let (rows, damaged) = load_completed_rows(source, scale);
                    loaded = rows;
                    self.quarantined.extend(damaged);
                    break;
                }
            }
        }
        // Stage the fresh checkpoint in a `.tmp` sibling and rename it into
        // place: a kill mid-replay must not have half-truncated the very
        // checkpoint being resumed from.
        let tmp_path = tmp_sibling(&part_path);
        let mut staged = fs::File::create(&tmp_path)?;
        let manifest = Json::obj(vec![
            ("schema_version".into(), SCHEMA_VERSION.into()),
            ("kind".into(), "manifest".into()),
            ("algorithm".into(), id.to_uppercase().into()),
            ("scale".into(), format!("{scale:?}").into()),
            ("partial".into(), Json::Bool(true)),
        ]);
        writeln!(staged, "{}", seal_line(&manifest))?;
        let mut replay: Vec<(&(String, usize), &Vec<String>)> = loaded.iter().collect();
        replay.sort();
        for ((section, row), cells) in replay {
            let record = row_record(&id.to_uppercase(), section, &[], *row, cells);
            writeln!(staged, "{}", seal_line(&record))?;
        }
        staged.flush()?;
        drop(staged);
        fs::rename(&tmp_path, &part_path)?;
        let part = fs::OpenOptions::new().append(true).open(&part_path)?;
        self.current = Some(OpenExperiment {
            id,
            part_path,
            part,
            loaded,
        });
        Ok(())
    }

    /// A previously completed row for the open experiment, if the store
    /// was opened for resume and has one.
    #[must_use]
    pub fn stored_row(&self, section: &str, row: usize) -> Option<Vec<String>> {
        self.current
            .as_ref()?
            .loaded
            .get(&(section.to_string(), row))
            .cloned()
    }

    /// Appends one completed row to the open experiment's `.part` file
    /// and flushes, so the checkpoint survives a kill at any moment. The
    /// line is sealed with a [`crc32`] checksum ([`seal_line`]) so a resume
    /// can tell bit rot from a benign mid-line truncation.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; errors if no experiment is open.
    pub fn record_row(
        &mut self,
        section: &str,
        headers: &[String],
        row: usize,
        cells: &[String],
    ) -> io::Result<()> {
        use io::Write as _;
        let open = self
            .current
            .as_mut()
            .ok_or_else(|| io::Error::other("record_row outside begin/finish_experiment"))?;
        let record = row_record(&open.id.to_uppercase(), section, headers, row, cells);
        writeln!(open.part, "{}", seal_line(&record))?;
        open.part.flush()
    }

    /// Appends one metrics snapshot to the store's `metrics.jsonl` side
    /// stream and flushes — and, when an experiment is open, a sealed
    /// copy to its `.part` checkpoint, so a killed sweep keeps its metric
    /// history alongside its rows. Snapshot lines never enter the final
    /// `<id>.jsonl` outputs: those stay byte-identical whether or not
    /// telemetry was attached.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn record_snapshot(&mut self, snapshot: &mac_sim::MetricsSnapshot) -> io::Result<()> {
        use io::Write as _;
        let path = self.metrics_path();
        let mut file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)?;
        writeln!(file, "{}", snapshot.to_jsonl_line())?;
        file.flush()?;
        if let Some(open) = self.current.as_mut() {
            writeln!(open.part, "{}", seal_line(&snapshot.to_json()))?;
            open.part.flush()?;
        }
        Ok(())
    }

    /// The metrics side stream path (`<dir>/metrics.jsonl`).
    #[must_use]
    pub fn metrics_path(&self) -> std::path::PathBuf {
        self.dir.join("metrics.jsonl")
    }

    /// Snapshot lines already in the metrics side stream — the sequence
    /// number a resumed sweep's hub should continue from
    /// ([`mac_sim::MetricsHub::set_seq`]), so a resumed metric history
    /// extends the original instead of restarting at zero.
    #[must_use]
    pub fn snapshot_count(&self) -> u64 {
        fs::read_to_string(self.metrics_path())
            .map(|body| body.lines().filter(|l| !l.trim().is_empty()).count() as u64)
            .unwrap_or(0)
    }

    /// Completes the open experiment: writes the full `<id>.jsonl`
    /// (manifest + every cell record, identical whether or not the run
    /// was resumed) and removes the `.part` checkpoint.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn finish_experiment(&mut self, report: &ExperimentReport, scale: Scale) -> io::Result<()> {
        let Some(open) = self.current.take() else {
            return Err(io::Error::other(
                "finish_experiment without begin_experiment",
            ));
        };
        let lines = experiment_records(report, scale);
        let path = self.dir.join(format!("{}.jsonl", open.id));
        write_jsonl(&path, &lines)?;
        drop(open.part);
        match fs::remove_file(&open.part_path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }
}

/// Loads the completed rows of one record file, keyed by `(section, row)`,
/// plus a quarantine report of the damaged lines.
///
/// Tolerant by design — a file truncated mid-line by a kill, or with a row
/// corrupted by bit rot, must still yield every *intact* row: each damaged
/// line (unparsable, failed [`crc32`] seal, or malformed record) is
/// quarantined and reported while its neighbours load normally. Only
/// `cell` records carrying a `cells` string array count as rows. If the
/// file's manifest declares a different scale, the whole file is ignored
/// (deliberate, not damage — no quarantine).
#[allow(clippy::type_complexity)]
fn load_completed_rows(
    path: &Path,
    scale: Scale,
) -> (
    std::collections::HashMap<(String, usize), Vec<String>>,
    Vec<QuarantinedRow>,
) {
    let mut rows = std::collections::HashMap::new();
    let mut damaged = Vec::new();
    let Ok(raw) = fs::read(path) else {
        return (rows, damaged);
    };
    // Lossy decoding keeps a single flipped byte from discarding the whole
    // checkpoint: the mangled line fails its seal and is quarantined alone,
    // while every byte-intact neighbour still loads.
    let body = String::from_utf8_lossy(&raw);
    let want_scale = format!("{scale:?}");
    let mut quarantine = |line_no: usize, reason: String| {
        damaged.push(QuarantinedRow {
            file: path.to_path_buf(),
            line: line_no,
            reason,
        });
    };
    for (idx, line) in body.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value = match verify_sealed_line(line) {
            Ok(value) => value,
            Err(reason) => {
                quarantine(idx + 1, reason);
                continue;
            }
        };
        match value.get("kind").and_then(Json::as_str) {
            Some("manifest") if value.get("scale").and_then(Json::as_str) != Some(&want_scale) => {
                rows.clear();
                damaged.clear();
                return (rows, damaged);
            }
            Some("cell") => {
                let Some(section) = value.get("section").and_then(Json::as_str) else {
                    quarantine(idx + 1, "cell record: missing 'section'".into());
                    continue;
                };
                let Some(row) = value.get("row").and_then(Json::as_u64) else {
                    quarantine(idx + 1, "cell record: missing 'row'".into());
                    continue;
                };
                let Some(cells) = value.get("cells").and_then(Json::as_arr) else {
                    quarantine(idx + 1, "cell record: missing 'cells'".into());
                    continue;
                };
                let Some(strings) = cells
                    .iter()
                    .map(|c| c.as_str().map(String::from))
                    .collect::<Option<Vec<String>>>()
                else {
                    quarantine(idx + 1, "cell record: non-string entry in 'cells'".into());
                    continue;
                };
                #[allow(clippy::cast_possible_truncation)]
                rows.insert((section.to_string(), row as usize), strings);
            }
            Some(_) => {}
            None => quarantine(idx + 1, "record without a 'kind'".into()),
        }
    }
    (rows, damaged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use contention_analysis::Table;

    fn sample_report() -> ExperimentReport {
        let mut report = ExperimentReport::new("E0", "sample");
        let mut table = Table::new(&["n", "rounds", "ratio"]);
        table.row(&["2^10", "123", "1.5"]);
        table.row(&["2^12", "145", "1.6"]);
        report.section("rounds vs n", table);
        report
    }

    #[test]
    fn experiment_records_emit_manifest_then_cells() {
        let lines = experiment_records(&sample_report(), Scale::Quick);
        assert_eq!(lines.len(), 3);
        for line in &lines {
            validate_line(line).unwrap();
        }
        let manifest = Json::parse(&lines[0]).unwrap();
        assert_eq!(
            manifest.get("kind").and_then(Json::as_str),
            Some("manifest")
        );
        assert_eq!(manifest.get("algorithm").and_then(Json::as_str), Some("E0"));
        let cell = Json::parse(&lines[1]).unwrap();
        assert_eq!(cell.get("kind").and_then(Json::as_str), Some("cell"));
        assert_eq!(cell.get("key").and_then(Json::as_str), Some("2^10"));
        let values = cell.get("values").unwrap();
        assert_eq!(values.get("rounds").and_then(Json::as_u64), Some(123));
        assert_eq!(values.get("ratio").and_then(Json::as_f64), Some(1.5));
        assert_eq!(values.get("n").and_then(Json::as_str), Some("2^10"));
    }

    #[test]
    fn validate_rejects_bad_records() {
        assert!(validate_line("{}").is_err());
        assert!(validate_line(r#"{"schema_version":99,"kind":"cell"}"#).is_err());
        // v1 records are rejected wholesale: v2 only added the snapshot
        // kind, so v1 files are regenerated, not migrated.
        assert!(validate_line(
            r#"{"schema_version":1,"kind":"bench","name":"x","mean_ns":1.5,"iters":10}"#
        )
        .is_err());
        assert!(validate_line(r#"{"schema_version":2,"kind":"wat"}"#).is_err());
        assert!(validate_line(r#"{"schema_version":2,"kind":"bench","name":"x"}"#).is_err());
        assert!(validate_line(
            r#"{"schema_version":2,"kind":"bench","name":"x","mean_ns":1.5,"iters":10}"#
        )
        .is_ok());
    }

    #[test]
    fn snapshot_records_validate() {
        use mac_sim::MetricsHub;
        let hub = MetricsHub::new(2);
        hub.with_shard(0, |reg| {
            reg.count("engine_rounds_total", 41);
            reg.observe("engine_round_acts", 7);
        });
        let snap = hub.snapshot();
        validate_line(&snap.to_jsonl_line()).unwrap();
        // A snapshot missing its seq is rejected.
        assert!(validate_line(r#"{"schema_version":2,"kind":"snapshot"}"#).is_err());
        // Mistyped histograms are rejected by the typed round-trip.
        assert!(validate_line(
            r#"{"schema_version":2,"kind":"snapshot","seq":0,"counters":{},"gauges":{},"histograms":{"h":{"buckets":"nope"}}}"#
        )
        .is_err());
    }

    #[test]
    fn trial_records_validate() {
        use mac_sim::trials::run_trials_recorded;
        use mac_sim::{Action, ChannelId, Engine, SimConfig};
        use rand::rngs::SmallRng;

        struct Beacon;
        impl mac_sim::Protocol for Beacon {
            type Msg = u8;
            fn act(&mut self, _: &mac_sim::RoundContext, _: &mut SmallRng) -> Action<u8> {
                Action::transmit(ChannelId::PRIMARY, 0)
            }
            fn observe(
                &mut self,
                _: &mac_sim::RoundContext,
                _: mac_sim::Feedback<u8>,
                _: &mut SmallRng,
            ) {
            }
            fn status(&self) -> mac_sim::Status {
                mac_sim::Status::Active
            }
        }

        let pairs = run_trials_recorded(3, 7, |seed| {
            let mut engine = Engine::new(SimConfig::new(2).seed(seed));
            engine.add_node(Beacon);
            engine
        });
        for (_, record) in &pairs {
            validate_line(&record.to_jsonl_line()).unwrap();
        }
    }

    #[test]
    fn jsonl_roundtrips_through_disk() {
        let dir = std::env::temp_dir().join("contention-record-test");
        let path = dir.join("e0.jsonl");
        let lines = experiment_records(&sample_report(), Scale::Quick);
        write_jsonl(&path, &lines).unwrap();
        let back = load_jsonl(&path).unwrap();
        assert_eq!(back.len(), lines.len());
        for record in &back {
            validate_record(record).unwrap();
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_checkpoints_rows_and_resumes_them() {
        let dir = std::env::temp_dir().join("contention-store-test-resume");
        let _ = std::fs::remove_dir_all(&dir);
        let headers: Vec<String> = vec!["n".into(), "rounds".into()];

        // First run: two rows complete, then the process "dies" (no finish).
        let mut store = RecordStore::create(&dir).unwrap();
        store.begin_experiment("e99", Scale::Quick).unwrap();
        store
            .record_row("rounds vs n", &headers, 0, &["2^10".into(), "123".into()])
            .unwrap();
        store
            .record_row("rounds vs n", &headers, 1, &["2^12".into(), "145".into()])
            .unwrap();
        drop(store);
        assert!(dir.join("e99.jsonl.part").exists());
        assert!(!dir.join("e99.jsonl").exists());

        // Resume: both rows come back; a third completes; finalize.
        let mut store = RecordStore::resume(&dir).unwrap();
        store.begin_experiment("e99", Scale::Quick).unwrap();
        assert_eq!(
            store.stored_row("rounds vs n", 0),
            Some(vec!["2^10".into(), "123".into()])
        );
        assert_eq!(
            store.stored_row("rounds vs n", 1),
            Some(vec!["2^12".into(), "145".into()])
        );
        assert_eq!(store.stored_row("rounds vs n", 2), None);
        store
            .record_row("rounds vs n", &headers, 2, &["2^14".into(), "170".into()])
            .unwrap();

        let mut report = ExperimentReport::new("E99", "resume smoke");
        let mut table = Table::new(&["n", "rounds"]);
        table.row(&["2^10", "123"]);
        table.row(&["2^12", "145"]);
        table.row(&["2^14", "170"]);
        report.section("rounds vs n", table);
        store.finish_experiment(&report, Scale::Quick).unwrap();

        assert!(dir.join("e99.jsonl").exists());
        assert!(!dir.join("e99.jsonl.part").exists());
        for record in load_jsonl(&dir.join("e99.jsonl")).unwrap() {
            validate_record(&record).unwrap();
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_ignores_records_at_a_different_scale() {
        let dir = std::env::temp_dir().join("contention-store-test-scale");
        let _ = std::fs::remove_dir_all(&dir);
        let headers: Vec<String> = vec!["x".into()];
        let mut store = RecordStore::create(&dir).unwrap();
        store.begin_experiment("e98", Scale::Quick).unwrap();
        store.record_row("s", &headers, 0, &["1".into()]).unwrap();
        drop(store);

        let mut store = RecordStore::resume(&dir).unwrap();
        store.begin_experiment("e98", Scale::Full).unwrap();
        assert_eq!(
            store.stored_row("s", 0),
            None,
            "quick rows leaked into full"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_tolerates_a_truncated_trailing_line() {
        let dir = std::env::temp_dir().join("contention-store-test-trunc");
        let _ = std::fs::remove_dir_all(&dir);
        let headers: Vec<String> = vec!["x".into()];
        let mut store = RecordStore::create(&dir).unwrap();
        store.begin_experiment("e97", Scale::Quick).unwrap();
        store.record_row("s", &headers, 0, &["1".into()]).unwrap();
        store.record_row("s", &headers, 1, &["2".into()]).unwrap();
        drop(store);

        // Chop the file mid-way through the final record, as a kill would.
        let part = dir.join("e97.jsonl.part");
        let body = std::fs::read_to_string(&part).unwrap();
        std::fs::write(&part, &body[..body.len() - 10]).unwrap();

        let mut store = RecordStore::resume(&dir).unwrap();
        store.begin_experiment("e97", Scale::Quick).unwrap();
        assert_eq!(store.stored_row("s", 0), Some(vec!["1".into()]));
        assert_eq!(
            store.stored_row("s", 1),
            None,
            "truncated row must not load"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshots_stream_to_the_side_file_and_survive_in_the_checkpoint() {
        use mac_sim::MetricsHub;
        let dir = std::env::temp_dir().join("contention-store-test-metrics");
        let _ = std::fs::remove_dir_all(&dir);
        let hub = MetricsHub::new(2);
        hub.with_shard(0, |reg| reg.count("campaign_trials_done_total", 5));

        let mut store = RecordStore::create(&dir).unwrap();
        store.begin_experiment("e95", Scale::Quick).unwrap();
        store.record_snapshot(&hub.snapshot()).unwrap();
        hub.with_shard(1, |reg| reg.count("campaign_trials_done_total", 3));
        store.record_snapshot(&hub.snapshot()).unwrap();
        assert_eq!(store.snapshot_count(), 2);

        // Side stream: two plain, valid snapshot lines with advancing seq.
        let lines = load_jsonl(&store.metrics_path()).unwrap();
        assert_eq!(lines.len(), 2);
        for record in &lines {
            validate_record(record).unwrap();
        }
        assert_eq!(lines[0].get("seq").and_then(Json::as_u64), Some(0));
        assert_eq!(lines[1].get("seq").and_then(Json::as_u64), Some(1));

        // Checkpoint: the sealed copies ride in the .part and verify.
        let part_body = std::fs::read_to_string(dir.join("e95.jsonl.part")).unwrap();
        let snapshot_lines: Vec<_> = part_body
            .lines()
            .filter(|l| l.contains("\"kind\":\"snapshot\""))
            .collect();
        assert_eq!(snapshot_lines.len(), 2);
        for line in snapshot_lines {
            verify_sealed_line(line).unwrap();
        }

        // A resumed store keeps the history; a fresh one truncates it.
        drop(store);
        let store = RecordStore::resume(&dir).unwrap();
        assert_eq!(store.snapshot_count(), 2);
        drop(store);
        let store = RecordStore::create(&dir).unwrap();
        assert_eq!(store.snapshot_count(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        // The canonical CRC-32 check: crc32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn sealed_lines_roundtrip_and_detect_corruption() {
        let record = row_record("E0", "s", &["n".into()], 3, &["2^10".into()]);
        let sealed = seal_line(&record);
        // The seal verifies and strips back to the original record.
        let back = verify_sealed_line(&sealed).unwrap();
        assert_eq!(back.render(), record.render());
        // Unsealed lines (final .jsonl records) pass through untouched.
        let plain = record.render();
        assert_eq!(verify_sealed_line(&plain).unwrap().render(), plain);
        // Any single-character corruption of the sealed payload is caught.
        let corrupted = sealed.replace("2^10", "2^11");
        let err = verify_sealed_line(&corrupted).unwrap_err();
        assert!(err.contains("crc mismatch"), "{err}");
    }

    #[test]
    fn resume_quarantines_a_corrupted_row_and_keeps_the_rest() {
        let dir = std::env::temp_dir().join("contention-store-test-corrupt");
        let _ = std::fs::remove_dir_all(&dir);
        let headers: Vec<String> = vec!["x".into()];
        let mut store = RecordStore::create(&dir).unwrap();
        store.begin_experiment("e96", Scale::Quick).unwrap();
        store.record_row("s", &headers, 0, &["10".into()]).unwrap();
        store.record_row("s", &headers, 1, &["20".into()]).unwrap();
        store.record_row("s", &headers, 2, &["30".into()]).unwrap();
        drop(store);

        // Flip one digit inside row 1's sealed payload: still valid JSON,
        // but the seal no longer matches.
        let part = dir.join("e96.jsonl.part");
        let body = std::fs::read_to_string(&part).unwrap();
        let tampered = body.replace("\"20\"", "\"21\"");
        assert_ne!(body, tampered, "tamper target not found");
        std::fs::write(&part, tampered).unwrap();

        let mut store = RecordStore::resume(&dir).unwrap();
        store.begin_experiment("e96", Scale::Quick).unwrap();
        assert_eq!(store.stored_row("s", 0), Some(vec!["10".into()]));
        assert_eq!(store.stored_row("s", 1), None, "tampered row must not load");
        assert_eq!(store.stored_row("s", 2), Some(vec!["30".into()]));
        assert_eq!(store.quarantined().len(), 1);
        let q = &store.quarantined()[0];
        assert_eq!(q.file, part);
        assert_eq!(q.line, 3, "manifest is line 1, row 1 is line 3");
        assert!(q.reason.contains("crc mismatch"), "{}", q.reason);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn quarantine_records_validate() {
        let record = quarantine_record(
            "E7",
            "panicked after 2 attempts",
            vec![("seed".into(), Json::UInt(1005))],
        );
        validate_record(&record).unwrap();
        assert!(validate_line(r#"{"schema_version":2,"kind":"quarantine"}"#).is_err());
    }

    #[test]
    fn cell_value_types() {
        assert_eq!(cell_value("42"), Json::UInt(42));
        assert_eq!(cell_value("1.25"), Json::Float(1.25));
        assert_eq!(cell_value("2^10"), Json::Str("2^10".into()));
        assert_eq!(cell_value(""), Json::Str(String::new()));
    }
}
