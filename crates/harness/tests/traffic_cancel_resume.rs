//! Deadline and resume behaviour for the dynamic-arrivals experiment.
//!
//! E21's fault section runs *horizonless* traffic sweeps (the run ends
//! when the backlog drains or the round budget trips), which is exactly
//! the shape that can wedge under a cooperative deadline if any layer
//! waits on "all packets delivered" instead of polling the token. This
//! suite pins the contract end to end through the `repro` binary:
//!
//! * a deadline mid-E21 exits with code 3, leaves a checkpoint, and
//!   terminates promptly (no wedge);
//! * `--resume` completes the sweep bit-identically to an uninterrupted
//!   run, at a different worker count.
//!
//! Companion to `resume_bit_identity.rs`, which pins the same contract
//! for an in-process cancel on a non-traffic experiment.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output, Stdio};
use std::time::{Duration, Instant};

const ID: &str = "e21";

/// Runs `repro` with the given args, failing the test if the process is
/// still alive after `limit` — a wedged run must fail loudly, not hang
/// the suite.
fn repro_within(limit: Duration, args: &[&str]) -> Output {
    let mut child = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("repro spawns");
    let started = Instant::now();
    loop {
        match child.try_wait().expect("wait on repro") {
            Some(_) => return child.wait_with_output().expect("collect repro output"),
            None if started.elapsed() > limit => {
                let _ = child.kill();
                panic!("repro {args:?} wedged: still running after {limit:?}");
            }
            None => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("contention-traffic-cancel")
        .join(name);
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create record dir");
    dir
}

fn record_path(dir: &Path) -> PathBuf {
    dir.join(format!("{ID}.jsonl"))
}

#[test]
fn deadline_mid_e21_exits_three_and_resumes_bit_identically() {
    let limit = Duration::from_secs(300);

    // Reference: uninterrupted quick E21.
    let reference_dir = fresh_dir("reference");
    let reference = repro_within(
        limit,
        &[
            "--quick",
            ID,
            "--record-dir",
            reference_dir.to_str().unwrap(),
            "--workers",
            "2",
        ],
    );
    assert_eq!(
        reference.status.code(),
        Some(0),
        "reference run failed: {}",
        String::from_utf8_lossy(&reference.stderr)
    );
    let reference_bytes = fs::read(record_path(&reference_dir)).expect("reference record");

    // Interrupted: a deadline far shorter than the sweep. The process must
    // terminate on its own (repro_within panics on a wedge) with exit 3.
    let interrupted_dir = fresh_dir("interrupted");
    let interrupted = repro_within(
        limit,
        &[
            "--quick",
            ID,
            "--record-dir",
            interrupted_dir.to_str().unwrap(),
            "--workers",
            "2",
            "--deadline",
            "0.05",
        ],
    );
    let checkpoint = interrupted_dir.join(format!("{ID}.jsonl.part"));
    match interrupted.status.code() {
        Some(3) => {
            assert!(
                checkpoint.exists(),
                "deadline expiry leaves a checkpoint behind"
            );
            assert!(
                !record_path(&interrupted_dir).exists(),
                "a deadline-cancelled run must not finalize its record"
            );
        }
        // On an absurdly fast machine the sweep may beat the deadline;
        // the resume below then degenerates to a replay — still checked.
        Some(0) => {}
        code => panic!(
            "deadline run exited with {code:?}, expected 3 (or 0 if it finished): {}",
            String::from_utf8_lossy(&interrupted.stderr)
        ),
    }

    // Resume at a different worker count: bit-identical record, no
    // checkpoint left behind.
    let resumed = repro_within(
        limit,
        &[
            "--quick",
            ID,
            "--resume",
            interrupted_dir.to_str().unwrap(),
            "--workers",
            "3",
        ],
    );
    assert_eq!(
        resumed.status.code(),
        Some(0),
        "resumed run failed: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    assert!(!checkpoint.exists(), "finalizing removes the checkpoint");
    let resumed_bytes = fs::read(record_path(&interrupted_dir)).expect("resumed record");
    assert_eq!(
        resumed_bytes, reference_bytes,
        "resumed E21 record must be byte-identical to an uninterrupted run"
    );

    let _ = fs::remove_dir_all(std::env::temp_dir().join("contention-traffic-cancel"));
}
