//! End-to-end resume bit-identity: an experiment cancelled mid-sweep and
//! then resumed from its checkpoint must produce exactly the output an
//! uninterrupted run produces — the same rendered markdown and the same
//! record-file bytes. This is the contract `repro --resume` advertises.
//!
//! The record files carry no timestamps (manifest fields are schema
//! version, kind, algorithm, title, scale, git rev, crate versions — all
//! stable within one checkout), so comparing raw bytes is valid.

use contention_harness::{experiments, RecordStore, RunCtx, Scale, SweepCancelled};
use mac_sim::campaign::CancelToken;
use std::fs;
use std::path::Path;
use std::time::{Duration, Instant};

/// E7 at quick scale: many cheap rows, so a mid-flight cancel lands
/// between row checkpoints rather than before the first one.
const ID: &str = "e7";

fn run_full(dir: &Path) -> String {
    let ctx = RunCtx::new(Scale::Quick)
        .workers(3)
        .record_store(RecordStore::create(dir).expect("create record dir"));
    let report = experiments::run_one(ID, &ctx).expect("registered id");
    format!("{report}")
}

/// Runs `ID` into `dir`, cancelling as soon as at least two rows have been
/// checkpointed. Returns `true` if the cancel actually interrupted the
/// sweep (on a fast machine the run may finish first — still a valid,
/// if weaker, resume scenario).
fn run_interrupted(dir: &Path) -> bool {
    let token = CancelToken::new();
    let part = dir.join(format!("{ID}.jsonl.part"));
    let watcher = {
        let token = token.clone();
        std::thread::spawn(move || {
            let started = Instant::now();
            while started.elapsed() < Duration::from_secs(60) && !token.is_cancelled() {
                // Manifest line + >= 2 row lines in the checkpoint.
                let lines = fs::read_to_string(&part)
                    .map(|body| body.lines().count())
                    .unwrap_or(0);
                if lines >= 3 {
                    token.cancel();
                    return;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
        })
    };
    let ctx = RunCtx::new(Scale::Quick)
        .workers(2)
        .cancel_token(token.clone())
        .record_store(RecordStore::create(dir).expect("create record dir"));
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        experiments::run_one(ID, &ctx)
    }));
    token.cancel();
    watcher.join().expect("watcher thread");
    match outcome {
        Ok(_) => false,
        Err(payload) if payload.downcast_ref::<SweepCancelled>().is_some() => true,
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

fn run_resumed(dir: &Path) -> String {
    let ctx = RunCtx::new(Scale::Quick)
        .workers(5)
        .record_store(RecordStore::resume(dir).expect("resume record dir"));
    let report = experiments::run_one(ID, &ctx).expect("registered id");
    format!("{report}")
}

#[test]
fn kill_and_resume_is_bit_identical() {
    let base = std::env::temp_dir().join("contention-resume-bit-identity");
    let _ = fs::remove_dir_all(&base);
    let uninterrupted = base.join("uninterrupted");
    let interrupted = base.join("interrupted");

    let reference = run_full(&uninterrupted);
    let final_a = uninterrupted.join(format!("{ID}.jsonl"));
    assert!(final_a.exists(), "uninterrupted run finalizes its record");

    let cancelled = run_interrupted(&interrupted);
    let final_b = interrupted.join(format!("{ID}.jsonl"));
    if cancelled {
        // A genuine mid-sweep kill: only the checkpoint survives, holding
        // a proper prefix of the rows.
        assert!(
            interrupted.join(format!("{ID}.jsonl.part")).exists(),
            "cancelled run leaves its checkpoint behind"
        );
        assert!(
            !final_b.exists(),
            "cancelled run must not have finalized its record"
        );
    }

    // Resume with a different worker count; output must not depend on how
    // far the interrupted run got or on scheduling.
    let resumed = run_resumed(&interrupted);
    assert_eq!(
        resumed, reference,
        "resumed markdown must match an uninterrupted run"
    );
    assert!(
        !interrupted.join(format!("{ID}.jsonl.part")).exists(),
        "finalizing removes the checkpoint"
    );
    let bytes_a = fs::read(&final_a).expect("reference record");
    let bytes_b = fs::read(&final_b).expect("resumed record");
    assert_eq!(
        bytes_a, bytes_b,
        "resumed record file must be byte-identical to the reference"
    );

    let _ = fs::remove_dir_all(&base);
}
