//! Schema conformance for every JSONL surface the workspace emits.
//!
//! Three producers write run-record JSONL: `repro --record-dir` (manifest +
//! cell records per experiment), `obsdiff record` (manifest + trial
//! records, the committed golden fixture), and the `bench_round_engine`
//! custom main (bench records, the committed `BENCH_round_engine.json`).
//! This test validates each against `record::validate_record`, so a schema
//! drift in any producer — or in the committed artifacts — fails CI before
//! `obsdiff` ever sees a malformed line.

use contention_harness::record::{self, load_jsonl, validate_record};
use contention_harness::{experiments, RunCtx, Scale};
use mac_sim::obs::Json;
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn kind(record: &Json) -> &str {
    match record.get("kind").and_then(Json::as_str) {
        Some(k) => k,
        None => panic!("record without kind: {record:?}"),
    }
}

fn assert_all_valid(records: &[Json], source: &str) {
    for (i, rec) in records.iter().enumerate() {
        if let Err(e) = validate_record(rec) {
            panic!("{source} line {}: {e}\n  {rec:?}", i + 1);
        }
    }
}

#[test]
fn golden_fixture_conforms_to_schema() {
    let path = workspace_root().join("tests/fixtures/golden_run_record.jsonl");
    let records = load_jsonl(&path).expect("golden fixture loads");
    assert_all_valid(&records, "golden_run_record.jsonl");
    assert_eq!(
        kind(&records[0]),
        "manifest",
        "first record is the manifest"
    );
    let trials = records.iter().filter(|r| kind(r) == "trial").count();
    assert_eq!(trials, 5, "the golden fixture holds five trials");
}

#[test]
fn golden_snapshot_fixture_conforms_to_schema() {
    // The committed metrics stream (written by `repro --quick e18
    // --record-dir` with telemetry attached; see CI's observability job).
    let path = workspace_root().join("tests/fixtures/golden_snapshot.jsonl");
    let records = load_jsonl(&path).expect("snapshot fixture loads");
    assert!(!records.is_empty(), "snapshot fixture is non-empty");
    assert_all_valid(&records, "golden_snapshot.jsonl");
    for (i, rec) in records.iter().enumerate() {
        assert_eq!(kind(rec), "snapshot");
        assert_eq!(
            rec.get("seq").and_then(Json::as_u64),
            Some(i as u64),
            "snapshot seq numbers the stream contiguously"
        );
        let snap = mac_sim::MetricsSnapshot::from_json(rec).expect("typed parse");
        assert_eq!(snap.to_json().render(), rec.render(), "lossless round-trip");
    }
}

#[test]
fn schema_version_is_two() {
    // v2 added the snapshot kind; bump this (and the migration note in
    // docs/OBSERVABILITY.md) together with any future schema change.
    assert_eq!(record::SCHEMA_VERSION, 2);
}

#[test]
fn committed_bench_export_conforms_to_schema() {
    let path = workspace_root().join("BENCH_round_engine.json");
    let records = load_jsonl(&path).expect("bench export loads");
    assert!(!records.is_empty(), "bench export is non-empty");
    assert_all_valid(&records, "BENCH_round_engine.json");
    assert!(
        records.iter().all(|r| kind(r) == "bench"),
        "bench export holds only bench records"
    );
}

#[test]
fn every_quick_experiment_emits_valid_records() {
    // The exact lines `repro --quick --record-dir` writes, validated for
    // every registered experiment without touching the filesystem.
    let ctx = RunCtx::new(Scale::Quick);
    for (id, _) in experiments::list() {
        let run = experiments::by_id(id).expect("listed experiment resolves");
        let report = run(&ctx);
        let lines = record::experiment_records(&report, Scale::Quick);
        assert!(
            lines.len() > 1,
            "{id}: expected a manifest and at least one cell record"
        );
        for (i, line) in lines.iter().enumerate() {
            if let Err(e) = record::validate_line(line) {
                panic!("{id} line {}: {e}\n  {line}", i + 1);
            }
        }
        let first = Json::parse(&lines[0]).expect("manifest parses");
        assert_eq!(
            kind(&first),
            "manifest",
            "{id}: first record is the manifest"
        );
    }
}
