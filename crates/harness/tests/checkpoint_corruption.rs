//! Property test: resuming from a damaged checkpoint never panics,
//! quarantines exactly the damaged lines, and replays every byte-intact
//! row unchanged.
//!
//! The corruptions modeled are the ones a real `.jsonl.part` can suffer:
//! bit rot (random bit flips), a kill mid-write (truncation at an
//! arbitrary byte), a confused copy (duplicated lines), and foreign bytes
//! spliced in (torn writes interleaving). Each generated case applies a
//! short random sequence of those to a pristine checkpoint, then opens it
//! with [`RecordStore::resume`] and checks the contract:
//!
//! 1. `begin_experiment` returns `Ok` — damage is data, not a crash;
//! 2. every `(section, row)` whose sealed line survived byte-for-byte is
//!    replayed with its exact original cell strings;
//! 3. every quarantined line really is damaged — no byte-intact line is
//!    ever quarantined (duplicates of intact lines are benign, not
//!    damage);
//! 4. the checkpoint `begin_experiment` re-stages is wholly sealed: every
//!    line verifies, so a second resume sees no residual corruption.

use contention_harness::record::{seal_line, verify_sealed_line};
use contention_harness::{RecordStore, Scale};
use mac_sim::obs::Json;
use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

const ID: &str = "e7";

/// A fresh scratch directory per generated case.
fn fresh_dir() -> PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "contention-checkpoint-corruption-{}-{n}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Writes a pristine multi-section checkpoint (no finalize, so the `.part`
/// survives) and returns its rows keyed by `(section, row)`.
fn write_reference(dir: &PathBuf) -> HashMap<(String, usize), Vec<String>> {
    let mut store = RecordStore::create(dir).expect("create store");
    store.begin_experiment(ID, Scale::Quick).expect("begin");
    let headers = ["k".to_string(), "value".to_string(), "note".to_string()];
    let mut rows = HashMap::new();
    for (section, count) in [("alpha", 4usize), ("beta", 3)] {
        for row in 0..count {
            let cells = vec![
                format!("{row}"),
                format!("{:.3}", 0.125 * (row as f64 + 1.0)),
                format!("cell {section}/{row}"),
            ];
            store
                .record_row(section, &headers, row, &cells)
                .expect("record row");
            rows.insert((section.to_string(), row), cells);
        }
    }
    // Dropping without finish_experiment leaves the `.part` checkpoint —
    // exactly the state a killed run leaves behind.
    drop(store);
    rows
}

/// One corruption step; indices are taken modulo the current length so any
/// generated numbers stay meaningful as the file shrinks or grows.
fn apply(bytes: &mut Vec<u8>, kind: u8, a: usize, b: usize) {
    match kind {
        // Bit rot: flip one bit somewhere.
        0 if !bytes.is_empty() => {
            let pos = a % bytes.len();
            bytes[pos] ^= 1 << (b % 8);
        }
        // Kill mid-write: drop everything past an arbitrary byte.
        1 => {
            let keep = a % (bytes.len() + 1);
            bytes.truncate(keep);
        }
        // Confused copy: append a duplicate of an existing line.
        2 => {
            let lines: Vec<&[u8]> = bytes
                .split(|&c| c == b'\n')
                .filter(|l| !l.is_empty())
                .collect();
            if !lines.is_empty() {
                let dup = lines[a % lines.len()].to_vec();
                bytes.extend_from_slice(&dup);
                bytes.push(b'\n');
            }
        }
        // Torn write: splice foreign bytes in at an arbitrary point.
        3 => {
            let pos = a % (bytes.len() + 1);
            let garbage = [0xFFu8, b as u8, b'{', b'\n'];
            let take = b % garbage.len() + 1;
            for (i, &g) in garbage[..take].iter().enumerate() {
                bytes.insert(pos + i, g);
            }
        }
        _ => {}
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]
    #[test]
    fn corrupted_checkpoint_resume_is_lossless_for_intact_rows(
        ops in vec((0u8..4, 0usize..1_000_000, 0usize..1_000_000), 1..6)
    ) {
        let dir = fresh_dir();
        let rows = write_reference(&dir);
        let part = dir.join(format!("{ID}.jsonl.part"));
        let pristine = fs::read(&part).expect("read pristine checkpoint");
        let pristine_lines: HashSet<&[u8]> = pristine
            .split(|&c| c == b'\n')
            .filter(|l| !l.is_empty())
            .collect();
        // Map each pristine row line back to its (section, row) key so the
        // survivors can be checked against the replay.
        let mut line_of_row: HashMap<(String, usize), Vec<u8>> = HashMap::new();
        for line in &pristine_lines {
            let text = std::str::from_utf8(line).expect("pristine is UTF-8");
            if let Ok(value) = verify_sealed_line(text) {
                if value.get("kind").and_then(|k| k.as_str()) == Some("cell") {
                    let section = value
                        .get("section")
                        .and_then(|s| s.as_str())
                        .expect("cell has section")
                        .to_string();
                    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                    let row = value
                        .get("row")
                        .and_then(Json::as_f64)
                        .expect("cell has row") as usize;
                    line_of_row.insert((section, row), line.to_vec());
                }
            }
        }

        let mut corrupted = pristine.clone();
        for &(kind, a, b) in &ops {
            apply(&mut corrupted, kind, a, b);
        }
        fs::write(&part, &corrupted).expect("write corrupted checkpoint");
        let corrupted_lines: Vec<&[u8]> = corrupted.split(|&c| c == b'\n').collect();
        let surviving: HashSet<&[u8]> = corrupted_lines
            .iter()
            .copied()
            .filter(|l| pristine_lines.contains(l))
            .collect();

        // 1. Resume must never panic or error on damage.
        let mut store = RecordStore::resume(&dir).expect("open for resume");
        store
            .begin_experiment(ID, Scale::Quick)
            .expect("begin_experiment tolerates a damaged checkpoint");

        // 2. Byte-intact rows replay with their exact original strings.
        for ((section, row), cells) in &rows {
            if surviving.contains(line_of_row[&(section.clone(), *row)].as_slice()) {
                prop_assert_eq!(
                    store.stored_row(section, *row).as_ref(),
                    Some(cells),
                    "intact row {}/{} must replay byte-exactly",
                    section,
                    row
                );
            }
        }

        // 3. Only damaged lines are quarantined.
        for q in store.quarantined() {
            let content = corrupted_lines
                .get(q.line - 1)
                .copied()
                .unwrap_or_default();
            prop_assert!(
                !pristine_lines.contains(content),
                "quarantined a byte-intact line {} ({:?}): {:?}",
                q.line,
                q.reason,
                String::from_utf8_lossy(content)
            );
        }

        // 4. The re-staged checkpoint is wholly sealed again.
        let restaged = fs::read_to_string(&part).expect("re-staged checkpoint");
        for line in restaged.lines().filter(|l| !l.trim().is_empty()) {
            prop_assert!(
                verify_sealed_line(line).is_ok(),
                "re-staged checkpoint line failed its seal: {line}"
            );
        }

        drop(store);
        let _ = fs::remove_dir_all(&dir);
    }
}

/// The degenerate corruptions deserve pinned coverage alongside the random
/// sweep: an empty file and a checkpoint reduced to garbage must both
/// resume to "nothing stored" without panicking.
#[test]
fn fully_destroyed_checkpoint_resumes_to_empty() {
    for garbage in [
        &b""[..],
        &b"\xff\xfe\x00"[..],
        &b"not json at all\n{{{\n"[..],
    ] {
        let dir = fresh_dir();
        let rows = write_reference(&dir);
        let part = dir.join(format!("{ID}.jsonl.part"));
        fs::write(&part, garbage).expect("write garbage");
        let mut store = RecordStore::resume(&dir).expect("open");
        store.begin_experiment(ID, Scale::Quick).expect("begin");
        for (section, row) in rows.keys() {
            assert_eq!(store.stored_row(section, *row), None);
        }
        drop(store);
        let _ = fs::remove_dir_all(&dir);
    }
}

/// Sanity anchor for the property: with no corruption applied, everything
/// replays and nothing is quarantined.
#[test]
fn uncorrupted_checkpoint_replays_everything() {
    let dir = fresh_dir();
    let rows = write_reference(&dir);
    let mut store = RecordStore::resume(&dir).expect("open");
    store.begin_experiment(ID, Scale::Quick).expect("begin");
    assert!(store.quarantined().is_empty(), "{:?}", store.quarantined());
    for ((section, row), cells) in &rows {
        assert_eq!(store.stored_row(section, *row), Some(cells.clone()));
    }
    drop(store);
    let _ = fs::remove_dir_all(&dir);
}

/// The seal layer itself: flipped payload bytes and flipped checksum
/// digits are both caught, and sealing is deterministic.
#[test]
fn seal_roundtrip_detects_single_character_damage() {
    let record = contention_harness::record::quarantine_record(
        "E7",
        "test",
        vec![("seed".to_string(), 42.0.into())],
    );
    let sealed = seal_line(&record);
    assert!(verify_sealed_line(&sealed).is_ok());
    // The three letters of the "crc" key itself are exempt: renaming the
    // key demotes the line to *unsealed*, and unsealed lines pass through
    // by design (final `.jsonl` records carry no seals).
    let key = sealed.rfind("\"crc\":").expect("sealed line has a crc key") + 1;
    for i in (0..sealed.len()).filter(|i| !(key..key + 3).contains(i)) {
        let mut damaged = sealed.clone().into_bytes();
        damaged[i] ^= 0x01;
        let Ok(damaged) = String::from_utf8(damaged) else {
            continue;
        };
        assert!(
            verify_sealed_line(&damaged).is_err(),
            "flip at byte {i} went undetected: {damaged}"
        );
    }
}
