//! Golden-render pin for the `obstop` dashboard.
//!
//! `obstop --once` over the committed snapshot fixture must render
//! byte-identically to the pinned frame below. The fixture's final
//! snapshot has an empty queue, so the frame also proves the fresh/idle
//! hardening: the ETA renders as `—`, never `0s`, `inf`, or `NaN`.
//! A renderer change that alters the frame must update the golden here
//! (and eyeball the new frame first).

use std::path::{Path, PathBuf};
use std::process::Command;

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

const GOLDEN_FRAME: &str = "\
obstop — tests/fixtures/golden_snapshot.jsonl  (snapshot #4, 5 in stream)
campaign   trials 160  cells 20  shards 40  queue 0  workers 2
           ETA — (queue × mean shard wall)
heal       retried 0  quarantined 0  events dropped 0
counters
  campaign_worker_busy_ns_total                731.2ms
histograms
  campaign_shard_wall_ns             n=40      mean=18.3ms    |██▂▂▂▂ ▂        ▂             ▂▂|
";

#[test]
fn once_render_matches_the_golden_frame() {
    let output = Command::new(env!("CARGO_BIN_EXE_obstop"))
        .current_dir(workspace_root())
        .args(["tests/fixtures/golden_snapshot.jsonl", "--once"])
        .output()
        .expect("obstop runs");
    assert!(
        output.status.success(),
        "obstop --once failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let frame = String::from_utf8(output.stdout).expect("frame is UTF-8");
    assert_eq!(
        frame, GOLDEN_FRAME,
        "obstop --once drifted from the pinned golden frame"
    );
}

#[test]
fn once_render_never_shows_non_finite_numbers() {
    // Belt and braces over the golden: whatever the fixture evolves into,
    // a rendered frame must never leak inf/NaN from a division site.
    let output = Command::new(env!("CARGO_BIN_EXE_obstop"))
        .current_dir(workspace_root())
        .args(["tests/fixtures/golden_snapshot.jsonl", "--once"])
        .output()
        .expect("obstop runs");
    let frame = String::from_utf8_lossy(&output.stdout);
    for bad in ["inf", "NaN"] {
        assert!(
            !frame.contains(bad),
            "rendered frame contains '{bad}':\n{frame}"
        );
    }
}

#[test]
fn once_on_an_empty_stream_exits_one() {
    let dir = std::env::temp_dir().join("obstop-empty-stream-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let empty = dir.join("metrics.jsonl");
    std::fs::write(&empty, "").expect("write empty stream");
    let output = Command::new(env!("CARGO_BIN_EXE_obstop"))
        .arg(&empty)
        .arg("--once")
        .output()
        .expect("obstop runs");
    assert_eq!(output.status.code(), Some(1), "empty stream exits 1");
}
