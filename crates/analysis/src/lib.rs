//! # contention-analysis — statistics and reporting for the experiments
//!
//! Small, dependency-light building blocks used by the experiment harness:
//!
//! * [`stats`] — summaries of round-count samples (mean, percentiles,
//!   normal-approximation confidence intervals);
//! * [`fit`] — least-squares fits of measured rounds against the paper's
//!   theory curves (e.g. `a·(lg n / lg C) + b·lg lg n + c`), used to check
//!   *shape*, not absolute constants;
//! * [`table`] — markdown table rendering for `EXPERIMENTS.md` and the
//!   `repro` binary's stdout;
//! * [`tail`] — empirical tail probabilities for the paper's
//!   with-high-probability claims;
//! * [`balls`] — the balls-in-bins Monte Carlo behind Lemma 9.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod balls;
pub mod fit;
pub mod histogram;
pub mod stats;
pub mod table;
pub mod tail;

pub use balls::no_lone_ball_probability;
pub use fit::{fit_linear, fit_two_term, threshold_crossing, Fit};
pub use histogram::Histogram;
pub use stats::{OnlineSummary, Summary};
pub use table::Table;
pub use tail::exceed_fraction;
