//! Power-of-two bucketed histograms, for round-count distributions.
//!
//! W.h.p. claims live in distribution tails; a log-bucketed histogram is
//! the compact way to report them (bucket `k` holds samples in
//! `[2^k, 2^{k+1})`).

use std::fmt;

/// A histogram over `u64` samples with power-of-two buckets.
///
/// ```
/// use contention_analysis::histogram::Histogram;
///
/// let mut h = Histogram::new();
/// for x in [1u64, 2, 3, 4, 5, 9, 100] {
///     h.record(x);
/// }
/// assert_eq!(h.count(), 7);
/// assert_eq!(h.bucket_count(0), 1); // [1, 2)
/// assert_eq!(h.bucket_count(1), 2); // [2, 4)
/// assert_eq!(h.bucket_count(2), 2); // [4, 8)
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    /// `buckets[k]` counts samples in `[2^k, 2^{k+1})`; index 64 is unused
    /// headroom for `u64::MAX`.
    buckets: Vec<u64>,
    count: u64,
    zeros: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample. Zero is tracked separately (it has no log
    /// bucket).
    pub fn record(&mut self, sample: u64) {
        self.count += 1;
        if sample == 0 {
            self.zeros += 1;
            return;
        }
        let bucket = 63 - sample.leading_zeros() as usize;
        if self.buckets.len() <= bucket {
            self.buckets.resize(bucket + 1, 0);
        }
        self.buckets[bucket] += 1;
    }

    /// Records every sample of a slice.
    pub fn record_all(&mut self, samples: &[u64]) {
        for &s in samples {
            self.record(s);
        }
    }

    /// Total recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Samples equal to zero.
    #[must_use]
    pub fn zero_count(&self) -> u64 {
        self.zeros
    }

    /// Count in bucket `k` (`[2^k, 2^{k+1})`).
    #[must_use]
    pub fn bucket_count(&self, k: usize) -> u64 {
        self.buckets.get(k).copied().unwrap_or(0)
    }

    /// The fraction of samples `≥ 2^k` — the empirical tail at the bucket
    /// boundaries. Returns 0.0 for an empty histogram.
    #[must_use]
    pub fn tail_at(&self, k: usize) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let above: u64 = self.buckets.iter().skip(k).sum();
        above as f64 / self.count as f64
    }

    /// Iterates `(bucket_floor, count)` for nonempty buckets, ascending.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(k, &c)| (1u64 << k, c))
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.count == 0 {
            return f.write_str("(empty histogram)");
        }
        let max = self
            .buckets
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
            .max(self.zeros);
        let bar = |c: u64| "#".repeat(((c * 40) / max.max(1)) as usize);
        if self.zeros > 0 {
            writeln!(f, "{:>12} {:>8}  {}", 0, self.zeros, bar(self.zeros))?;
        }
        for (floor, count) in self.iter() {
            writeln!(f, "{floor:>12} {count:>8}  {}", bar(count))?;
        }
        Ok(())
    }
}

impl FromIterator<u64> for Histogram {
    fn from_iter<T: IntoIterator<Item = u64>>(iter: T) -> Self {
        let mut h = Histogram::new();
        for s in iter {
            h.record(s);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_power_of_two_ranges() {
        let h: Histogram = [1u64, 1, 2, 3, 4, 7, 8, 1023, 1024].into_iter().collect();
        assert_eq!(h.bucket_count(0), 2);
        assert_eq!(h.bucket_count(1), 2);
        assert_eq!(h.bucket_count(2), 2);
        assert_eq!(h.bucket_count(3), 1);
        assert_eq!(h.bucket_count(9), 1);
        assert_eq!(h.bucket_count(10), 1);
        assert_eq!(h.count(), 9);
    }

    #[test]
    fn zeros_tracked_separately() {
        let h: Histogram = [0u64, 0, 5].into_iter().collect();
        assert_eq!(h.zero_count(), 2);
        assert_eq!(h.bucket_count(2), 1);
    }

    #[test]
    fn tail_fractions() {
        let h: Histogram = (1..=8u64).collect();
        assert!((h.tail_at(0) - 1.0).abs() < 1e-12);
        // Samples >= 4: {4,5,6,7,8} = 5 of 8.
        assert!((h.tail_at(2) - 5.0 / 8.0).abs() < 1e-12);
        assert_eq!(h.tail_at(30), 0.0);
    }

    #[test]
    fn display_draws_bars() {
        let h: Histogram = [1u64, 2, 2, 2].into_iter().collect();
        let s = h.to_string();
        assert!(s.contains('#'));
        assert!(s.lines().count() == 2);
        assert_eq!(Histogram::new().to_string(), "(empty histogram)");
    }

    #[test]
    fn iter_skips_empty_buckets() {
        let h: Histogram = [1u64, 1024].into_iter().collect();
        let pairs: Vec<_> = h.iter().collect();
        assert_eq!(pairs, vec![(1, 1), (1024, 1)]);
    }
}
