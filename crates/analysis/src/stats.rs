//! Sample summaries for round-count distributions.

use std::fmt;

/// Summary statistics of a sample of measurements.
///
/// ```
/// use contention_analysis::Summary;
///
/// let s = Summary::from_samples(&[1.0, 2.0, 3.0, 4.0, 100.0]);
/// assert_eq!(s.n, 5);
/// assert_eq!(s.median, 3.0);
/// assert_eq!(s.min, 1.0);
/// assert_eq!(s.max, 100.0);
/// assert!((s.mean - 22.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n ≤ 1).
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Median (50th percentile, linear interpolation).
    pub median: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Computes a summary of `samples`.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or contains NaN.
    #[must_use]
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "cannot summarize an empty sample");
        assert!(
            samples.iter().all(|x| !x.is_nan()),
            "samples must not contain NaN"
        );
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        Summary {
            n,
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            median: percentile_sorted(&sorted, 50.0),
            p95: percentile_sorted(&sorted, 95.0),
            max: sorted[n - 1],
        }
    }

    /// Convenience constructor from integer samples (round counts).
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    #[must_use]
    pub fn from_u64(samples: &[u64]) -> Self {
        let float: Vec<f64> = samples.iter().map(|&x| x as f64).collect();
        Summary::from_samples(&float)
    }

    /// Half-width of the normal-approximation 95% confidence interval for
    /// the mean (`1.96·σ/√n`).
    #[must_use]
    pub fn ci95_half_width(&self) -> f64 {
        if self.n <= 1 {
            0.0
        } else {
            1.96 * self.std_dev / (self.n as f64).sqrt()
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mean {:.2} ± {:.2} (median {:.1}, p95 {:.1}, range {:.0}–{:.0}, n={})",
            self.mean,
            self.ci95_half_width(),
            self.median,
            self.p95,
            self.min,
            self.max,
            self.n
        )
    }
}

/// Percentile of an already-sorted slice, with linear interpolation between
/// order statistics (the "exclusive" scheme used by numpy's default).
fn percentile_sorted(sorted: &[f64], pct: f64) -> f64 {
    debug_assert!((0.0..=100.0).contains(&pct));
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = pct / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_summary() {
        let s = Summary::from_samples(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std_dev - 2.138).abs() < 1e-3);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!((s.median - 4.5).abs() < 1e-12);
    }

    #[test]
    fn single_sample() {
        let s = Summary::from_samples(&[42.0]);
        assert_eq!(s.mean, 42.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.median, 42.0);
        assert_eq!(s.p95, 42.0);
        assert_eq!(s.ci95_half_width(), 0.0);
    }

    #[test]
    fn from_u64_roundtrip() {
        let s = Summary::from_u64(&[1, 2, 3]);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.n, 3);
    }

    #[test]
    fn percentiles_interpolate() {
        let sorted: Vec<f64> = (0..=100).map(f64::from).collect();
        assert!((percentile_sorted(&sorted, 95.0) - 95.0).abs() < 1e-9);
        assert!((percentile_sorted(&sorted, 50.0) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn ci_shrinks_with_n() {
        let small = Summary::from_samples(&[1.0, 2.0, 3.0, 4.0]);
        let many: Vec<f64> = (0..400).map(|i| f64::from(i % 4) + 1.0).collect();
        let big = Summary::from_samples(&many);
        assert!(big.ci95_half_width() < small.ci95_half_width());
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_sample_panics() {
        let _ = Summary::from_samples(&[]);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_sample_panics() {
        let _ = Summary::from_samples(&[1.0, f64::NAN]);
    }

    #[test]
    fn display_is_informative() {
        let s = Summary::from_samples(&[1.0, 2.0, 3.0]);
        let text = s.to_string();
        assert!(text.contains("mean 2.00"));
        assert!(text.contains("n=3"));
    }
}

/// The Kolmogorov–Smirnov distance between an integer-valued sample and a
/// reference CDF: `max_k |F_empirical(k) − F(k)|` over `k` from 0 to the
/// sample maximum. Both functions are right-continuous step functions with
/// knots at integers, so the maximum over integers is the exact supremum.
///
/// Used by the experiments to quantify how closely a measured round-count
/// distribution matches its predicted law (e.g. the geometric renaming race
/// of Lemma 2). `cdf(k)` must return `P[X ≤ k]`.
///
/// ```
/// use contention_analysis::stats::ks_distance;
///
/// // A fair die sample against the die CDF.
/// let samples: Vec<u64> = (0..600).map(|i| i % 6 + 1).collect();
/// let d = ks_distance(&samples, |k| (k.min(6) as f64) / 6.0);
/// assert!(d < 1e-9, "{d}");
/// ```
///
/// # Panics
///
/// Panics if `samples` is empty.
#[must_use]
pub fn ks_distance(samples: &[u64], cdf: impl Fn(u64) -> f64) -> f64 {
    assert!(
        !samples.is_empty(),
        "cannot compute KS distance of an empty sample"
    );
    let n = samples.len() as f64;
    let max = *samples.iter().max().expect("nonempty");
    // Counts per value up to the max.
    let mut counts = vec![0u64; (max + 1) as usize];
    for &s in samples {
        counts[s as usize] += 1;
    }
    let mut cumulative = 0u64;
    let mut sup: f64 = 0.0;
    for k in 0..=max {
        cumulative += counts[k as usize];
        let emp = cumulative as f64 / n;
        sup = sup.max((emp - cdf(k)).abs());
    }
    sup
}

#[cfg(test)]
mod ks_tests {
    use super::*;

    #[test]
    fn geometric_sample_matches_geometric_cdf() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let p = 0.25f64;
        let mut rng = SmallRng::seed_from_u64(7);
        let samples: Vec<u64> = (0..20_000)
            .map(|_| {
                let mut k = 1u64;
                while !rng.gen_bool(p) {
                    k += 1;
                }
                k
            })
            .collect();
        let cdf = |k: u64| 1.0 - (1.0 - p).powi(k as i32);
        let d = ks_distance(&samples, cdf);
        assert!(d < 0.02, "geometric sample should fit its own CDF: {d}");
        // And clearly NOT fit a different rate.
        let wrong = |k: u64| 1.0 - 0.2f64.powi(k as i32);
        assert!(ks_distance(&samples, wrong) > 0.2);
    }

    #[test]
    fn point_mass_against_uniform_die() {
        // All samples at 3 vs a fair 6-sided die: sup at k = 3.
        let d = ks_distance(&[3; 10], |k| (k.min(6) as f64) / 6.0);
        assert!((d - 0.5).abs() < 1e-12, "{d}");
    }

    #[test]
    fn zero_valued_samples_are_handled() {
        let d = ks_distance(&[0, 0, 1, 1], |k| if k == 0 { 0.5 } else { 1.0 });
        assert!(d < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_sample_panics() {
        let _ = ks_distance(&[], |_| 0.0);
    }
}
