//! Sample summaries for round-count distributions.
//!
//! Two forms:
//!
//! * [`Summary::from_samples`] / [`Summary::from_u64`] — batch summaries of
//!   a materialized sample vector;
//! * [`OnlineSummary`] — the streaming/mergeable form used by the campaign
//!   layer: O(1)-ish memory per cell, and a [`OnlineSummary::merge`] that
//!   is exactly associative, so aggregating shards in any grouping yields
//!   bit-identical results.

use std::collections::BTreeMap;
use std::fmt;

/// Summary statistics of a sample of measurements.
///
/// ```
/// use contention_analysis::Summary;
///
/// let s = Summary::from_samples(&[1.0, 2.0, 3.0, 4.0, 100.0]);
/// assert_eq!(s.n, 5);
/// assert_eq!(s.median, 3.0);
/// assert_eq!(s.min, 1.0);
/// assert_eq!(s.max, 100.0);
/// assert!((s.mean - 22.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n ≤ 1).
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Median (50th percentile, linear interpolation).
    pub median: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Computes a summary of `samples`.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or contains NaN.
    #[must_use]
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "cannot summarize an empty sample");
        assert!(
            samples.iter().all(|x| !x.is_nan()),
            "samples must not contain NaN"
        );
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        Summary {
            n,
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            median: percentile_sorted(&sorted, 50.0),
            p95: percentile_sorted(&sorted, 95.0),
            max: sorted[n - 1],
        }
    }

    /// Convenience constructor from integer samples (round counts).
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    #[must_use]
    pub fn from_u64(samples: &[u64]) -> Self {
        let float: Vec<f64> = samples.iter().map(|&x| x as f64).collect();
        Summary::from_samples(&float)
    }

    /// Half-width of the normal-approximation 95% confidence interval for
    /// the mean (`1.96·σ/√n`).
    #[must_use]
    pub fn ci95_half_width(&self) -> f64 {
        if self.n <= 1 {
            0.0
        } else {
            1.96 * self.std_dev / (self.n as f64).sqrt()
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mean {:.2} ± {:.2} (median {:.1}, p95 {:.1}, range {:.0}–{:.0}, n={})",
            self.mean,
            self.ci95_half_width(),
            self.median,
            self.p95,
            self.min,
            self.max,
            self.n
        )
    }
}

/// A streaming, mergeable summary of `u64` samples (round counts).
///
/// Unlike textbook Welford accumulation, the moments are kept as *exact*
/// integer sums (`u128` Σx and Σx²), so [`OnlineSummary::merge`] is exactly
/// associative and commutative: any shard decomposition of a sample, merged
/// in any grouping, produces bit-identical statistics. That is the property
/// the campaign layer's thread-count-invariance contract rests on —
/// floating-point Welford merges would drift in the last ulp depending on
/// the merge tree.
///
/// Quantiles come from a bucketed histogram with power-of-two bucket
/// widths: buckets start at width 1 (exact values) and the width doubles
/// whenever the number of distinct buckets would exceed a fixed cap. The
/// final bucketing depends only on the full multiset of samples, not on
/// insertion or merge order: the histogram at width `2^s` is always exactly
/// the width-`2^s` bucketing of everything pushed so far, and the final
/// width is the smallest that fits the cap. Round-count distributions
/// almost always stay at width 1, where quantiles are bit-identical to
/// [`Summary::from_u64`].
///
/// ```
/// use contention_analysis::stats::OnlineSummary;
///
/// let mut a = OnlineSummary::new();
/// let mut b = OnlineSummary::new();
/// for x in [1u64, 2, 3] { a.push(x); }
/// for x in [4u64, 100] { b.push(x); }
/// a.merge(b);
/// let s = a.finish();
/// assert_eq!(s.n, 5);
/// assert_eq!(s.median, 3.0);
/// assert_eq!(s.max, 100.0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OnlineSummary {
    n: u64,
    sum: u128,
    sum_sq: u128,
    min: u64,
    max: u64,
    /// Bucket width is `2^shift`; keys are bucket indices (`value >> shift`).
    shift: u32,
    buckets: BTreeMap<u64, u64>,
}

/// Distinct-bucket cap of the [`OnlineSummary`] histogram. Round-count
/// samples with at most this many distinct values keep width-1 buckets,
/// i.e. exact quantiles.
pub const ONLINE_SUMMARY_BUCKET_CAP: usize = 4096;

impl OnlineSummary {
    /// Creates an empty summary.
    #[must_use]
    pub fn new() -> Self {
        OnlineSummary {
            n: 0,
            sum: 0,
            sum_sq: 0,
            min: u64::MAX,
            max: 0,
            shift: 0,
            buckets: BTreeMap::new(),
        }
    }

    /// Records one sample.
    pub fn push(&mut self, sample: u64) {
        self.n += 1;
        self.sum = self.sum.saturating_add(u128::from(sample));
        self.sum_sq = self
            .sum_sq
            .saturating_add(u128::from(sample) * u128::from(sample));
        self.min = self.min.min(sample);
        self.max = self.max.max(sample);
        *self.buckets.entry(sample >> self.shift).or_insert(0) += 1;
        self.shrink_to_cap();
    }

    /// Records every sample of a slice.
    pub fn extend_from(&mut self, samples: &[u64]) {
        for &s in samples {
            self.push(s);
        }
    }

    /// Folds `other` into `self`. Exactly associative and commutative: the
    /// result depends only on the union multiset of samples.
    pub fn merge(&mut self, other: OnlineSummary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other;
            return;
        }
        self.n += other.n;
        self.sum = self.sum.saturating_add(other.sum);
        self.sum_sq = self.sum_sq.saturating_add(other.sum_sq);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        // Align both histograms to the coarser width, then combine.
        let shift = self.shift.max(other.shift);
        self.rebucket(shift);
        for (bucket, count) in other.buckets {
            *self
                .buckets
                .entry(bucket >> (shift - other.shift))
                .or_insert(0) += count;
        }
        self.shrink_to_cap();
    }

    /// Number of samples recorded so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Whether quantiles are exact: true while the bucket width is 1
    /// (at most [`ONLINE_SUMMARY_BUCKET_CAP`] distinct sample values).
    #[must_use]
    pub fn is_exact(&self) -> bool {
        self.shift == 0
    }

    /// Iterates `(bucket_floor_value, count)` in ascending value order.
    /// While [`Self::is_exact`], the floors are the exact sample values —
    /// the full empirical distribution, as needed by e.g. KS tests.
    pub fn value_counts(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        let shift = self.shift;
        self.buckets.iter().map(move |(&b, &c)| (b << shift, c))
    }

    /// Exact count of samples `>= threshold`.
    ///
    /// # Panics
    ///
    /// Panics if the histogram has collapsed past width 1 **and** the
    /// threshold falls strictly inside a bucket, where the exact count is
    /// no longer recoverable.
    #[must_use]
    pub fn count_ge(&self, threshold: u64) -> u64 {
        assert!(
            threshold.trailing_zeros() >= self.shift || threshold >> self.shift == 0,
            "threshold {threshold} is not aligned to the bucket width 2^{}",
            self.shift
        );
        let first = threshold >> self.shift;
        self.buckets.range(first..).map(|(_, &c)| c).sum()
    }

    /// Converts the accumulated state into a [`Summary`].
    ///
    /// The mean is exact; the standard deviation comes from the exact
    /// integer moments; quantiles interpolate over the histogram exactly
    /// as [`Summary::from_u64`] interpolates over the sorted sample (and
    /// are bit-identical to it while [`Self::is_exact`]).
    ///
    /// # Panics
    ///
    /// Panics if no samples were recorded.
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn finish(&self) -> Summary {
        assert!(self.n > 0, "cannot summarize an empty sample");
        let n = self.n;
        let mean = self.sum as f64 / n as f64;
        let std_dev = if n > 1 {
            // n·Σx² − (Σx)² = n(n−1)·s², exactly, in integers.
            let num = u128::from(n) * self.sum_sq - self.sum * self.sum;
            (num as f64 / (n as f64 * (n - 1) as f64)).sqrt()
        } else {
            0.0
        };
        Summary {
            n: usize::try_from(n).unwrap_or(usize::MAX),
            mean,
            std_dev,
            min: self.min as f64,
            median: self.percentile(50.0),
            p95: self.percentile(95.0),
            max: self.max as f64,
        }
    }

    /// Percentile with the same linear interpolation over order statistics
    /// as [`Summary`]; bucket floors stand in for sample values (exact
    /// while [`Self::is_exact`]).
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn percentile(&self, pct: f64) -> f64 {
        assert!(self.n > 0, "cannot take a percentile of an empty sample");
        if self.n == 1 {
            return (self.min >> self.shift << self.shift) as f64;
        }
        let rank = pct / 100.0 * (self.n - 1) as f64;
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let lo = rank.floor() as u64;
        let hi = lo + u64::from(rank.fract() > 0.0);
        let frac = rank - lo as f64;
        let (mut lo_val, mut hi_val) = (None, None);
        let mut cumulative = 0u64;
        for (value, count) in self.value_counts() {
            cumulative += count;
            if lo_val.is_none() && cumulative > lo {
                lo_val = Some(value as f64);
            }
            if cumulative > hi {
                hi_val = Some(value as f64);
                break;
            }
        }
        let lo_val = lo_val.expect("rank below sample count");
        let hi_val = hi_val.unwrap_or(self.max as f64);
        lo_val * (1.0 - frac) + hi_val * frac
    }

    /// Doubles the bucket width until the distinct-bucket count fits the
    /// cap. The resulting state is the canonical bucketing of the full
    /// multiset at the smallest admissible width.
    fn shrink_to_cap(&mut self) {
        while self.buckets.len() > ONLINE_SUMMARY_BUCKET_CAP {
            self.rebucket(self.shift + 1);
        }
    }

    /// Re-buckets the histogram to width `2^shift` (must be ≥ current).
    fn rebucket(&mut self, shift: u32) {
        if shift == self.shift {
            return;
        }
        let delta = shift - self.shift;
        let mut coarse: BTreeMap<u64, u64> = BTreeMap::new();
        for (&bucket, &count) in &self.buckets {
            *coarse.entry(bucket >> delta).or_insert(0) += count;
        }
        self.buckets = coarse;
        self.shift = shift;
    }
}

impl Default for OnlineSummary {
    fn default() -> Self {
        OnlineSummary::new()
    }
}

impl FromIterator<u64> for OnlineSummary {
    fn from_iter<T: IntoIterator<Item = u64>>(iter: T) -> Self {
        let mut s = OnlineSummary::new();
        for x in iter {
            s.push(x);
        }
        s
    }
}

/// Percentile of an already-sorted slice, with linear interpolation between
/// order statistics (the "exclusive" scheme used by numpy's default).
fn percentile_sorted(sorted: &[f64], pct: f64) -> f64 {
    debug_assert!((0.0..=100.0).contains(&pct));
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = pct / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_summary() {
        let s = Summary::from_samples(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std_dev - 2.138).abs() < 1e-3);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!((s.median - 4.5).abs() < 1e-12);
    }

    #[test]
    fn single_sample() {
        let s = Summary::from_samples(&[42.0]);
        assert_eq!(s.mean, 42.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.median, 42.0);
        assert_eq!(s.p95, 42.0);
        assert_eq!(s.ci95_half_width(), 0.0);
    }

    #[test]
    fn from_u64_roundtrip() {
        let s = Summary::from_u64(&[1, 2, 3]);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.n, 3);
    }

    #[test]
    fn percentiles_interpolate() {
        let sorted: Vec<f64> = (0..=100).map(f64::from).collect();
        assert!((percentile_sorted(&sorted, 95.0) - 95.0).abs() < 1e-9);
        assert!((percentile_sorted(&sorted, 50.0) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn ci_shrinks_with_n() {
        let small = Summary::from_samples(&[1.0, 2.0, 3.0, 4.0]);
        let many: Vec<f64> = (0..400).map(|i| f64::from(i % 4) + 1.0).collect();
        let big = Summary::from_samples(&many);
        assert!(big.ci95_half_width() < small.ci95_half_width());
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_sample_panics() {
        let _ = Summary::from_samples(&[]);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_sample_panics() {
        let _ = Summary::from_samples(&[1.0, f64::NAN]);
    }

    #[test]
    fn display_is_informative() {
        let s = Summary::from_samples(&[1.0, 2.0, 3.0]);
        let text = s.to_string();
        assert!(text.contains("mean 2.00"));
        assert!(text.contains("n=3"));
    }

    #[test]
    fn online_matches_batch_bit_for_bit_while_exact() {
        // Quantiles, min, max, and mean must be *bit-identical* to the
        // batch path while the histogram is at width 1.
        let samples: Vec<u64> = (0..500).map(|i| (i * i * 2654435761u64) % 1000).collect();
        let online: OnlineSummary = samples.iter().copied().collect();
        assert!(online.is_exact());
        let s = online.finish();
        let batch = Summary::from_u64(&samples);
        assert_eq!(s.n, batch.n);
        assert_eq!(s.mean.to_bits(), batch.mean.to_bits());
        assert_eq!(s.min.to_bits(), batch.min.to_bits());
        assert_eq!(s.median.to_bits(), batch.median.to_bits());
        assert_eq!(s.p95.to_bits(), batch.p95.to_bits());
        assert_eq!(s.max.to_bits(), batch.max.to_bits());
        // The exact-moment std_dev agrees with the two-pass one to high
        // relative precision (not necessarily the last bit).
        assert!((s.std_dev - batch.std_dev).abs() <= 1e-9 * batch.std_dev.max(1.0));
    }

    #[test]
    fn online_merge_is_order_independent() {
        let samples: Vec<u64> = (0..1000).map(|i| i * 37 % 541).collect();
        let whole: OnlineSummary = samples.iter().copied().collect();
        // Arbitrary split, merged in the reverse grouping.
        let (a, b) = samples.split_at(123);
        let (b1, b2) = b.split_at(400);
        let mut right: OnlineSummary = b2.iter().copied().collect();
        let mid: OnlineSummary = b1.iter().copied().collect();
        let left: OnlineSummary = a.iter().copied().collect();
        right.merge(mid);
        let mut acc = left;
        acc.merge(right);
        assert_eq!(acc, whole);
    }

    #[test]
    fn online_collapses_past_the_bucket_cap_canonically() {
        // More distinct values than the cap forces width doubling; the
        // final state must not depend on insertion order.
        let n = (ONLINE_SUMMARY_BUCKET_CAP * 3) as u64;
        let ascending: OnlineSummary = (0..n).collect();
        let descending: OnlineSummary = (0..n).rev().collect();
        assert_eq!(ascending, descending);
        assert!(!ascending.is_exact());
        let s = ascending.finish();
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, (n - 1) as f64);
        // Bucketed quantiles stay within a bucket width of the truth.
        let width = (ONLINE_SUMMARY_BUCKET_CAP as f64).recip() * n as f64 * 2.0;
        assert!((s.median - (n - 1) as f64 / 2.0).abs() <= width);
    }

    #[test]
    fn online_count_ge_is_exact_at_width_one() {
        let online: OnlineSummary = [1u64, 5, 5, 9, 20].into_iter().collect();
        assert_eq!(online.count_ge(0), 5);
        assert_eq!(online.count_ge(5), 4);
        assert_eq!(online.count_ge(6), 2);
        assert_eq!(online.count_ge(21), 0);
    }

    #[test]
    fn online_value_counts_expose_the_distribution() {
        let online: OnlineSummary = [3u64, 3, 7].into_iter().collect();
        let pairs: Vec<_> = online.value_counts().collect();
        assert_eq!(pairs, vec![(3, 2), (7, 1)]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn online_empty_finish_panics() {
        let _ = OnlineSummary::new().finish();
    }

    #[test]
    fn online_single_sample() {
        let mut o = OnlineSummary::new();
        o.push(42);
        let s = o.finish();
        assert_eq!(s.n, 1);
        assert_eq!(s.mean, 42.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.median, 42.0);
    }
}

/// The Kolmogorov–Smirnov distance between an integer-valued sample and a
/// reference CDF: `max_k |F_empirical(k) − F(k)|` over `k` from 0 to the
/// sample maximum. Both functions are right-continuous step functions with
/// knots at integers, so the maximum over integers is the exact supremum.
///
/// Used by the experiments to quantify how closely a measured round-count
/// distribution matches its predicted law (e.g. the geometric renaming race
/// of Lemma 2). `cdf(k)` must return `P[X ≤ k]`.
///
/// ```
/// use contention_analysis::stats::ks_distance;
///
/// // A fair die sample against the die CDF.
/// let samples: Vec<u64> = (0..600).map(|i| i % 6 + 1).collect();
/// let d = ks_distance(&samples, |k| (k.min(6) as f64) / 6.0);
/// assert!(d < 1e-9, "{d}");
/// ```
///
/// # Panics
///
/// Panics if `samples` is empty.
#[must_use]
pub fn ks_distance(samples: &[u64], cdf: impl Fn(u64) -> f64) -> f64 {
    assert!(
        !samples.is_empty(),
        "cannot compute KS distance of an empty sample"
    );
    let n = samples.len() as f64;
    let max = *samples.iter().max().expect("nonempty");
    // Counts per value up to the max.
    let mut counts = vec![0u64; (max + 1) as usize];
    for &s in samples {
        counts[s as usize] += 1;
    }
    let mut cumulative = 0u64;
    let mut sup: f64 = 0.0;
    for k in 0..=max {
        cumulative += counts[k as usize];
        let emp = cumulative as f64 / n;
        sup = sup.max((emp - cdf(k)).abs());
    }
    sup
}

#[cfg(test)]
mod ks_tests {
    use super::*;

    #[test]
    fn geometric_sample_matches_geometric_cdf() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let p = 0.25f64;
        let mut rng = SmallRng::seed_from_u64(7);
        let samples: Vec<u64> = (0..20_000)
            .map(|_| {
                let mut k = 1u64;
                while !rng.gen_bool(p) {
                    k += 1;
                }
                k
            })
            .collect();
        let cdf = |k: u64| 1.0 - (1.0 - p).powi(k as i32);
        let d = ks_distance(&samples, cdf);
        assert!(d < 0.02, "geometric sample should fit its own CDF: {d}");
        // And clearly NOT fit a different rate.
        let wrong = |k: u64| 1.0 - 0.2f64.powi(k as i32);
        assert!(ks_distance(&samples, wrong) > 0.2);
    }

    #[test]
    fn point_mass_against_uniform_die() {
        // All samples at 3 vs a fair 6-sided die: sup at k = 3.
        let d = ks_distance(&[3; 10], |k| (k.min(6) as f64) / 6.0);
        assert!((d - 0.5).abs() < 1e-12, "{d}");
    }

    #[test]
    fn zero_valued_samples_are_handled() {
        let d = ks_distance(&[0, 0, 1, 1], |k| if k == 0 { 0.5 } else { 1.0 });
        assert!(d < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_sample_panics() {
        let _ = ks_distance(&[], |_| 0.0);
    }
}
