//! Markdown / TSV table rendering for experiment reports.

use std::fmt;

/// A simple column-aligned table that renders to GitHub-flavored markdown
/// (for `EXPERIMENTS.md`) or TSV (for downstream plotting).
///
/// ```
/// use contention_analysis::Table;
///
/// let mut t = Table::new(&["n", "C", "rounds"]);
/// t.row(&["1024", "16", "12.3"]);
/// t.row(&["4096", "16", "14.1"]);
/// let md = t.to_markdown();
/// assert!(md.starts_with("| n"));
/// assert_eq!(md.lines().count(), 4); // header + separator + 2 rows
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    #[must_use]
    pub fn new(headers: &[&str]) -> Self {
        assert!(!headers.is_empty(), "a table needs at least one column");
        Table {
            headers: headers.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row's width differs from the header's.
    pub fn row(&mut self, cells: &[&str]) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != column count {}",
            cells.len(),
            self.headers.len()
        );
        self.rows
            .push(cells.iter().map(ToString::to_string).collect());
    }

    /// Appends a row of already-owned cells (convenient with `format!`).
    ///
    /// # Panics
    ///
    /// Panics if the row's width differs from the header's.
    pub fn row_owned(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != column count {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// The column headers, in order.
    #[must_use]
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// The data rows, in insertion order. Used by the harness's
    /// record-emission path to turn report tables into structured cell
    /// records.
    #[must_use]
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Returns `true` if the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as a GitHub-flavored markdown table with padded columns.
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let widths: Vec<usize> = (0..self.headers.len())
            .map(|c| {
                self.rows
                    .iter()
                    .map(|r| r[c].len())
                    .chain(std::iter::once(self.headers[c].len()))
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        let mut out = String::new();
        let render_row = |cells: &[String]| -> String {
            let padded: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(cell, w)| format!("{cell:<w$}"))
                .collect();
            format!("| {} |", padded.join(" | "))
        };
        out.push_str(&render_row(&self.headers));
        out.push('\n');
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&format!("| {} |", sep.join(" | ")));
        for row in &self.rows {
            out.push('\n');
            out.push_str(&render_row(row));
        }
        out
    }

    /// Renders as tab-separated values, header first.
    #[must_use]
    pub fn to_tsv(&self) -> String {
        let mut out = self.headers.join("\t");
        for row in &self.rows {
            out.push('\n');
            out.push_str(&row.join("\t"));
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_markdown())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_rendering_pads_columns() {
        let mut t = Table::new(&["algo", "rounds"]);
        t.row(&["full", "10"]);
        t.row(&["binary-descent", "17"]);
        let md = t.to_markdown();
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("algo"));
        assert!(lines[1].starts_with("| ---"));
        // All lines have equal width thanks to padding.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn tsv_rendering() {
        let mut t = Table::new(&["a", "b"]);
        t.row_owned(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_tsv(), "a\tb\n1\t2");
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_row_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one"]);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_headers_panic() {
        let _ = Table::new(&[]);
    }

    #[test]
    fn display_matches_markdown() {
        let mut t = Table::new(&["x"]);
        t.row(&["1"]);
        assert_eq!(t.to_string(), t.to_markdown());
    }
}
