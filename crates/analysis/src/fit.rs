//! Least-squares fitting of measured round counts against theory curves.
//!
//! The experiments never try to match the paper's hidden constants — they
//! check *shape*: e.g. E1 fits measured `TwoActive` rounds to
//! `a·(lg n / lg C) + b·lg lg n + c` and verifies the fit explains the
//! variance (high `R²`) with a stable `a` across sweeps.

/// A fitted linear model and its goodness of fit.
#[derive(Debug, Clone, PartialEq)]
pub struct Fit {
    /// Fitted coefficients, one per regressor (plus the intercept last).
    pub coefficients: Vec<f64>,
    /// Coefficient of determination `R²` (1 − SSR/SST; 1.0 when the
    /// response is constant and perfectly predicted).
    pub r_squared: f64,
}

impl Fit {
    /// Predicted value for the given regressor values (without intercept).
    #[must_use]
    pub fn predict(&self, xs: &[f64]) -> f64 {
        assert_eq!(
            xs.len() + 1,
            self.coefficients.len(),
            "regressor count mismatch"
        );
        let mut y = *self.coefficients.last().expect("has intercept");
        for (c, x) in self.coefficients.iter().zip(xs) {
            y += c * x;
        }
        y
    }
}

/// Fits `y ≈ a·x + c` by ordinary least squares.
///
/// # Panics
///
/// Panics if `xs` and `ys` differ in length or hold fewer than 2 points.
#[must_use]
pub fn fit_linear(xs: &[f64], ys: &[f64]) -> Fit {
    let rows: Vec<Vec<f64>> = xs.iter().map(|&x| vec![x]).collect();
    fit_least_squares(&rows, ys)
}

/// Fits `y ≈ a·x1 + b·x2 + c` by ordinary least squares — the two-term form
/// of the paper's bounds (`x1 = lg n / lg C`, `x2 = lg lg n`, say).
///
/// # Panics
///
/// Panics if the slices differ in length or hold fewer than 3 points.
#[must_use]
pub fn fit_two_term(x1: &[f64], x2: &[f64], ys: &[f64]) -> Fit {
    assert_eq!(x1.len(), x2.len(), "regressor lengths differ");
    let rows: Vec<Vec<f64>> = x1.iter().zip(x2).map(|(&a, &b)| vec![a, b]).collect();
    fit_least_squares(&rows, ys)
}

/// General OLS with an implicit intercept column, solved by Gaussian
/// elimination on the normal equations (fine for the ≤ 3 coefficients the
/// experiments need).
fn fit_least_squares(rows: &[Vec<f64>], ys: &[f64]) -> Fit {
    assert_eq!(rows.len(), ys.len(), "row/response lengths differ");
    let k = rows.first().map_or(0, Vec::len) + 1; // + intercept
    assert!(
        rows.len() >= k,
        "need at least {k} points for {k} coefficients, got {}",
        rows.len()
    );

    // Build the normal equations A^T A x = A^T y with the intercept column.
    let mut ata = vec![vec![0.0f64; k]; k];
    let mut aty = vec![0.0f64; k];
    for (row, &y) in rows.iter().zip(ys) {
        assert_eq!(row.len(), k - 1, "ragged regressor row");
        let full: Vec<f64> = row.iter().copied().chain(std::iter::once(1.0)).collect();
        for i in 0..k {
            aty[i] += full[i] * y;
            for j in 0..k {
                ata[i][j] += full[i] * full[j];
            }
        }
    }

    let coefficients = solve(ata, aty);

    // R^2.
    let mean_y = ys.iter().sum::<f64>() / ys.len() as f64;
    let sst: f64 = ys.iter().map(|y| (y - mean_y).powi(2)).sum();
    let ssr: f64 = rows
        .iter()
        .zip(ys)
        .map(|(row, &y)| {
            let pred = row
                .iter()
                .zip(&coefficients)
                .map(|(x, c)| x * c)
                .sum::<f64>()
                + coefficients[k - 1];
            (y - pred).powi(2)
        })
        .sum();
    let r_squared = if sst <= f64::EPSILON {
        1.0
    } else {
        1.0 - ssr / sst
    };

    Fit {
        coefficients,
        r_squared,
    }
}

/// Finds where a measured curve crosses `level`, by linear interpolation
/// between the last point at or above `level` and the first point below it.
///
/// Built for breakdown-threshold sweeps: `xs` is an increasing fault
/// intensity (noise probability, erasure rate), `ys` the success rate at
/// each intensity, and the returned `x` estimates the intensity at which
/// success degrades through `level` (e.g. `0.5` for the 50% breakdown
/// point). Returns `None` when the curve never reaches `level` (already
/// broken at `xs[0]`) or never drops below it (no breakdown in range).
///
/// # Panics
///
/// Panics if `xs` and `ys` differ in length.
#[must_use]
pub fn threshold_crossing(xs: &[f64], ys: &[f64], level: f64) -> Option<f64> {
    assert_eq!(xs.len(), ys.len(), "x/y lengths differ");
    if ys.first().is_none_or(|&y| y < level) {
        return None;
    }
    for i in 1..ys.len() {
        let (y0, y1) = (ys[i - 1], ys[i]);
        if y0 >= level && y1 < level {
            let t = if (y0 - y1).abs() <= f64::EPSILON {
                0.0
            } else {
                (y0 - level) / (y0 - y1)
            };
            return Some(xs[i - 1] + t * (xs[i] - xs[i - 1]));
        }
    }
    None
}

/// Gaussian elimination with partial pivoting.
fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Vec<f64> {
    let n = b.len();
    for col in 0..n {
        // Pivot.
        let pivot = (col..n)
            .max_by(|&i, &j| {
                a[i][col]
                    .abs()
                    .partial_cmp(&a[j][col].abs())
                    .expect("no NaN")
            })
            .expect("nonempty");
        a.swap(col, pivot);
        b.swap(col, pivot);
        let diag = a[col][col];
        assert!(
            diag.abs() > 1e-12,
            "singular normal equations: regressors are collinear"
        );
        let pivot_row = a[col].clone();
        for row in 0..n {
            if row == col {
                continue;
            }
            let factor = a[row][col] / diag;
            for (cell, pivot_cell) in a[row][col..n].iter_mut().zip(&pivot_row[col..n]) {
                *cell -= factor * pivot_cell;
            }
            b[row] -= factor * b[col];
        }
    }
    (0..n).map(|i| b[i] / a[i][i]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_is_recovered() {
        let xs: Vec<f64> = (0..10).map(f64::from).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x + 7.0).collect();
        let fit = fit_linear(&xs, &ys);
        assert!((fit.coefficients[0] - 3.0).abs() < 1e-9);
        assert!((fit.coefficients[1] - 7.0).abs() < 1e-9);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
        assert!((fit.predict(&[4.0]) - 19.0).abs() < 1e-9);
    }

    #[test]
    fn two_term_plane_is_recovered() {
        let mut x1 = Vec::new();
        let mut x2 = Vec::new();
        let mut ys = Vec::new();
        for i in 0..6 {
            for j in 0..6 {
                x1.push(f64::from(i));
                x2.push(f64::from(j * j)); // nonlinear in j to avoid collinearity
                ys.push(2.0 * f64::from(i) + 0.5 * f64::from(j * j) + 1.0);
            }
        }
        let fit = fit_two_term(&x1, &x2, &ys);
        assert!((fit.coefficients[0] - 2.0).abs() < 1e-9);
        assert!((fit.coefficients[1] - 0.5).abs() < 1e-9);
        assert!((fit.coefficients[2] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn noisy_fit_has_sensible_r_squared() {
        let xs: Vec<f64> = (0..100).map(f64::from).collect();
        // Deterministic "noise" to keep the test reproducible.
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| {
                2.0 * x
                    + 5.0
                    + if (*x as u64).is_multiple_of(2) {
                        1.0
                    } else {
                        -1.0
                    }
            })
            .collect();
        let fit = fit_linear(&xs, &ys);
        assert!(fit.r_squared > 0.99);
        assert!((fit.coefficients[0] - 2.0).abs() < 0.01);
    }

    #[test]
    fn constant_response_gives_r2_of_one() {
        let xs: Vec<f64> = (0..5).map(f64::from).collect();
        let ys = vec![4.0; 5];
        let fit = fit_linear(&xs, &ys);
        assert!((fit.coefficients[0]).abs() < 1e-9);
        assert!((fit.r_squared - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "collinear")]
    fn collinear_regressors_panic() {
        let x1 = vec![1.0, 2.0, 3.0, 4.0];
        let x2 = vec![2.0, 4.0, 6.0, 8.0];
        let ys = vec![1.0, 2.0, 3.0, 4.0];
        let _ = fit_two_term(&x1, &x2, &ys);
    }

    #[test]
    #[should_panic(expected = "need at least")]
    fn too_few_points_panics() {
        let _ = fit_linear(&[1.0], &[1.0]);
    }

    #[test]
    fn threshold_crossing_interpolates() {
        let xs = [0.0, 0.1, 0.2, 0.3];
        let ys = [1.0, 0.9, 0.3, 0.0];
        // Crosses 0.5 between x = 0.1 (0.9) and x = 0.2 (0.3):
        // t = (0.9 - 0.5) / (0.9 - 0.3) = 2/3.
        let x = threshold_crossing(&xs, &ys, 0.5).unwrap();
        assert!((x - (0.1 + 2.0 / 30.0)).abs() < 1e-9);
    }

    #[test]
    fn threshold_crossing_handles_edges() {
        // Never drops below the level: no breakdown in range.
        assert_eq!(threshold_crossing(&[0.0, 0.1], &[1.0, 0.8], 0.5), None);
        // Already below at the first point: broken on arrival.
        assert_eq!(threshold_crossing(&[0.0, 0.1], &[0.2, 0.1], 0.5), None);
        // Exact hit on a sample point interpolates to that point.
        let x = threshold_crossing(&[0.0, 0.1, 0.2], &[1.0, 0.5, 0.0], 0.5);
        assert!(x.is_some_and(|x| (x - 0.1).abs() < 1e-9));
        // Empty input.
        assert_eq!(threshold_crossing(&[], &[], 0.5), None);
    }
}
