//! Empirical tails for with-high-probability claims.
//!
//! The paper's guarantees are of the form "within `T` rounds with
//! probability `≥ 1 − n^{-c}`". Empirically we can only estimate the tail
//! from finitely many trials, so the experiments report the *exceedance
//! fraction* against a budget and check it is consistent with a w.h.p.
//! bound (usually: zero exceedances at the chosen trial counts).

/// The fraction of `samples` strictly exceeding `budget`.
///
/// ```
/// use contention_analysis::exceed_fraction;
///
/// let samples = [1.0, 2.0, 3.0, 10.0];
/// assert_eq!(exceed_fraction(&samples, 3.0), 0.25);
/// assert_eq!(exceed_fraction(&samples, 10.0), 0.0);
/// ```
///
/// # Panics
///
/// Panics if `samples` is empty.
#[must_use]
pub fn exceed_fraction(samples: &[f64], budget: f64) -> f64 {
    assert!(!samples.is_empty(), "no samples");
    let over = samples.iter().filter(|&&s| s > budget).count();
    over as f64 / samples.len() as f64
}

/// An upper confidence bound on the true exceedance probability when `k`
/// of `n` trials exceeded, via the rule-of-three style bound
/// `p ≤ (k + 3) / n` (exact rule of three when `k = 0`: `p ≤ 3/n` at 95%).
///
/// # Panics
///
/// Panics if `n == 0` or `k > n`.
#[must_use]
pub fn exceedance_upper_bound(k: usize, n: usize) -> f64 {
    assert!(n > 0, "no trials");
    assert!(k <= n, "more exceedances than trials");
    ((k + 3) as f64 / n as f64).min(1.0)
}

/// The geometric-distribution check used by experiment E3: given per-trial
/// success probability `p`, the probability of still running after `t`
/// attempts is `(1-p)^t`. Returns that reference tail for comparison with
/// the empirical one.
///
/// # Panics
///
/// Panics unless `0 < p <= 1`.
#[must_use]
pub fn geometric_tail(p: f64, t: u32) -> f64 {
    assert!(p > 0.0 && p <= 1.0, "p must be a probability in (0, 1]");
    (1.0 - p).powi(t as i32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exceed_fraction_counts_strictly() {
        assert_eq!(exceed_fraction(&[1.0, 1.0], 1.0), 0.0);
        assert_eq!(exceed_fraction(&[1.0, 2.0], 1.0), 0.5);
    }

    #[test]
    fn rule_of_three() {
        assert!((exceedance_upper_bound(0, 300) - 0.01).abs() < 1e-12);
        assert_eq!(exceedance_upper_bound(300, 300), 1.0);
    }

    #[test]
    fn geometric_tail_values() {
        assert!((geometric_tail(0.5, 1) - 0.5).abs() < 1e-12);
        assert!((geometric_tail(0.5, 10) - 1.0 / 1024.0).abs() < 1e-12);
        assert_eq!(geometric_tail(1.0, 5), 0.0);
    }

    #[test]
    #[should_panic(expected = "no samples")]
    fn empty_samples_panic() {
        let _ = exceed_fraction(&[], 1.0);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bad_probability_panics() {
        let _ = geometric_tail(0.0, 1);
    }
}
