//! Balls-in-bins Monte Carlo for Lemma 9.
//!
//! Lemma 9: throwing `b = m/β` balls into `m` bins with `3 ≤ β < m`, the
//! probability that *no* ball lands alone in a bin is below `2^{-b/2}`.
//! This bound is what makes the renaming rounds of `IdReduction` succeed
//! once the active set is below `C/6`. Experiment E7 measures the
//! probability directly and compares it to the bound.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One throw: returns `true` if **no** ball ended up alone in its bin.
///
/// # Panics
///
/// Panics if `bins == 0`.
#[must_use]
pub fn throw_has_no_lone_ball(balls: usize, bins: usize, rng: &mut SmallRng) -> bool {
    assert!(bins > 0, "need at least one bin");
    let mut counts = vec![0u32; bins];
    let mut picks = Vec::with_capacity(balls);
    for _ in 0..balls {
        let bin = rng.gen_range(0..bins);
        counts[bin] += 1;
        picks.push(bin);
    }
    !picks.iter().any(|&bin| counts[bin] == 1)
}

/// Monte Carlo estimate of `P[no ball alone]` for `balls` balls in `bins`
/// bins over `trials` trials.
///
/// # Panics
///
/// Panics if `trials == 0` or `bins == 0`.
#[must_use]
pub fn no_lone_ball_probability(balls: usize, bins: usize, trials: usize, seed: u64) -> f64 {
    assert!(trials > 0, "need at least one trial");
    let mut rng = SmallRng::seed_from_u64(seed);
    let hits = (0..trials)
        .filter(|_| throw_has_no_lone_ball(balls, bins, &mut rng))
        .count();
    hits as f64 / trials as f64
}

/// Lemma 9's bound for `b` balls: `2^{-b/2}`.
#[must_use]
pub fn lemma9_bound(balls: usize) -> f64 {
    0.5f64.powf(balls as f64 / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_balls_trivially_has_no_lone_ball() {
        let mut rng = SmallRng::seed_from_u64(0);
        assert!(throw_has_no_lone_ball(0, 5, &mut rng));
    }

    #[test]
    fn one_ball_is_always_alone() {
        let mut rng = SmallRng::seed_from_u64(0);
        for _ in 0..100 {
            assert!(!throw_has_no_lone_ball(1, 5, &mut rng));
        }
    }

    #[test]
    fn two_balls_one_bin_never_alone() {
        let mut rng = SmallRng::seed_from_u64(0);
        assert!(throw_has_no_lone_ball(2, 1, &mut rng));
    }

    #[test]
    fn two_balls_two_bins_matches_closed_form() {
        // P[no lone ball] = P[same bin] = 1/2.
        let p = no_lone_ball_probability(2, 2, 40_000, 7);
        assert!((p - 0.5).abs() < 0.02, "estimate {p} far from 0.5");
    }

    #[test]
    fn lemma9_bound_holds_empirically_in_its_regime() {
        // b = m/beta with beta in [3, m): a few spot checks.
        for (beta, m) in [(3usize, 30usize), (4, 64), (8, 128)] {
            let b = m / beta;
            let p = no_lone_ball_probability(b, m, 20_000, 11);
            let bound = lemma9_bound(b);
            assert!(
                p <= bound + 0.02,
                "beta={beta} m={m}: measured {p} vs bound {bound}"
            );
        }
    }

    #[test]
    fn bound_decreases_with_more_balls() {
        assert!(lemma9_bound(10) < lemma9_bound(4));
        assert!((lemma9_bound(2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn probability_estimate_is_deterministic_in_seed() {
        let a = no_lone_ball_probability(5, 20, 1000, 3);
        let b = no_lone_ball_probability(5, 20, 1000, 3);
        assert_eq!(a, b);
    }
}
