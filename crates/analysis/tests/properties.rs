//! Property-based tests for the analysis utilities.

use contention_analysis::histogram::Histogram;
use contention_analysis::stats::{ks_distance, OnlineSummary};
use contention_analysis::{exceed_fraction, fit_linear, fit_two_term, Summary, Table};
use proptest::collection::vec;
use proptest::prelude::*;

/// Folds each contiguous shard (split at the normalized, deduped cut
/// points) into its own `OnlineSummary`.
fn shard_summaries(samples: &[u64], cuts: &[usize]) -> Vec<OnlineSummary> {
    let mut cuts: Vec<usize> = cuts.iter().map(|c| c % (samples.len() + 1)).collect();
    cuts.sort_unstable();
    cuts.dedup();
    let mut shards = Vec::new();
    let mut prev = 0;
    for c in cuts {
        shards.push(samples[prev..c].iter().copied().collect::<OnlineSummary>());
        prev = c;
    }
    shards.push(samples[prev..].iter().copied().collect());
    shards
}

/// Merges shard summaries left-to-right or right-to-left.
fn merge_shards(parts: Vec<OnlineSummary>, fold_right: bool) -> OnlineSummary {
    if fold_right {
        let mut acc = OnlineSummary::new();
        for part in parts.into_iter().rev() {
            let mut next = part;
            next.merge(std::mem::take(&mut acc));
            acc = next;
        }
        acc
    } else {
        let mut acc = OnlineSummary::new();
        for part in parts {
            acc.merge(part);
        }
        acc
    }
}

proptest! {
    /// Summary order statistics are always ordered and within range.
    #[test]
    fn summary_invariants(samples in vec(-1e6f64..1e6, 1..300)) {
        let s = Summary::from_samples(&samples);
        prop_assert!(s.min <= s.median);
        prop_assert!(s.median <= s.p95 + 1e-9);
        prop_assert!(s.p95 <= s.max + 1e-9);
        prop_assert!(s.mean >= s.min - 1e-9 && s.mean <= s.max + 1e-9);
        prop_assert!(s.std_dev >= 0.0);
        prop_assert_eq!(s.n, samples.len());
    }

    /// Shifting a sample shifts mean/median/min/max and leaves spread alone.
    #[test]
    fn summary_shift_equivariance(samples in vec(-1e3f64..1e3, 2..100), shift in -1e3f64..1e3) {
        let a = Summary::from_samples(&samples);
        let shifted: Vec<f64> = samples.iter().map(|x| x + shift).collect();
        let b = Summary::from_samples(&shifted);
        prop_assert!((b.mean - a.mean - shift).abs() < 1e-6);
        prop_assert!((b.median - a.median - shift).abs() < 1e-6);
        prop_assert!((b.std_dev - a.std_dev).abs() < 1e-6);
    }

    /// A noiseless line is recovered exactly by the linear fit.
    #[test]
    fn fit_recovers_random_lines(a in -100f64..100.0, b in -100f64..100.0, n in 3usize..50) {
        let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| a * x + b).collect();
        let fit = fit_linear(&xs, &ys);
        prop_assert!((fit.coefficients[0] - a).abs() < 1e-6);
        prop_assert!((fit.coefficients[1] - b).abs() < 1e-6);
        prop_assert!(fit.r_squared > 1.0 - 1e-9);
    }

    /// A noiseless plane is recovered exactly by the two-term fit.
    #[test]
    fn fit_recovers_random_planes(a in -10f64..10.0, b in -10f64..10.0, c in -10f64..10.0) {
        let mut x1 = Vec::new();
        let mut x2 = Vec::new();
        let mut ys = Vec::new();
        for i in 0..5 {
            for j in 0..5 {
                x1.push(f64::from(i));
                x2.push(f64::from(j * j + i * j)); // break collinearity
                ys.push(a * f64::from(i) + b * f64::from(j * j + i * j) + c);
            }
        }
        let fit = fit_two_term(&x1, &x2, &ys);
        prop_assert!((fit.coefficients[0] - a).abs() < 1e-6);
        prop_assert!((fit.coefficients[1] - b).abs() < 1e-6);
        prop_assert!((fit.coefficients[2] - c).abs() < 1e-6);
    }

    /// Histogram counts are conserved and tails are monotone.
    #[test]
    fn histogram_conservation(samples in vec(0u64..1_000_000, 1..500)) {
        let h: Histogram = samples.iter().copied().collect();
        prop_assert_eq!(h.count(), samples.len() as u64);
        let bucket_total: u64 = h.iter().map(|(_, c)| c).sum::<u64>() + h.zero_count();
        prop_assert_eq!(bucket_total, samples.len() as u64);
        for k in 1..20usize {
            prop_assert!(h.tail_at(k) <= h.tail_at(k - 1) + 1e-12);
        }
    }

    /// Exceedance fraction is a survival function: monotone in the budget.
    #[test]
    fn exceed_fraction_is_monotone(samples in vec(0f64..100.0, 1..100), a in 0f64..100.0, b in 0f64..100.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(exceed_fraction(&samples, hi) <= exceed_fraction(&samples, lo));
    }

    /// A sample has KS distance zero to its own empirical CDF.
    #[test]
    fn ks_self_distance_is_zero(samples in vec(0u64..100, 1..200)) {
        let n = samples.len() as f64;
        let sorted = {
            let mut s = samples.clone();
            s.sort_unstable();
            s
        };
        let emp = move |k: u64| sorted.iter().filter(|&&x| x <= k).count() as f64 / n;
        prop_assert!(ks_distance(&samples, emp) < 1e-12);
    }

    /// `OnlineSummary::merge` is exactly associative and commutative: any
    /// contiguous shard decomposition, merged in any grouping, is
    /// *structurally identical* (moments, extrema, and histogram state) to
    /// the sequential fold. This is the property the campaign layer's
    /// thread-count-invariance contract rests on.
    #[test]
    fn online_summary_is_shard_invariant(
        samples in vec(0u64..1_000_000, 0..200),
        cuts in vec(0usize..200, 0..8),
        fold_right in any::<bool>(),
    ) {
        let expect: OnlineSummary = samples.iter().copied().collect();
        let merged = merge_shards(shard_summaries(&samples, &cuts), fold_right);
        prop_assert_eq!(merged, expect);
    }

    /// While the histogram keeps width-1 buckets (the common case for
    /// round counts), `finish()` quantiles are bit-identical to the batch
    /// `Summary::from_u64`, and the exact-integer moments agree with the
    /// floating-point batch path to rounding error.
    #[test]
    fn online_summary_matches_batch_summary_when_exact(
        samples in vec(0u64..100_000, 1..300),
    ) {
        let online: OnlineSummary = samples.iter().copied().collect();
        prop_assert!(online.is_exact());
        let o = online.finish();
        let b = Summary::from_u64(&samples);
        prop_assert_eq!(o.n, b.n);
        prop_assert_eq!(o.min, b.min);
        prop_assert_eq!(o.max, b.max);
        prop_assert_eq!(o.median, b.median);
        prop_assert_eq!(o.p95, b.p95);
        prop_assert!((o.mean - b.mean).abs() <= 1e-9 * b.mean.abs().max(1.0));
        prop_assert!((o.std_dev - b.std_dev).abs() <= 1e-6 * b.std_dev.abs().max(1.0));
    }

    /// Tables round-trip their cell contents through TSV.
    #[test]
    fn table_tsv_roundtrip(rows in vec(vec("[a-z0-9]{1,8}", 3), 1..20)) {
        let mut t = Table::new(&["x", "y", "z"]);
        for row in &rows {
            let cells: Vec<&str> = row.iter().map(String::as_str).collect();
            t.row(&cells);
        }
        let tsv = t.to_tsv();
        let lines: Vec<&str> = tsv.lines().collect();
        prop_assert_eq!(lines.len(), rows.len() + 1);
        for (line, row) in lines[1..].iter().zip(&rows) {
            let cells: Vec<&str> = line.split('\t').collect();
            let expect: Vec<&str> = row.iter().map(String::as_str).collect();
            prop_assert_eq!(cells, expect);
        }
    }
}

proptest! {
    // Each case pushes thousands of distinct values to force the bucket
    // cap; keep the case count low.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Shard invariance survives histogram collapse: with more distinct
    /// values than the bucket cap, the bucket width must still converge to
    /// the same canonical state whether samples arrive sequentially or via
    /// shard merges.
    #[test]
    fn online_summary_shard_invariance_survives_collapse(
        stride in 1u64..1_000,
        n in 4_100usize..5_000,
        cuts in vec(0usize..5_000, 1..4),
        fold_right in any::<bool>(),
    ) {
        let samples: Vec<u64> = (0..n as u64).map(|i| i * stride).collect();
        let expect: OnlineSummary = samples.iter().copied().collect();
        prop_assert!(!expect.is_exact(), "cap must have been exceeded");
        let merged = merge_shards(shard_summaries(&samples, &cuts), fold_right);
        prop_assert_eq!(merged, expect);
    }
}
