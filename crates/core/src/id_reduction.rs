//! `IdReduction` — step 2 of the general algorithm (§5.2).
//!
//! Renames the surviving active nodes with *unique* ids from `[C/2]`,
//! reducing the active set further whenever it is still too crowded for
//! renaming to succeed. The schedule repeats a three-round pattern:
//!
//! 1. **Rename round** — every active node picks a uniform channel from
//!    `[C/2]` and transmits; a node that detects it was alone adopts its
//!    channel label as its unique id.
//! 2. **Report round** — everyone goes to the primary channel; the nodes
//!    that just adopted ids transmit. If *any* transmission is heard
//!    (message or collision), the step is over: adopters stay active with
//!    their new ids, everyone else goes inactive.
//! 3. **Reduction round** — every active node transmits on the primary
//!    channel with probability `1/k`, `k = √C/144` (see [`Params`] for why
//!    the executable default differs); listeners who hear anything but
//!    silence go inactive.
//!
//! Theorem 6: starting from `|A| = O(log n)` actives, the step finishes in
//! `O(log n / log C)` rounds w.h.p. with at most `C/2` survivors holding
//! distinct ids from `[C/2]`. The analysis splits into Lemma 7 (reduction
//! rounds push `|A|` below `C/6` fast) and Lemmas 9–10 (a balls-in-bins
//! argument shows renaming then succeeds with probability
//! `≥ 1 − 2^{-lg(C/2)/2}` per attempt).

use mac_sim::{Action, ChannelId, Feedback, Protocol, RoundContext, Status};
use rand::rngs::SmallRng;
use rand::Rng;

use crate::params::Params;
use crate::phase::{impl_phase_telemetry, Phase, PhaseMeter, PhaseOutcome, PhaseStats};

/// How a node's participation in `IdReduction` ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdReductionOutcome {
    /// The node adopted this unique id from `[C/2]` and remains active.
    Renamed(u32),
    /// The node was eliminated (renamed away by others, or knocked out in a
    /// reduction round).
    Eliminated,
}

/// Per-node counters exposed for experiment E6.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IdReductionStats {
    /// Number of rename rounds participated in.
    pub rename_rounds: u64,
    /// Number of reduction rounds participated in.
    pub reduction_rounds: u64,
    /// Total rounds (renames + reports + reductions).
    pub total_rounds: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SubRound {
    Rename,
    Report,
    Reduce,
}

/// The renaming/reduction protocol of §5.2.
///
/// All active nodes move through the three-round schedule in lockstep and
/// the step ends for everyone in the same (report) round, which is what
/// lets [`crate::FullAlgorithm`] chain `LeafElection` synchronously.
///
/// ```
/// use contention::{IdReduction, IdReductionOutcome, Params};
/// use mac_sim::{Engine, SimConfig, StopWhen};
/// use std::collections::HashSet;
///
/// # fn main() -> Result<(), mac_sim::SimError> {
/// let c = 64;
/// let cfg = SimConfig::new(c).seed(11).stop_when(StopWhen::AllTerminated);
/// let mut exec = Engine::new(cfg);
/// for _ in 0..12 {
///     exec.add_node(IdReduction::new(Params::practical(), c));
/// }
/// exec.run()?;
/// let ids: Vec<u32> = exec
///     .iter_nodes()
///     .filter_map(|p| match p.outcome() {
///         Some(IdReductionOutcome::Renamed(id)) => Some(id),
///         _ => None,
///     })
///     .collect();
/// assert!(!ids.is_empty());
/// let distinct: HashSet<u32> = ids.iter().copied().collect();
/// assert_eq!(distinct.len(), ids.len(), "adopted ids must be unique");
/// assert!(ids.iter().all(|&id| id <= c / 2));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct IdReduction {
    /// Renaming range `[1, c_half]`.
    c_half: u32,
    /// Inverse knock-out probability for reduction rounds.
    k: f64,
    sub: SubRound,
    /// Channel picked in the current rename round, kept if alone.
    candidate: Option<u32>,
    transmitted: bool,
    outcome: Option<IdReductionOutcome>,
    stats: IdReductionStats,
    meter: PhaseMeter,
}

impl IdReduction {
    /// Creates an `IdReduction` node for `channels` channels.
    ///
    /// The renaming range is `[C'/2]` where `C'` is the largest power of two
    /// `≤ channels` (the paper assumes `C` is a power of two).
    ///
    /// # Panics
    ///
    /// Panics if `channels < 2`.
    #[must_use]
    pub fn new(params: Params, channels: u32) -> Self {
        assert!(channels >= 2, "IdReduction needs C >= 2, got {channels}");
        let c_eff = 1u32 << (31 - channels.leading_zeros());
        IdReduction {
            c_half: (c_eff / 2).max(1),
            k: params.knock_k(channels),
            sub: SubRound::Rename,
            candidate: None,
            transmitted: false,
            outcome: None,
            stats: IdReductionStats::default(),
            meter: PhaseMeter::default(),
        }
    }

    /// How this node's participation ended, once it has.
    #[must_use]
    pub fn outcome(&self) -> Option<IdReductionOutcome> {
        self.outcome
    }

    /// The renaming range: adopted ids are in `1..=rename_range()`.
    #[must_use]
    pub fn rename_range(&self) -> u32 {
        self.c_half
    }

    /// Round counters for experiments.
    #[must_use]
    pub fn stats(&self) -> IdReductionStats {
        self.stats
    }
}

impl Protocol for IdReduction {
    type Msg = u32;

    fn act(&mut self, _ctx: &RoundContext, rng: &mut SmallRng) -> Action<u32> {
        debug_assert!(self.outcome.is_none(), "terminated node must not act");
        self.stats.total_rounds += 1;
        match self.sub {
            SubRound::Rename => {
                self.stats.rename_rounds += 1;
                let pick = rng.gen_range(1..=self.c_half);
                self.candidate = Some(pick);
                self.transmitted = true;
                Action::transmit(ChannelId::new(pick), 0)
            }
            SubRound::Report => {
                if self.candidate.is_some() {
                    self.transmitted = true;
                    Action::transmit(ChannelId::PRIMARY, 0)
                } else {
                    self.transmitted = false;
                    Action::listen(ChannelId::PRIMARY)
                }
            }
            SubRound::Reduce => {
                self.stats.reduction_rounds += 1;
                self.transmitted = rng.gen_bool((1.0 / self.k).min(1.0));
                if self.transmitted {
                    Action::transmit(ChannelId::PRIMARY, 0)
                } else {
                    Action::listen(ChannelId::PRIMARY)
                }
            }
        }
    }

    fn observe(&mut self, _ctx: &RoundContext, feedback: Feedback<u32>, _rng: &mut SmallRng) {
        match self.sub {
            SubRound::Rename => {
                // Keep the candidate only if this node was alone on it.
                if feedback.message().is_none() {
                    self.candidate = None;
                }
                self.sub = SubRound::Report;
            }
            SubRound::Report => {
                let any_transmission = !feedback.is_silence();
                if any_transmission {
                    self.outcome = Some(match self.candidate {
                        Some(id) => IdReductionOutcome::Renamed(id),
                        None => IdReductionOutcome::Eliminated,
                    });
                } else {
                    self.sub = SubRound::Reduce;
                }
                self.candidate = None;
            }
            SubRound::Reduce => {
                if !self.transmitted && !feedback.is_silence() {
                    self.outcome = Some(IdReductionOutcome::Eliminated);
                }
                self.sub = SubRound::Rename;
            }
        }
    }

    fn status(&self) -> Status {
        match self.outcome {
            None => Status::Active,
            // Renamed nodes are "done with this step"; standalone runs end
            // here, and the full algorithm takes over before status is read.
            Some(_) => Status::Inactive,
        }
    }

    fn phase(&self) -> &'static str {
        match self.sub {
            SubRound::Rename => "id-rename",
            SubRound::Report => "id-report",
            SubRound::Reduce => "id-reduce",
        }
    }
}

/// As a [`Phase`], `IdReduction` *completes* with the adopted id (the
/// typed value the next step consumes — [`crate::LeafElection`] maps it to
/// a leaf) and *terminates* eliminated nodes. The spine record carries the
/// id in [`PhaseStats::adopted_id`].
impl Phase for IdReduction {
    type Output = u32;

    fn act(&mut self, ctx: &RoundContext, rng: &mut SmallRng) -> Action<u32> {
        let action = Protocol::act(self, ctx, rng);
        self.meter.on_act(&action);
        action
    }

    fn observe(&mut self, ctx: &RoundContext, feedback: Feedback<u32>, rng: &mut SmallRng) {
        Protocol::observe(self, ctx, feedback, rng);
    }

    fn outcome(&self) -> Option<PhaseOutcome<u32>> {
        match self.outcome {
            None => None,
            Some(IdReductionOutcome::Renamed(id)) => Some(PhaseOutcome::Complete(id)),
            Some(IdReductionOutcome::Eliminated) => {
                Some(PhaseOutcome::Terminated(Status::Inactive))
            }
        }
    }

    fn name(&self) -> &'static str {
        "id-reduction"
    }

    fn label(&self) -> &'static str {
        Protocol::phase(self)
    }

    fn collect_stats(&self, out: &mut Vec<PhaseStats>) {
        let mut record = self.meter.snapshot("id-reduction");
        if let Some(IdReductionOutcome::Renamed(id)) = self.outcome {
            record.adopted_id = Some(id);
        }
        out.push(record);
    }
}

impl_phase_telemetry!(IdReduction);

#[cfg(test)]
mod tests {
    use super::*;
    use mac_sim::{Engine, SimConfig, StopWhen};
    use std::collections::HashSet;

    fn run(c: u32, active: usize, seed: u64) -> (mac_sim::RunReport, Vec<IdReductionOutcome>) {
        let cfg = SimConfig::new(c)
            .seed(seed)
            .stop_when(StopWhen::AllTerminated)
            .max_rounds(100_000);
        let mut exec = Engine::new(cfg);
        for _ in 0..active {
            exec.add_node(IdReduction::new(Params::practical(), c));
        }
        let report = exec.run().expect("run succeeds");
        let outcomes = exec.iter_nodes().map(|p| p.outcome().unwrap()).collect();
        (report, outcomes)
    }

    fn renamed_ids(outcomes: &[IdReductionOutcome]) -> Vec<u32> {
        outcomes
            .iter()
            .filter_map(|o| match o {
                IdReductionOutcome::Renamed(id) => Some(*id),
                IdReductionOutcome::Eliminated => None,
            })
            .collect()
    }

    #[test]
    fn renamed_ids_are_unique_and_in_range() {
        for seed in 0..30 {
            let (_, outcomes) = run(64, 20, seed);
            let ids = renamed_ids(&outcomes);
            assert!(!ids.is_empty(), "seed {seed}: nobody renamed");
            let set: HashSet<u32> = ids.iter().copied().collect();
            assert_eq!(set.len(), ids.len(), "seed {seed}: duplicate ids {ids:?}");
            assert!(ids.iter().all(|&id| (1..=32).contains(&id)), "seed {seed}");
        }
    }

    #[test]
    fn survivor_count_at_most_c_half() {
        for seed in 0..20 {
            let (_, outcomes) = run(16, 64, seed);
            assert!(renamed_ids(&outcomes).len() <= 8, "seed {seed}");
        }
    }

    #[test]
    fn single_node_renames_immediately_and_solves() {
        let (report, outcomes) = run(64, 1, 0);
        assert_eq!(renamed_ids(&outcomes).len(), 1);
        // Its lone report transmission on the primary channel solves the
        // problem as a byproduct.
        assert!(report.is_solved());
        assert!(report.rounds_executed <= 2);
    }

    #[test]
    fn small_active_sets_rename_in_one_attempt_with_many_channels() {
        // With |A| << sqrt(C/2), the birthday bound makes the first attempt
        // succeed almost surely.
        let mut total_rounds = 0u64;
        for seed in 0..20 {
            let (report, _) = run(4096, 5, seed);
            total_rounds += report.rounds_executed;
        }
        // One rename + one report = 2 rounds when the first attempt works.
        assert!(
            total_rounds <= 20 * 3,
            "expected ~2 rounds per run, got {total_rounds} total"
        );
    }

    #[test]
    fn crowded_start_still_terminates_with_unique_ids() {
        // |A| far above C/6 forces reduction rounds to do real work first.
        for seed in 0..10 {
            let (_, outcomes) = run(32, 500, seed);
            let ids = renamed_ids(&outcomes);
            assert!(!ids.is_empty(), "seed {seed}");
            let set: HashSet<u32> = ids.iter().copied().collect();
            assert_eq!(set.len(), ids.len(), "seed {seed}");
        }
    }

    #[test]
    fn rounds_scale_like_log_n_over_log_c() {
        // Fixing |A| = 24 (= Θ(log n) for n = 2^24) and growing C must not
        // grow the round count; with large C it collapses to ~2 rounds.
        let mean = |c: u32| -> f64 {
            let mut total = 0u64;
            for seed in 0..30 {
                let (report, _) = run(c, 24, seed);
                total += report.rounds_executed;
            }
            total as f64 / 30.0
        };
        let small = mean(16);
        let large = mean(1 << 14);
        assert!(
            large <= small,
            "rounds must not grow with C: {large} vs {small}"
        );
        assert!(
            large < 4.0,
            "with C=16384 renaming is ~1 attempt, got {large}"
        );
    }

    #[test]
    fn rename_range_uses_power_of_two_floor() {
        let idr = IdReduction::new(Params::practical(), 100);
        assert_eq!(idr.rename_range(), 32); // prevpow2(100) = 64, halved
        let idr = IdReduction::new(Params::practical(), 2);
        assert_eq!(idr.rename_range(), 1);
        let idr = IdReduction::new(Params::practical(), 3);
        assert_eq!(idr.rename_range(), 1);
    }

    #[test]
    #[should_panic(expected = "C >= 2")]
    fn rejects_single_channel() {
        let _ = IdReduction::new(Params::practical(), 1);
    }

    #[test]
    fn paper_params_work_at_large_c() {
        // With the literal k = sqrt(C)/144 the knock probability is ~1 for
        // C = 2^22 (k clamps to 3 until C is astronomically large)... the
        // clamp keeps the algorithm functional either way.
        let (_, outcomes) = {
            let cfg = SimConfig::new(1 << 12)
                .seed(5)
                .stop_when(StopWhen::AllTerminated)
                .max_rounds(100_000);
            let mut exec = Engine::new(cfg);
            for _ in 0..40 {
                exec.add_node(IdReduction::new(Params::paper(), 1 << 12));
            }
            let report = exec.run().expect("run succeeds");
            let outcomes: Vec<_> = exec.iter_nodes().map(|p| p.outcome().unwrap()).collect();
            (report, outcomes)
        };
        let ids = renamed_ids(&outcomes);
        assert!(!ids.is_empty());
        let set: HashSet<u32> = ids.iter().copied().collect();
        assert_eq!(set.len(), ids.len());
    }

    #[test]
    fn stats_count_rounds() {
        let (_, _) = run(16, 10, 3);
        let cfg = SimConfig::new(16)
            .seed(3)
            .stop_when(StopWhen::AllTerminated)
            .max_rounds(10_000);
        let mut exec = Engine::new(cfg);
        for _ in 0..10 {
            exec.add_node(IdReduction::new(Params::practical(), 16));
        }
        exec.run().unwrap();
        for node in exec.iter_nodes() {
            let s = node.stats();
            assert!(s.total_rounds >= s.rename_rounds + s.reduction_rounds);
            assert!(s.rename_rounds >= 1);
        }
    }
}
