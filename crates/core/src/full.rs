//! The composed general algorithm of §5 (Theorem 4):
//! `Reduce → IdReduction → LeafElection`, solving contention resolution for
//! any number of active nodes in
//! `O(log n / log C + (log log n)(log log log n))` rounds w.h.p.
//!
//! For `C` below a constant the multi-channel machinery cannot help (the
//! lower bound degenerates to `Ω(log n)`), so — exactly as the paper's
//! analysis prescribes — the algorithm falls back to an optimal
//! single-channel collision-detection protocol
//! ([`crate::baselines::CdTournament`]).
//!
//! All three steps are globally synchronized: `Reduce` runs for a fixed
//! number of rounds, and `IdReduction` ends for every participant in the
//! same report round, so survivors enter each next step in lockstep. That
//! is precisely the barrier-handoff semantics of
//! [`Phase::and_then`](crate::phase::Phase::and_then), and this module
//! *is* that composition: [`FullAlgorithm`] is a thin facade over the
//! [`PaperStack`] phase stack
//!
//! ```text
//! reduce.and_then(id_reduction).and_then(leaf_election)
//!       .with_fallback(C < fallback_threshold, cd_tournament)
//! ```
//!
//! running on the engine through [`crate::phase::PhaseProtocol`].

use mac_sim::{Action, Feedback, Protocol, RoundContext, Status};
use rand::rngs::SmallRng;

use crate::baselines::CdTournament;
use crate::id_reduction::IdReduction;
use crate::leaf_election::LeafElection;
use crate::params::Params;
use crate::phase::{
    AndThen, NextPhase, Phase, PhaseProtocol, PhaseStats, PhaseTelemetry, WithFallback,
};
use crate::reduce::Reduce;
use crate::supervise::{BuildPhase, RestartPolicy, Supervised};

/// Which step of the pipeline a [`FullAlgorithm`] node finished in, plus the
/// id it adopted if it reached step 3. Exposed for experiments E9–E11.
///
/// This is a *view* computed from the node's per-phase telemetry spine
/// (see [`PhaseStats`] and [`PhaseTelemetry`]) — the spine is the source
/// of truth, and [`FullAlgorithm::phase_stats`](PhaseTelemetry::phase_stats)
/// exposes it directly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FullStats {
    /// Rounds spent in step 1 (`Reduce`).
    pub reduce_rounds: u64,
    /// Rounds spent in step 2 (`IdReduction`).
    pub id_reduction_rounds: u64,
    /// Rounds spent in step 3 (`LeafElection`).
    pub election_rounds: u64,
    /// The unique id from `[C/2]` adopted in step 2, if the node got there.
    pub adopted_id: Option<u32>,
    /// Whether the single-channel fallback was used instead of the pipeline.
    pub used_fallback: bool,
}

/// Builds step 2 ([`IdReduction`]) when step 1 ([`Reduce`]) completes.
///
/// A named [`NextPhase`] builder (rather than a closure) so that
/// [`PaperStack`] is a nameable type that derives `Debug` and `Clone`.
#[derive(Debug, Clone, Copy)]
pub struct MakeIdReduction {
    params: Params,
    channels: u32,
}

impl NextPhase<()> for MakeIdReduction {
    type Phase = IdReduction;

    fn build(&mut self, (): ()) -> IdReduction {
        IdReduction::new(self.params, self.channels)
    }
}

/// Builds step 3 ([`LeafElection`]) from the id adopted in step 2.
#[derive(Debug, Clone, Copy)]
pub struct MakeLeafElection {
    channels: u32,
}

impl NextPhase<u32> for MakeLeafElection {
    type Phase = LeafElection;

    fn build(&mut self, id: u32) -> LeafElection {
        LeafElection::new(self.channels, id)
    }
}

/// The paper's Theorem 4 pipeline as a composed phase stack:
/// `Reduce → IdReduction → LeafElection`, with the single-channel
/// [`CdTournament`] branch when `C` is below the fallback threshold.
pub type PaperStack = WithFallback<
    AndThen<AndThen<Reduce, IdReduction, MakeIdReduction>, LeafElection, MakeLeafElection>,
    CdTournament,
>;

/// Builds fresh [`PaperStack`] instances — the [`BuildPhase`] factory a
/// [`Supervised`] wrapper uses to restart the Theorem 4 pipeline from a
/// clean state after a wedge. Named (rather than a closure) so that
/// [`SupervisedPaperStack`] is a nameable type.
#[derive(Debug, Clone, Copy)]
pub struct MakePaperStack {
    /// Pipeline constants.
    pub params: Params,
    /// Channel count `C`.
    pub channels: u32,
    /// Universe size `n`.
    pub n: u64,
}

impl BuildPhase for MakePaperStack {
    type Phase = PaperStack;

    fn build(&mut self) -> PaperStack {
        let use_fallback = self.channels < self.params.fallback_below_channels;
        Reduce::with_params(self.params, self.n)
            .and_then(MakeIdReduction {
                params: self.params,
                channels: self.channels,
            })
            .and_then(MakeLeafElection {
                channels: self.channels,
            })
            .with_fallback(use_fallback, CdTournament::new())
    }
}

/// The paper pipeline under restart-with-backoff supervision (see
/// [`crate::supervise`]): a wedge under faults restarts the whole
/// `Reduce → IdReduction → LeafElection` stack from clean state on a
/// fresh derived RNG stream.
pub type SupervisedPaperStack = Supervised<PaperStack, MakePaperStack>;

/// A supervised paper-pipeline node: [`SupervisedPaperStack`] adapted to
/// run on the engine, telemetry included. Experiment E19 and
/// [`crate::session::Algorithm::SupervisedPaper`] both build nodes here.
///
/// # Panics
///
/// Panics if `channels < 1`.
#[must_use]
pub fn supervised_paper_node(
    params: Params,
    channels: u32,
    n: u64,
    policy: RestartPolicy,
) -> PhaseProtocol<SupervisedPaperStack> {
    assert!(channels >= 1, "the model requires C >= 1");
    let make = MakePaperStack {
        params,
        channels,
        n,
    };
    PhaseProtocol::new(Supervised::new(make, policy))
}

/// The paper's general contention-resolution algorithm (Theorem 4).
///
/// Every activated node runs one instance; `n` is the (known) maximum
/// number of nodes and `channels` the number of available channels.
///
/// ```
/// use contention::{FullAlgorithm, Params};
/// use mac_sim::{Engine, SimConfig};
///
/// # fn main() -> Result<(), mac_sim::SimError> {
/// let (c, n) = (128u32, 1u64 << 14);
/// let mut exec = Engine::new(SimConfig::new(c).seed(2));
/// for _ in 0..1000 {
///     exec.add_node(FullAlgorithm::new(Params::practical(), c, n));
/// }
/// assert!(exec.run()?.is_solved());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FullAlgorithm {
    inner: PhaseProtocol<PaperStack>,
}

impl FullAlgorithm {
    /// Creates a node of the general algorithm.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `channels < 1`.
    #[must_use]
    #[inline]
    pub fn new(params: Params, channels: u32, n: u64) -> Self {
        assert!(channels >= 1, "the model requires C >= 1");
        let stack = MakePaperStack {
            params,
            channels,
            n,
        }
        .build();
        FullAlgorithm {
            inner: PhaseProtocol::new(stack),
        }
    }

    /// Per-step round counters and outcome details, as a [`FullStats`]
    /// view over the telemetry spine.
    #[must_use]
    pub fn stats(&self) -> FullStats {
        let mut stats = FullStats {
            used_fallback: self.inner.inner().is_fallback(),
            ..FullStats::default()
        };
        for record in self.inner.phase_stats() {
            match record.name {
                "reduce" => stats.reduce_rounds = record.rounds,
                "id-reduction" => {
                    stats.id_reduction_rounds = record.rounds;
                    stats.adopted_id = record.adopted_id;
                }
                "leaf-election" => stats.election_rounds = record.rounds,
                _ => {}
            }
        }
        stats
    }

    /// The step this node is currently in, as a short label.
    #[must_use]
    pub fn stage_name(&self) -> &'static str {
        if self.inner.is_settled() {
            return "done";
        }
        match self.inner.inner().name() {
            "cd-tournament" => "fallback",
            name => name,
        }
    }

    /// The underlying composed stack.
    #[must_use]
    pub fn stack(&self) -> &PaperStack {
        self.inner.inner()
    }
}

impl Protocol for FullAlgorithm {
    type Msg = u32;

    #[inline]
    fn act(&mut self, ctx: &RoundContext, rng: &mut SmallRng) -> Action<u32> {
        self.inner.act(ctx, rng)
    }

    #[inline]
    fn observe(&mut self, ctx: &RoundContext, feedback: Feedback<u32>, rng: &mut SmallRng) {
        self.inner.observe(ctx, feedback, rng);
    }

    #[inline]
    fn status(&self) -> Status {
        self.inner.status()
    }

    #[inline]
    fn phase(&self) -> &'static str {
        self.inner.phase()
    }
}

impl PhaseTelemetry for FullAlgorithm {
    fn phase_stats(&self) -> Vec<PhaseStats> {
        self.inner.phase_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mac_sim::{Engine, RunReport, SimConfig, StopWhen};
    use std::collections::HashSet;

    fn run(c: u32, n: u64, active: usize, seed: u64) -> (RunReport, Vec<FullAlgorithm>) {
        let cfg = SimConfig::new(c)
            .seed(seed)
            .stop_when(StopWhen::AllTerminated)
            .max_rounds(1_000_000);
        let mut exec = Engine::new(cfg);
        for _ in 0..active {
            exec.add_node(FullAlgorithm::new(Params::practical(), c, n));
        }
        let report = exec.run().expect("run succeeds");
        let nodes = exec.iter_nodes().cloned().collect();
        (report, nodes)
    }

    #[test]
    fn solves_across_activation_scales() {
        let n = 1u64 << 12;
        for active in [1usize, 2, 3, 10, 100, 1000, 4096] {
            let (report, _) = run(64, n, active, 42);
            assert!(report.is_solved(), "active={active}");
            assert!(report.leaders.len() <= 1, "active={active}");
            assert!(report.active_remaining.is_empty(), "active={active}");
        }
    }

    #[test]
    fn many_seeds_never_split_brain() {
        for seed in 0..40 {
            let (report, _) = run(32, 1 << 10, 200, seed);
            assert!(report.is_solved(), "seed {seed}");
            assert!(
                report.leaders.len() <= 1,
                "seed {seed}: {:?}",
                report.leaders
            );
        }
    }

    #[test]
    fn adopted_ids_are_unique() {
        for seed in 0..20 {
            let (_, nodes) = run(64, 1 << 12, 500, seed);
            let ids: Vec<u32> = nodes.iter().filter_map(|p| p.stats().adopted_id).collect();
            let set: HashSet<u32> = ids.iter().copied().collect();
            assert_eq!(set.len(), ids.len(), "seed {seed}: duplicate ids");
            assert!(ids.iter().all(|&id| id <= 32), "seed {seed}");
        }
    }

    #[test]
    fn small_c_uses_fallback_and_still_solves() {
        let (report, nodes) = run(4, 1 << 10, 100, 9);
        assert!(report.is_solved());
        assert!(nodes.iter().all(|p| p.stats().used_fallback));
    }

    #[test]
    fn large_c_uses_pipeline() {
        let (report, nodes) = run(256, 1 << 12, 300, 5);
        assert!(report.is_solved());
        assert!(nodes.iter().all(|p| !p.stats().used_fallback));
        // Someone must have made it to leaf election unless the problem was
        // solved earlier by a lone transmission (also a success).
        let reached_le = nodes.iter().any(|p| p.stats().election_rounds > 0);
        let solved_early = report.solved_round.is_some();
        assert!(reached_le || solved_early);
    }

    #[test]
    fn rounds_fit_theorem_4_budget() {
        // Generous concrete budget for O(log n/log C + lglg n * lglglg n):
        // 6*(lg n/lg C) + 6*lglg(n)*max(lglglg n,1) + 40.
        let n = 1u64 << 16;
        for c in [16u32, 64, 256, 1024] {
            for seed in 0..10 {
                let (report, _) = run(c, n, 800, seed);
                let lg_n = (n as f64).log2();
                let lglg = lg_n.log2();
                let budget =
                    6.0 * lg_n / f64::from(c).log2() + 6.0 * lglg * lglg.log2().max(1.0) + 40.0;
                let rounds = report.rounds_to_solve().unwrap() as f64;
                assert!(
                    rounds <= budget,
                    "C={c} seed={seed}: {rounds} rounds > {budget}"
                );
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let (r1, _) = run(64, 1 << 10, 123, 77);
        let (r2, _) = run(64, 1 << 10, 123, 77);
        assert_eq!(r1.solved_round, r2.solved_round);
        assert_eq!(r1.leaders, r2.leaders);
    }

    #[test]
    fn works_with_two_active_nodes() {
        // The general algorithm must also handle the restricted case.
        for seed in 0..20 {
            let (report, _) = run(64, 1 << 14, 2, seed);
            assert!(report.is_solved(), "seed {seed}");
        }
    }

    #[test]
    fn paper_params_also_solve() {
        let cfg = SimConfig::new(1 << 10)
            .seed(4)
            .stop_when(StopWhen::AllTerminated)
            .max_rounds(1_000_000);
        let mut exec = Engine::new(cfg);
        for _ in 0..500 {
            exec.add_node(FullAlgorithm::new(Params::paper(), 1 << 10, 1 << 12));
        }
        let report = exec.run().expect("run succeeds");
        assert!(report.is_solved());
    }

    #[test]
    fn supervised_node_solves_fault_free_without_restarting() {
        use crate::supervise::{RestartPolicy, RESTART_MARKER};
        let cfg = SimConfig::new(64)
            .seed(11)
            .stop_when(StopWhen::AllTerminated)
            .max_rounds(1_000_000);
        let mut exec = Engine::new(cfg);
        for _ in 0..200 {
            exec.add_node(supervised_paper_node(
                Params::practical(),
                64,
                1 << 12,
                RestartPolicy::new(2_000, 3),
            ));
        }
        let report = exec.run().expect("supervised run succeeds");
        assert!(report.is_solved());
        for node in exec.iter_nodes() {
            assert_eq!(node.inner().restarts(), 0, "fault-free: no restarts");
            assert!(node.phase_stats().iter().all(|r| r.name != RESTART_MARKER));
        }
    }

    #[test]
    fn stage_name_tracks_progress() {
        let node = FullAlgorithm::new(Params::practical(), 64, 1 << 10);
        assert_eq!(node.stage_name(), "reduce");
        let node = FullAlgorithm::new(Params::practical(), 2, 1 << 10);
        assert_eq!(node.stage_name(), "fallback");
    }

    #[test]
    fn stats_view_matches_the_spine() {
        let (_, nodes) = run(64, 1 << 12, 300, 13);
        for node in &nodes {
            let stats = node.stats();
            let spine = node.phase_stats();
            let by_name = |name: &str| {
                spine
                    .iter()
                    .find(|r| r.name == name)
                    .map_or(0, |r| r.rounds)
            };
            assert_eq!(stats.reduce_rounds, by_name("reduce"));
            assert_eq!(stats.id_reduction_rounds, by_name("id-reduction"));
            assert_eq!(stats.election_rounds, by_name("leaf-election"));
            let spine_id = spine.iter().find_map(|r| r.adopted_id);
            assert_eq!(stats.adopted_id, spine_id);
            // Spine records appear in pipeline order.
            let names: Vec<_> = spine.iter().map(|r| r.name).collect();
            let expected = ["reduce", "id-reduction", "leaf-election"];
            assert!(
                expected
                    .iter()
                    .filter(|n| names.contains(n))
                    .eq(names.iter().map(|n| {
                        expected
                            .iter()
                            .find(|e| **e == *n)
                            .expect("only pipeline phases in spine")
                    })),
                "unexpected spine order: {names:?}"
            );
        }
    }
}
