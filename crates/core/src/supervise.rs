//! Protocol-level recovery: restart a wedged phase stack under a backoff
//! policy.
//!
//! The fault layers of [`mac_sim::fault`] can push any protocol past its
//! breakdown threshold (experiment E18 measures where): the stack keeps
//! acting but never reaches an outcome, and the run ends in
//! [`mac_sim::SimError::BudgetExhausted`]. The robust contention-resolution
//! line of work treats *recovery* from such wedges as the headline
//! property, and this module supplies it as a combinator:
//! [`Supervised`] wraps any [`Phase`] stack, watches for a wedge — a
//! round-budget *slice* exhausted without an outcome, or a phase-reported
//! [`Phase::invariant_violation`] — and restarts the stack from a clean
//! state under an exponential-backoff [`RestartPolicy`].
//!
//! Because transient noise is random, a fresh attempt with fresh
//! randomness has an independent chance of success: if one attempt solves
//! with probability `q`, `A` supervised attempts solve with probability
//! `1 − (1 − q)^A` — the graceful-degradation curve experiment E19
//! measures against E18's unsupervised thresholds.
//!
//! # Determinism
//!
//! Each attempt runs on its own RNG stream, derived with
//! [`mac_sim::derive_stream_seed`] from a single master draw the
//! supervisor takes from the node's engine RNG at its first `act`. The
//! engine RNG is never touched again, so a supervised run is a pure
//! function of `(node seed, policy)` — bit-deterministic and
//! thread-count invariant, like everything else in the workspace — and
//! attempt `k`'s behavior does not depend on how long attempts
//! `0..k` ran.
//!
//! # Telemetry
//!
//! Failed attempts stay visible in the phase spine: each restart archives
//! the wedged attempt's [`PhaseStats`] records followed by a marker record
//! named [`RESTART_MARKER`] whose `rounds` field carries the rounds the
//! failed attempt consumed. [`Supervised::attempts`] and
//! [`Supervised::restart_rounds`] expose the same accounting directly, and
//! [`crate::session::Resolution::restarts`] counts the markers back out of
//! a session's solver spine.
//!
//! ```
//! use contention::phase::{Phase, PhaseProtocol};
//! use contention::supervise::{RestartPolicy, Supervised};
//! use contention::Reduce;
//!
//! // A paper Reduce step that restarts (up to 4 attempts, slices
//! // 64/128/256/512 rounds) if a fault wedges it.
//! let policy = RestartPolicy::new(64, 4);
//! let supervised = Supervised::new(|| Reduce::new(1 << 12), policy);
//! let _node = PhaseProtocol::new(supervised);
//! ```

use mac_sim::{derive_stream_seed, Action, Feedback, RoundContext, Status};
use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

use crate::phase::{Phase, PhaseOutcome, PhaseStats};

/// Name of the synthetic [`PhaseStats`] marker record a [`Supervised`]
/// combinator archives at each restart. The marker's `rounds` field is the
/// acted-round count of the attempt that was abandoned; its
/// `transmissions` field is zero (the failed attempt's own records, which
/// precede the marker in the spine, carry the transmission counts).
pub const RESTART_MARKER: &str = "restart";

/// When and how often a [`Supervised`] stack restarts.
///
/// Attempt `k` (zero-based) gets a round-budget *slice* of
/// `slice · backoff^k` acted rounds (saturating, optionally capped by
/// [`RestartPolicy::slice_cap`]); exhausting the slice without an outcome
/// counts as a wedge and triggers a restart, up to `max_attempts` attempts
/// in total. The exponential backoff mirrors classic supervisor trees:
/// later attempts get more room, so a protocol that is merely slow under
/// heavy noise still finishes, while a hard wedge is abandoned quickly at
/// first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RestartPolicy {
    /// Round-budget slice of the first attempt.
    pub slice: u64,
    /// Multiplier applied to the slice after each restart.
    pub backoff: u64,
    /// Total attempts (the first run counts as one). When the last
    /// attempt wedges, the supervised stack gives up and terminates
    /// [`Status::Inactive`].
    pub max_attempts: u32,
    /// Optional ceiling on any single attempt's slice.
    pub slice_cap: Option<u64>,
}

impl RestartPolicy {
    /// A policy with the given first-attempt slice and attempt count,
    /// doubling the slice after each restart (backoff 2, no cap).
    ///
    /// # Panics
    ///
    /// Panics if `slice == 0` or `max_attempts == 0`.
    #[must_use]
    pub fn new(slice: u64, max_attempts: u32) -> Self {
        assert!(slice >= 1, "RestartPolicy needs a positive slice");
        assert!(
            max_attempts >= 1,
            "RestartPolicy needs at least one attempt"
        );
        RestartPolicy {
            slice,
            backoff: 2,
            max_attempts,
            slice_cap: None,
        }
    }

    /// Sets the backoff multiplier (1 = constant slices).
    ///
    /// # Panics
    ///
    /// Panics if `backoff == 0`.
    #[must_use]
    pub fn backoff(mut self, backoff: u64) -> Self {
        assert!(backoff >= 1, "backoff multiplier must be at least 1");
        self.backoff = backoff;
        self
    }

    /// Caps every attempt's slice at `cap` rounds.
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0`.
    #[must_use]
    pub fn slice_cap(mut self, cap: u64) -> Self {
        assert!(cap >= 1, "slice cap must be positive");
        self.slice_cap = Some(cap);
        self
    }

    /// The round slice of attempt `attempt` (zero-based):
    /// `slice · backoff^attempt`, saturating, capped by
    /// [`RestartPolicy::slice_cap`].
    #[must_use]
    pub fn slice_for(&self, attempt: u32) -> u64 {
        let mut slice = self.slice;
        for _ in 0..attempt {
            slice = slice.saturating_mul(self.backoff);
        }
        match self.slice_cap {
            Some(cap) => slice.min(cap),
            None => slice,
        }
    }

    /// Total acted rounds the policy can consume across all attempts —
    /// the engine round budget a supervised run needs to be given so the
    /// supervisor (not the engine watchdog) decides when to give up.
    #[must_use]
    pub fn total_rounds(&self) -> u64 {
        (0..self.max_attempts).fold(0u64, |sum, k| sum.saturating_add(self.slice_for(k)))
    }
}

/// Builds a fresh instance of a phase stack for each supervised attempt.
///
/// Implemented for any `FnMut() -> P` closure; implement it on a named
/// struct when the supervised stack's type must be nameable (as
/// [`crate::full::MakePaperStack`] does for the paper pipeline).
pub trait BuildPhase {
    /// The stack this builder produces.
    type Phase: Phase;

    /// Builds a fresh, clean-state instance of the stack.
    fn build(&mut self) -> Self::Phase;
}

impl<P: Phase, F: FnMut() -> P> BuildPhase for F {
    type Phase = P;

    fn build(&mut self) -> P {
        self()
    }
}

/// Restart-with-backoff supervision over a phase stack (the tentpole of
/// the robustness layer; see the [module docs](self)).
///
/// Transparent while the current attempt runs. After each `observe`, the
/// supervisor checks for a wedge — the attempt's slice exhausted without
/// an outcome, or an [`Phase::invariant_violation`] report — and restarts
/// the stack from a clean state (fresh instance from the builder, fresh
/// derived RNG stream) until the policy's attempts are exhausted, at which
/// point the composition terminates [`Status::Inactive`] (the node gives
/// up, exactly like [`crate::phase::Bounded`]).
///
/// Genuine outcomes pass through untouched: a stack that *completes* or
/// legitimately *terminates* (e.g. a [`crate::full::PaperStack`] loser
/// retiring `Inactive`) is never restarted — supervision reacts to the
/// absence of progress, not to results.
#[derive(Debug, Clone)]
pub struct Supervised<P, B> {
    policy: RestartPolicy,
    builder: B,
    current: P,
    /// Zero-based index of the running attempt.
    attempt: u32,
    /// Acted rounds of the running attempt.
    acted: u64,
    /// Total acted rounds consumed by abandoned attempts.
    restart_rounds: u64,
    /// Master seed drawn from the engine RNG at the first `act`; all
    /// attempt streams derive from it.
    master: Option<u64>,
    /// The running attempt's private RNG (`None` until the master is
    /// drawn).
    attempt_rng: Option<SmallRng>,
    /// Spine records of abandoned attempts, each followed by a
    /// [`RESTART_MARKER`] record.
    archived: Vec<PhaseStats>,
    /// Wedges caused by slice exhaustion (the attempt ran out of rounds).
    wedges_slice: u32,
    /// Wedges caused by a phase-reported invariant violation.
    wedges_violation: u32,
    /// Set when the last attempt wedged: the composition is over.
    gave_up: bool,
}

impl<P, B> Supervised<P, B>
where
    P: Phase,
    B: BuildPhase<Phase = P>,
{
    /// Supervises fresh stacks from `builder` under `policy`.
    #[must_use]
    pub fn new(mut builder: B, policy: RestartPolicy) -> Self {
        let current = builder.build();
        Supervised {
            policy,
            builder,
            current,
            attempt: 0,
            acted: 0,
            restart_rounds: 0,
            master: None,
            attempt_rng: None,
            archived: Vec::new(),
            wedges_slice: 0,
            wedges_violation: 0,
            gave_up: false,
        }
    }

    /// The policy this supervisor runs under.
    #[must_use]
    pub fn policy(&self) -> RestartPolicy {
        self.policy
    }

    /// Attempts started so far (at least 1; the first run counts).
    #[must_use]
    pub fn attempts(&self) -> u32 {
        self.attempt + 1
    }

    /// Restarts performed so far.
    #[must_use]
    pub fn restarts(&self) -> u32 {
        if self.gave_up {
            self.attempt
        } else {
            self.attempt.min(self.policy.max_attempts - 1)
        }
    }

    /// Total acted rounds consumed by abandoned attempts.
    #[must_use]
    pub fn restart_rounds(&self) -> u64 {
        self.restart_rounds
    }

    /// Wedges whose cause was slice exhaustion — the attempt consumed its
    /// whole round slice without reaching an outcome. Together with
    /// [`Supervised::wedges_violation`] this partitions every wedge by
    /// cause for the telemetry layer.
    #[must_use]
    pub fn wedges_slice(&self) -> u32 {
        self.wedges_slice
    }

    /// Wedges whose cause was a phase-reported
    /// [`Phase::invariant_violation`] (e.g. a forged collision detected
    /// under adversarial jamming).
    #[must_use]
    pub fn wedges_violation(&self) -> u32 {
        self.wedges_violation
    }

    /// Whether every attempt wedged and the supervisor gave up.
    #[must_use]
    pub fn gave_up(&self) -> bool {
        self.gave_up
    }

    /// The currently running attempt's stack.
    #[must_use]
    pub fn current(&self) -> &P {
        &self.current
    }

    /// Whether the running attempt is wedged: slice exhausted without an
    /// outcome, or an invariant violation reported.
    fn wedged(&self) -> bool {
        if self.current.outcome().is_some() {
            return false;
        }
        self.acted >= self.policy.slice_for(self.attempt)
            || self.current.invariant_violation().is_some()
    }

    /// Abandon the running attempt: archive its spine plus a restart
    /// marker, then either rebuild (next attempt, fresh RNG stream) or
    /// give up.
    fn restart(&mut self) {
        self.current.collect_stats(&mut self.archived);
        self.archived.push(PhaseStats {
            name: RESTART_MARKER,
            rounds: self.acted,
            transmissions: 0,
            adopted_id: None,
        });
        self.restart_rounds += self.acted;
        if self.attempt + 1 >= self.policy.max_attempts {
            self.gave_up = true;
            return;
        }
        self.attempt += 1;
        self.acted = 0;
        self.current = self.builder.build();
        let master = self.master.expect("restart only after the first act");
        self.attempt_rng = Some(SmallRng::seed_from_u64(derive_stream_seed(
            master,
            u64::from(self.attempt),
        )));
    }
}

impl<P, B> Phase for Supervised<P, B>
where
    P: Phase,
    B: BuildPhase<Phase = P>,
{
    type Output = P::Output;

    fn act(&mut self, ctx: &RoundContext, rng: &mut SmallRng) -> Action<u32> {
        // One master draw from the engine RNG, first act only; every
        // attempt then runs on its own derived stream (see module docs).
        if self.master.is_none() {
            let master = rng.next_u64();
            self.master = Some(master);
            self.attempt_rng = Some(SmallRng::seed_from_u64(derive_stream_seed(master, 0)));
        }
        self.acted += 1;
        let attempt_rng = self.attempt_rng.as_mut().expect("seeded above");
        self.current.act(ctx, attempt_rng)
    }

    fn observe(&mut self, ctx: &RoundContext, feedback: Feedback<u32>, rng: &mut SmallRng) {
        let _ = rng;
        let attempt_rng = self
            .attempt_rng
            .as_mut()
            .expect("observe follows act, which seeds the attempt stream");
        self.current.observe(ctx, feedback, attempt_rng);
        if self.wedged() {
            // Classify the wedge before the restart clears attempt state:
            // slice exhaustion takes precedence (it is the supervisor's
            // own trigger; a violation surfacing in the same round would
            // have fired earlier on its own).
            if self.acted >= self.policy.slice_for(self.attempt) {
                self.wedges_slice += 1;
            } else {
                self.wedges_violation += 1;
            }
            self.restart();
        }
    }

    fn outcome(&self) -> Option<PhaseOutcome<P::Output>> {
        if self.gave_up {
            return Some(PhaseOutcome::Terminated(Status::Inactive));
        }
        self.current.outcome()
    }

    fn name(&self) -> &'static str {
        if self.gave_up {
            "supervised"
        } else {
            self.current.name()
        }
    }

    fn label(&self) -> &'static str {
        if self.gave_up {
            "supervised"
        } else {
            self.current.label()
        }
    }

    fn collect_stats(&self, out: &mut Vec<PhaseStats>) {
        out.extend_from_slice(&self.archived);
        // A given-up supervisor already archived its last attempt.
        if !self.gave_up {
            self.current.collect_stats(out);
        }
    }

    fn invariant_violation(&self) -> Option<&'static str> {
        // The supervisor *consumes* violations (they trigger restarts);
        // it never reports one of its own.
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase::{PhaseMeter, PhaseProtocol, PhaseTelemetry};
    use mac_sim::{ChannelId, Protocol};

    /// A scripted phase that wedges (acts forever without an outcome) for
    /// its first `wedge_attempts` constructions, then completes after
    /// `rounds` rounds. A shared cell counts constructions.
    #[derive(Debug)]
    struct Flaky {
        rounds_left: Option<u64>,
        violation: Option<&'static str>,
        meter: PhaseMeter,
    }

    struct MakeFlaky {
        wedge_attempts: u32,
        rounds: u64,
        built: u32,
        violation: Option<&'static str>,
    }

    impl BuildPhase for MakeFlaky {
        type Phase = Flaky;

        fn build(&mut self) -> Flaky {
            let wedge = self.built < self.wedge_attempts;
            self.built += 1;
            Flaky {
                rounds_left: if wedge { None } else { Some(self.rounds) },
                violation: if wedge { self.violation } else { None },
                meter: PhaseMeter::default(),
            }
        }
    }

    impl Phase for Flaky {
        type Output = u32;

        fn act(&mut self, _ctx: &RoundContext, _rng: &mut SmallRng) -> Action<u32> {
            let action = Action::transmit(ChannelId::PRIMARY, 1);
            self.meter.on_act(&action);
            action
        }

        fn observe(&mut self, _ctx: &RoundContext, _fb: Feedback<u32>, _rng: &mut SmallRng) {
            if let Some(left) = &mut self.rounds_left {
                *left -= 1;
            }
        }

        fn outcome(&self) -> Option<PhaseOutcome<u32>> {
            match self.rounds_left {
                Some(0) => Some(PhaseOutcome::Complete(7)),
                _ => None,
            }
        }

        fn name(&self) -> &'static str {
            "flaky"
        }

        fn collect_stats(&self, out: &mut Vec<PhaseStats>) {
            out.push(self.meter.snapshot("flaky"));
        }

        fn invariant_violation(&self) -> Option<&'static str> {
            self.violation
        }
    }

    fn ctx() -> RoundContext {
        RoundContext {
            round: 0,
            local_round: 0,
            channels: 1,
        }
    }

    fn step<P: Protocol<Msg = u32>>(node: &mut P, rounds: u64) {
        let c = ctx();
        let mut rng = SmallRng::seed_from_u64(0);
        for _ in 0..rounds {
            let _ = node.act(&c, &mut rng);
            node.observe(&c, Feedback::Silence, &mut rng);
        }
    }

    #[test]
    fn policy_slices_back_off_exponentially() {
        let p = RestartPolicy::new(10, 4);
        assert_eq!(p.slice_for(0), 10);
        assert_eq!(p.slice_for(1), 20);
        assert_eq!(p.slice_for(2), 40);
        assert_eq!(p.slice_for(3), 80);
        assert_eq!(p.total_rounds(), 150);
        let capped = RestartPolicy::new(10, 4).slice_cap(25);
        assert_eq!(capped.slice_for(2), 25);
        assert_eq!(capped.total_rounds(), 10 + 20 + 25 + 25);
        let flat = RestartPolicy::new(10, 3).backoff(1);
        assert_eq!(flat.slice_for(2), 10);
        assert_eq!(flat.total_rounds(), 30);
    }

    #[test]
    fn policy_slices_saturate() {
        let p = RestartPolicy::new(u64::MAX / 2, 8);
        assert_eq!(p.slice_for(7), u64::MAX);
        assert_eq!(p.total_rounds(), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "positive slice")]
    fn policy_rejects_zero_slice() {
        let _ = RestartPolicy::new(0, 1);
    }

    #[test]
    #[should_panic(expected = "at least one attempt")]
    fn policy_rejects_zero_attempts() {
        let _ = RestartPolicy::new(1, 0);
    }

    #[test]
    fn transparent_when_first_attempt_succeeds() {
        let make = MakeFlaky {
            wedge_attempts: 0,
            rounds: 3,
            built: 0,
            violation: None,
        };
        let mut node = PhaseProtocol::new(Supervised::new(make, RestartPolicy::new(10, 3)));
        step(&mut node, 3);
        assert_eq!(node.status(), Status::Inactive);
        assert_eq!(node.output(), Some(7));
        assert_eq!(node.inner().attempts(), 1);
        assert_eq!(node.inner().restarts(), 0);
        assert_eq!(node.inner().restart_rounds(), 0);
        let spine = node.phase_stats();
        assert_eq!(spine.len(), 1, "no restart markers: {spine:?}");
        assert_eq!(spine[0].rounds, 3);
    }

    #[test]
    fn restarts_on_slice_exhaustion_and_recovers() {
        let make = MakeFlaky {
            wedge_attempts: 2,
            rounds: 3,
            built: 0,
            violation: None,
        };
        // Slices 4, 8: attempts 0 and 1 wedge, attempt 2 completes.
        let mut node = PhaseProtocol::new(Supervised::new(make, RestartPolicy::new(4, 3)));
        step(&mut node, 4 + 8 + 3);
        assert_eq!(node.status(), Status::Inactive);
        assert_eq!(node.output(), Some(7));
        assert_eq!(node.inner().attempts(), 3);
        assert_eq!(node.inner().restarts(), 2);
        assert_eq!(node.inner().restart_rounds(), 12);
        assert_eq!(
            node.inner().wedges_slice(),
            2,
            "both wedges were slice exhaustion"
        );
        assert_eq!(node.inner().wedges_violation(), 0);
        let spine = node.phase_stats();
        let markers: Vec<_> = spine.iter().filter(|r| r.name == RESTART_MARKER).collect();
        assert_eq!(markers.len(), 2);
        assert_eq!(markers[0].rounds, 4);
        assert_eq!(markers[1].rounds, 8);
        // Wedged-attempt records precede their markers; the final attempt
        // closes the spine.
        assert_eq!(spine.len(), 5);
        assert_eq!(spine[0].name, "flaky");
        assert_eq!(spine[4].rounds, 3);
    }

    #[test]
    fn gives_up_after_max_attempts() {
        let make = MakeFlaky {
            wedge_attempts: u32::MAX,
            rounds: 1,
            built: 0,
            violation: None,
        };
        let mut node = PhaseProtocol::new(Supervised::new(make, RestartPolicy::new(2, 3)));
        step(&mut node, 2 + 4 + 8);
        assert_eq!(node.status(), Status::Inactive);
        assert_eq!(node.output(), None, "gave up, no completion value");
        assert!(node.inner().gave_up());
        assert_eq!(node.inner().attempts(), 3);
        assert_eq!(node.inner().restart_rounds(), 14);
        let spine = node.phase_stats();
        let markers = spine.iter().filter(|r| r.name == RESTART_MARKER).count();
        assert_eq!(markers, 3, "give-up archives the last attempt too");
    }

    #[test]
    fn invariant_violation_triggers_immediate_restart() {
        let make = MakeFlaky {
            wedge_attempts: 1,
            rounds: 2,
            built: 0,
            violation: Some("forged collision"),
        };
        // Slice is huge; only the violation can trigger the restart.
        let mut node = PhaseProtocol::new(Supervised::new(make, RestartPolicy::new(1_000, 2)));
        step(&mut node, 1 + 2);
        assert_eq!(node.status(), Status::Inactive);
        assert_eq!(node.output(), Some(7));
        assert_eq!(node.inner().restarts(), 1);
        assert_eq!(
            node.inner().restart_rounds(),
            1,
            "restarted after one round"
        );
        assert_eq!(node.inner().wedges_slice(), 0);
        assert_eq!(
            node.inner().wedges_violation(),
            1,
            "the wedge was a violation"
        );
    }

    #[test]
    fn genuine_termination_passes_through_unrestarted() {
        struct MakeLoser;
        impl BuildPhase for MakeLoser {
            type Phase = Loser;
            fn build(&mut self) -> Loser {
                Loser { done: false }
            }
        }
        #[derive(Debug)]
        struct Loser {
            done: bool,
        }
        impl Phase for Loser {
            type Output = ();
            fn act(&mut self, _: &RoundContext, _: &mut SmallRng) -> Action<u32> {
                Action::Sleep
            }
            fn observe(&mut self, _: &RoundContext, _: Feedback<u32>, _: &mut SmallRng) {
                self.done = true;
            }
            fn outcome(&self) -> Option<PhaseOutcome<()>> {
                self.done
                    .then_some(PhaseOutcome::Terminated(Status::Inactive))
            }
            fn name(&self) -> &'static str {
                "loser"
            }
            fn collect_stats(&self, _: &mut Vec<PhaseStats>) {}
        }
        let mut node = PhaseProtocol::new(Supervised::new(MakeLoser, RestartPolicy::new(100, 5)));
        step(&mut node, 1);
        assert_eq!(node.status(), Status::Inactive);
        assert_eq!(node.inner().attempts(), 1, "termination is not a wedge");
        assert_eq!(node.inner().restarts(), 0);
    }

    #[test]
    fn attempts_run_on_decorrelated_derived_streams() {
        // Record the RNG stream each attempt sees by drawing a value in
        // the first act of every attempt.
        #[derive(Debug)]
        struct Probe {
            drawn: Option<u64>,
            acted: u64,
        }
        struct MakeProbe {
            log: std::rc::Rc<std::cell::RefCell<Vec<u64>>>,
        }
        impl BuildPhase for MakeProbe {
            type Phase = ProbeRun;
            fn build(&mut self) -> ProbeRun {
                ProbeRun {
                    probe: Probe {
                        drawn: None,
                        acted: 0,
                    },
                    log: self.log.clone(),
                }
            }
        }
        #[derive(Debug)]
        struct ProbeRun {
            probe: Probe,
            log: std::rc::Rc<std::cell::RefCell<Vec<u64>>>,
        }
        impl Phase for ProbeRun {
            type Output = ();
            fn act(&mut self, _: &RoundContext, rng: &mut SmallRng) -> Action<u32> {
                if self.probe.drawn.is_none() {
                    let v = rng.next_u64();
                    self.probe.drawn = Some(v);
                    self.log.borrow_mut().push(v);
                }
                self.probe.acted += 1;
                Action::Sleep
            }
            fn observe(&mut self, _: &RoundContext, _: Feedback<u32>, _: &mut SmallRng) {}
            fn outcome(&self) -> Option<PhaseOutcome<()>> {
                None
            }
            fn name(&self) -> &'static str {
                "probe"
            }
            fn collect_stats(&self, _: &mut Vec<PhaseStats>) {}
        }

        let run = |seed: u64| {
            let log = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
            let make = MakeProbe { log: log.clone() };
            let mut node = PhaseProtocol::new(Supervised::new(make, RestartPolicy::new(2, 3)));
            let c = ctx();
            let mut rng = SmallRng::seed_from_u64(seed);
            for _ in 0..20 {
                if node.status() != Status::Active {
                    break;
                }
                let _ = node.act(&c, &mut rng);
                node.observe(&c, Feedback::Silence, &mut rng);
            }
            let drawn = log.borrow().clone();
            drawn
        };

        let a = run(42);
        let b = run(42);
        assert_eq!(a, b, "supervised runs are bit-deterministic");
        assert_eq!(a.len(), 3, "three attempts each drew once");
        let distinct: std::collections::HashSet<u64> = a.iter().copied().collect();
        assert_eq!(distinct.len(), 3, "attempt streams are decorrelated");
        let other = run(43);
        assert_ne!(a, other, "streams depend on the node seed");
    }
}
