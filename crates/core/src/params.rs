//! Tunable constants of the general algorithm.
//!
//! The paper's analysis fixes constants chosen for proof convenience, not
//! for execution: e.g. the knock-out probability of `IdReduction`'s
//! reduction rounds is `1/k` with `k = √C/144`, which is below 1 only once
//! `C > 20 736` and satisfies the analysis' `k ≥ 3` only once
//! `C ≥ 186 624`. Running the algorithm therefore requires picking real
//! constants. [`Params::practical`] is the default used by examples and
//! experiments; [`Params::paper`] preserves the literal constants so the
//! analysis-fidelity tests can exercise them at (very) large `C`.
//!
//! Changing these constants never changes the algorithm's structure — only
//! the hidden constants in its `O(·)` bounds.

/// Constants for the general (any-number-of-nodes) algorithm of §5.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Params {
    /// Divisor in `k = √C / knock_divisor`, the inverse knock-out
    /// probability of `IdReduction`'s reduction rounds. Paper: 144.
    pub knock_divisor: f64,
    /// Lower clamp on `k` so the knock probability `1/k` stays a sensible
    /// probability for small `C`. Paper analysis assumes `k ≥ 3`.
    pub min_k: f64,
    /// Multiplier on `⌈lg lg n⌉`, the number of knock-out iterations the
    /// `Reduce` step performs (each iteration is 2 rounds). Raising it
    /// raises the exponent of the `Reduce` step's failure probability
    /// (the `β` of Theorem 5).
    pub reduce_factor: u32,
    /// Channel counts strictly below this make the full algorithm fall back
    /// to the optimal single-channel collision-detection algorithm, as the
    /// paper prescribes for `C = O(1)` (§5.2: "when C = O(1), the lower
    /// bound simplifies to Ω(log n), which we can match with the well-known
    /// O(log n) contention resolution algorithm").
    pub fallback_below_channels: u32,
}

impl Params {
    /// The literal constants from the paper's analysis. Only meaningful for
    /// very large `C`; experiments use [`Params::practical`].
    #[must_use]
    pub fn paper() -> Self {
        Params {
            knock_divisor: 144.0,
            min_k: 3.0,
            reduce_factor: 1,
            fallback_below_channels: 8,
        }
    }

    /// Constants tuned for execution at laptop scales. Same asymptotics,
    /// usable at `C` as small as 8.
    #[must_use]
    pub fn practical() -> Self {
        Params {
            knock_divisor: 2.0,
            min_k: 2.0,
            reduce_factor: 1,
            fallback_below_channels: 8,
        }
    }

    /// The inverse knock-out probability `k` used by `IdReduction`'s
    /// reduction rounds for a given channel count.
    #[must_use]
    pub fn knock_k(&self, channels: u32) -> f64 {
        (f64::from(channels).sqrt() / self.knock_divisor).max(self.min_k)
    }

    /// Number of knock-out iterations `Reduce` performs for `n` possible
    /// nodes: `reduce_factor · ⌈lg lg n⌉` (each iteration is two rounds).
    #[must_use]
    pub fn reduce_iterations(&self, n: u64) -> u32 {
        let lg = (n.max(2) as f64).log2();
        let lglg = lg.log2().max(0.0);
        self.reduce_factor * (lglg.ceil() as u32).max(1)
    }
}

impl Default for Params {
    /// Defaults to [`Params::practical`].
    fn default() -> Self {
        Params::practical()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants_are_literal() {
        let p = Params::paper();
        assert_eq!(p.knock_divisor, 144.0);
        assert_eq!(p.min_k, 3.0);
        // k = sqrt(C)/144 once C is large enough for the clamp not to bind.
        let c = 1u32 << 30;
        let expect = f64::from(c).sqrt() / 144.0;
        assert!((p.knock_k(c) - expect).abs() < 1e-9);
    }

    #[test]
    fn practical_k_is_clamped_for_small_c() {
        let p = Params::practical();
        assert_eq!(p.knock_k(4), 2.0);
        assert_eq!(p.knock_k(16), 2.0);
        assert_eq!(p.knock_k(64), 4.0);
        assert_eq!(p.knock_k(256), 8.0);
    }

    #[test]
    fn reduce_iterations_track_lglg_n() {
        let p = Params::practical();
        assert_eq!(p.reduce_iterations(2), 1); // lg lg 2 = 0, clamped to 1
        assert_eq!(p.reduce_iterations(4), 1);
        assert_eq!(p.reduce_iterations(16), 2);
        assert_eq!(p.reduce_iterations(256), 3);
        assert_eq!(p.reduce_iterations(1 << 16), 4);
        assert_eq!(p.reduce_iterations(u64::MAX), 6);
    }

    #[test]
    fn reduce_factor_scales_iterations() {
        let mut p = Params::practical();
        p.reduce_factor = 3;
        assert_eq!(p.reduce_iterations(256), 9);
    }

    #[test]
    fn default_is_practical() {
        assert_eq!(Params::default(), Params::practical());
    }
}
