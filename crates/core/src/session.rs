//! A one-stop facade: pick an algorithm, describe the network, run.
//!
//! The lower-level API (construct protocols, add them to a
//! [`mac_sim::Engine`]) gives full control; [`Session`] wraps the common
//! case — *"solve contention resolution among `k` activated nodes out of
//! `n`, on `C` channels, with algorithm X"* — including the feedback-model
//! bookkeeping (no-collision-detection algorithms are automatically run
//! under [`CdMode::None`]) and optional staggered wake-ups via the §3
//! transform.

use mac_sim::{
    CdMode, Engine, Registry, RunReport, SimConfig, SimError, SparsePopulation, StopWhen,
    TraceLevel,
};
use std::error::Error;
use std::fmt;

use crate::baselines::{BinaryDescent, CdTournament, Decay, MultiChannelNoCd, TreeSplit, Willard};
use crate::extensions::ExpectedConstant;
use crate::full::{supervised_paper_node, FullAlgorithm};
use crate::params::Params;
use crate::phase::{PhaseProtocol, PhaseStats, PhaseTelemetry};
use crate::supervise::{RestartPolicy, RESTART_MARKER};
use crate::two_active::TwoActive;
use crate::wakeup::StaggeredStart;

/// Which contention-resolution algorithm a [`Session`] runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Algorithm {
    /// The paper's general pipeline (Theorem 4) with the given constants.
    Paper(Params),
    /// The paper pipeline under restart-with-backoff supervision (see
    /// [`crate::supervise`]): wedges under faults restart the stack
    /// instead of burning the whole round budget.
    SupervisedPaper(Params, RestartPolicy),
    /// The paper's two-node specialist (§4); requires exactly two actives.
    TwoActive,
    /// Single-channel coin-flip knock-out, `O(log n)` w.h.p., no ids.
    CdTournament,
    /// Deterministic binary descent over ids, `O(log n)` worst case.
    BinaryDescent,
    /// Capetanakis tree splitting over ids: first slot in `O(log n)`,
    /// all contenders served if run to completion.
    TreeSplit,
    /// Decay cycle without collision detection, `O(log² n)` w.h.p.
    Decay,
    /// Multi-channel no-CD baseline, `O(log² n / C + log n)` shape.
    MultiChannelNoCd,
    /// Expected-`O(1)` with `≈ lg n` channels (§6 extension).
    ExpectedConstant,
    /// Willard's expected-`O(log log n)` single-channel classic (ref \[5\]).
    Willard,
}

impl Algorithm {
    /// Short display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Paper(_) => "paper-pipeline",
            Algorithm::SupervisedPaper(..) => "supervised-paper",
            Algorithm::TwoActive => "two-active",
            Algorithm::CdTournament => "cd-tournament",
            Algorithm::BinaryDescent => "binary-descent",
            Algorithm::TreeSplit => "tree-split",
            Algorithm::Decay => "decay",
            Algorithm::MultiChannelNoCd => "multichannel-no-cd",
            Algorithm::ExpectedConstant => "expected-constant",
            Algorithm::Willard => "willard",
        }
    }

    /// The feedback model the algorithm is designed for — sessions run
    /// under exactly this model so comparisons are honest.
    #[must_use]
    pub fn cd_mode(self) -> CdMode {
        match self {
            Algorithm::Decay | Algorithm::MultiChannelNoCd => CdMode::None,
            _ => CdMode::Strong,
        }
    }

    /// Minimum channel count the algorithm requires.
    #[must_use]
    pub fn min_channels(self) -> u32 {
        match self {
            Algorithm::TwoActive | Algorithm::ExpectedConstant => 2,
            _ => 1,
        }
    }
}

/// Errors from [`Session::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SessionError {
    /// The configuration cannot host the chosen algorithm.
    InvalidConfig(String),
    /// The underlying simulation failed.
    Sim(SimError),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            SessionError::Sim(e) => write!(f, "simulation failed: {e}"),
        }
    }
}

impl Error for SessionError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SessionError::Sim(e) => Some(e),
            SessionError::InvalidConfig(_) => None,
        }
    }
}

impl From<SimError> for SessionError {
    fn from(value: SimError) -> Self {
        SessionError::Sim(value)
    }
}

/// The outcome of a resolved session.
#[derive(Debug, Clone)]
pub struct Resolution {
    /// The algorithm that ran.
    pub algorithm: &'static str,
    /// The full simulator report (solve round, leaders, metrics, trace).
    pub report: RunReport,
    /// The solving node's per-phase telemetry spine (see
    /// [`PhaseTelemetry`]): one [`PhaseStats`] record per phase the node
    /// passed through, in execution order. Empty when the run timed out.
    pub solver_phases: Vec<PhaseStats>,
}

impl Resolution {
    /// Rounds until the problem was solved.
    #[must_use]
    pub fn rounds(&self) -> Option<u64> {
        self.report.rounds_to_solve()
    }

    /// Rounds the solving node spent in the named phase (0 if it never
    /// entered it).
    #[must_use]
    pub fn phase_rounds(&self, name: &str) -> u64 {
        self.solver_phases
            .iter()
            .filter(|r| r.name == name)
            .map(|r| r.rounds)
            .sum()
    }

    /// Supervised restarts the solving node performed, counted from the
    /// [`RESTART_MARKER`] records in its spine. Always 0 for unsupervised
    /// algorithms.
    #[must_use]
    pub fn restarts(&self) -> u64 {
        self.solver_phases
            .iter()
            .filter(|r| r.name == RESTART_MARKER)
            .count() as u64
    }

    /// Rounds the solving node burned in abandoned supervised attempts
    /// (the sum of the restart markers' round counts).
    #[must_use]
    pub fn restart_rounds(&self) -> u64 {
        self.phase_rounds(RESTART_MARKER)
    }

    /// Tallies this resolution into a telemetry [`Registry`] (the
    /// `session_*` / `supervised_*` metric families; see
    /// `docs/OBSERVABILITY.md`). Purely observational — reads the
    /// already-finished report and spine, so calling it can never perturb
    /// a run.
    pub fn record_telemetry(&self, reg: &mut Registry) {
        reg.count("session_runs_total", 1);
        reg.count("session_rounds_total", self.report.rounds_executed);
        reg.count(
            "session_transmissions_total",
            self.report.metrics.transmissions,
        );
        if let Some(rounds) = self.rounds() {
            reg.count("session_solved_total", 1);
            reg.observe("session_solve_rounds", rounds);
        }
        reg.count("supervised_restarts_total", self.restarts());
        reg.count("supervised_restart_rounds_total", self.restart_rounds());
    }
}

/// Builder-style session configuration.
///
/// ```
/// use contention::session::{Algorithm, Session};
/// use contention::Params;
///
/// # fn main() -> Result<(), contention::session::SessionError> {
/// let resolution = Session::new(64, 1 << 12)
///     .algorithm(Algorithm::Paper(Params::practical()))
///     .seed(7)
///     .run(500)?;
/// assert!(resolution.rounds().is_some());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Session {
    channels: u32,
    n: u64,
    algorithm: Algorithm,
    seed: u64,
    max_rounds: u64,
    run_to_completion: bool,
    trace: bool,
    wake_offsets: Option<Vec<u64>>,
}

impl Session {
    /// Creates a session on `channels` channels with universe size `n`,
    /// defaulting to the paper's pipeline with practical constants.
    ///
    /// # Panics
    ///
    /// Panics if `channels == 0` or `n < 2`.
    #[must_use]
    pub fn new(channels: u32, n: u64) -> Self {
        assert!(channels >= 1, "the model requires C >= 1");
        assert!(n >= 2, "the model requires n >= 2");
        Session {
            channels,
            n,
            algorithm: Algorithm::Paper(Params::practical()),
            seed: 0,
            max_rounds: 10_000_000,
            run_to_completion: false,
            trace: false,
            wake_offsets: None,
        }
    }

    /// Selects the algorithm.
    #[must_use]
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Sets the master seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the round cap.
    #[must_use]
    pub fn max_rounds(mut self, max_rounds: u64) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Runs until every node terminates instead of stopping at the first
    /// solving transmission.
    #[must_use]
    pub fn run_to_completion(mut self, yes: bool) -> Self {
        self.run_to_completion = yes;
        self
    }

    /// Enables channel tracing in the resulting report.
    #[must_use]
    pub fn trace(mut self, yes: bool) -> Self {
        self.trace = yes;
        self
    }

    /// Staggers wake-ups with the given per-node offsets (the §3 transform
    /// is applied automatically). Length must equal the `active` count
    /// passed to [`Session::run`].
    #[must_use]
    pub fn wake_offsets(mut self, offsets: Vec<u64>) -> Self {
        self.wake_offsets = Some(offsets);
        self
    }

    /// Builds one protocol instance for node index `idx`. Every algorithm
    /// is boxed as [`PhaseTelemetry`] so the session can read the solver's
    /// phase spine back out of the engine after the run. Single-phase
    /// algorithms go through [`PhaseProtocol`] so their round/transmission
    /// meters tick; `FullAlgorithm` already runs on its own phase stack.
    fn make_node(&self, idx: usize, active: usize) -> Box<dyn PhaseTelemetry> {
        // Spread ids evenly across the universe, deterministically — the
        // implicit-population path has no real identities to hand out.
        let id = (idx as u64) * (self.n / active as u64).max(1);
        self.make_node_for_id(id)
    }

    /// Like [`Session::make_node`], but for a node with an explicit
    /// namespace identity (the [`SparsePopulation`] path, where activated
    /// members carry real ids). Only the id-keyed algorithms read it.
    fn make_node_for_id(&self, id: u64) -> Box<dyn PhaseTelemetry> {
        match self.algorithm {
            Algorithm::Paper(params) => Box::new(FullAlgorithm::new(params, self.channels, self.n)),
            Algorithm::SupervisedPaper(params, policy) => {
                Box::new(supervised_paper_node(params, self.channels, self.n, policy))
            }
            Algorithm::TwoActive => {
                Box::new(PhaseProtocol::new(TwoActive::new(self.channels, self.n)))
            }
            Algorithm::CdTournament => Box::new(PhaseProtocol::new(CdTournament::new())),
            Algorithm::BinaryDescent => Box::new(PhaseProtocol::new(BinaryDescent::new(
                id.min(self.n - 1),
                self.n,
            ))),
            Algorithm::TreeSplit => Box::new(PhaseProtocol::new(TreeSplit::new(
                id.min(self.n - 1),
                self.n,
            ))),
            Algorithm::Decay => Box::new(PhaseProtocol::new(Decay::new(self.n))),
            Algorithm::MultiChannelNoCd => Box::new(PhaseProtocol::new(MultiChannelNoCd::new(
                self.channels,
                self.n,
            ))),
            Algorithm::ExpectedConstant => Box::new(PhaseProtocol::new(ExpectedConstant::new(
                self.channels,
                self.n,
            ))),
            Algorithm::Willard => Box::new(PhaseProtocol::new(Willard::new(self.n))),
        }
    }

    /// Activates `active` nodes and runs the session.
    ///
    /// # Errors
    ///
    /// [`SessionError::InvalidConfig`] when the algorithm cannot run at this
    /// configuration (too few channels, wrong active count for the
    /// specialist, mismatched wake-offset length, `active > n`);
    /// [`SessionError::Sim`] when the simulation itself fails (timeout).
    pub fn run(&self, active: usize) -> Result<Resolution, SessionError> {
        if active == 0 {
            return Err(SessionError::InvalidConfig("no nodes activated".into()));
        }
        if active as u64 > self.n {
            return Err(SessionError::InvalidConfig(format!(
                "cannot activate {active} of {} possible nodes",
                self.n
            )));
        }
        if self.channels < self.algorithm.min_channels() {
            return Err(SessionError::InvalidConfig(format!(
                "{} needs at least {} channels, got {}",
                self.algorithm.name(),
                self.algorithm.min_channels(),
                self.channels
            )));
        }
        if self.algorithm == Algorithm::TwoActive && active != 2 {
            return Err(SessionError::InvalidConfig(format!(
                "two-active solves the |A| = 2 restricted case, got {active}"
            )));
        }
        if let Some(offsets) = &self.wake_offsets {
            if offsets.len() != active {
                return Err(SessionError::InvalidConfig(format!(
                    "{} wake offsets for {active} nodes",
                    offsets.len()
                )));
            }
        }

        let cfg = SimConfig::new(self.channels)
            .seed(self.seed)
            .cd_mode(self.algorithm.cd_mode())
            .max_rounds(self.max_rounds)
            .stop_when(if self.run_to_completion {
                StopWhen::AllTerminated
            } else {
                StopWhen::Solved
            })
            .trace_level(if self.trace {
                TraceLevel::Channels
            } else {
                TraceLevel::Off
            });

        let (report, solver_phases) = match &self.wake_offsets {
            None => {
                let mut exec = Engine::new(cfg);
                for idx in 0..active {
                    exec.add_node(self.make_node(idx, active));
                }
                let report = exec.run()?;
                let phases = report
                    .solver
                    .map(|id| exec.node(id).phase_stats())
                    .unwrap_or_default();
                (report, phases)
            }
            Some(offsets) => {
                let mut exec = Engine::new(cfg);
                for (idx, &off) in offsets.iter().enumerate() {
                    exec.add_node_at(StaggeredStart::new(self.make_node(idx, active)), off);
                }
                let report = exec.run()?;
                let phases = report
                    .solver
                    .map(|id| exec.node(id).phase_stats())
                    .unwrap_or_default();
                (report, phases)
            }
        };

        Ok(Resolution {
            algorithm: self.algorithm.name(),
            report,
            solver_phases,
        })
    }

    /// Runs the session over an explicit [`SparsePopulation`]: the
    /// activated members' namespace identities seed the id-keyed
    /// algorithms (binary descent, tree split) and the population's wake
    /// schedule staggers start rounds — while the engine materializes
    /// exactly `|A|` slots, so the session scales to namespaces of `2^20`
    /// and beyond at constant memory in `n`.
    ///
    /// The population must be drawn over this session's universe
    /// (`pop.namespace() == n`), and it replaces
    /// [`Session::wake_offsets`] — the schedule lives in the population.
    ///
    /// # Errors
    ///
    /// [`SessionError::InvalidConfig`] under the same rules as
    /// [`Session::run`], plus a namespace mismatch or a population
    /// combined with explicit wake offsets;
    /// [`SessionError::Sim`] when the simulation itself fails.
    pub fn run_population(&self, pop: &SparsePopulation) -> Result<Resolution, SessionError> {
        if pop.is_empty() {
            return Err(SessionError::InvalidConfig("no nodes activated".into()));
        }
        if pop.namespace() != self.n {
            return Err(SessionError::InvalidConfig(format!(
                "population namespace {} does not match session universe {}",
                pop.namespace(),
                self.n
            )));
        }
        if self.wake_offsets.is_some() {
            return Err(SessionError::InvalidConfig(
                "wake_offsets and run_population are mutually exclusive: \
                 the population carries its own wake schedule"
                    .into(),
            ));
        }
        if self.channels < self.algorithm.min_channels() {
            return Err(SessionError::InvalidConfig(format!(
                "{} needs at least {} channels, got {}",
                self.algorithm.name(),
                self.algorithm.min_channels(),
                self.channels
            )));
        }
        if self.algorithm == Algorithm::TwoActive && pop.len() != 2 {
            return Err(SessionError::InvalidConfig(format!(
                "two-active solves the |A| = 2 restricted case, got {}",
                pop.len()
            )));
        }

        let cfg = SimConfig::new(self.channels)
            .seed(self.seed)
            .cd_mode(self.algorithm.cd_mode())
            .max_rounds(self.max_rounds)
            .stop_when(if self.run_to_completion {
                StopWhen::AllTerminated
            } else {
                StopWhen::Solved
            })
            .trace_level(if self.trace {
                TraceLevel::Channels
            } else {
                TraceLevel::Off
            });

        let (report, solver_phases) = if pop.latest_wake() == 0 {
            let mut exec = Engine::new(cfg);
            for member in pop.members() {
                exec.add_node(self.make_node_for_id(member.virtual_id));
            }
            let report = exec.run()?;
            let phases = report
                .solver
                .map(|id| exec.node(id).phase_stats())
                .unwrap_or_default();
            (report, phases)
        } else {
            // A staggered schedule: apply the §3 transform, exactly like
            // the wake-offsets path.
            let mut exec = Engine::new(cfg);
            for member in pop.members() {
                exec.add_node_at(
                    StaggeredStart::new(self.make_node_for_id(member.virtual_id)),
                    member.wake_round,
                );
            }
            let report = exec.run()?;
            let phases = report
                .solver
                .map(|id| exec.node(id).phase_stats())
                .unwrap_or_default();
            (report, phases)
        };

        Ok(Resolution {
            algorithm: self.algorithm.name(),
            report,
            solver_phases,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_algorithm_resolves_through_the_facade() {
        let algos = [
            Algorithm::Paper(Params::practical()),
            Algorithm::SupervisedPaper(Params::practical(), RestartPolicy::new(5_000, 3)),
            Algorithm::CdTournament,
            Algorithm::BinaryDescent,
            Algorithm::TreeSplit,
            Algorithm::Willard,
            Algorithm::Decay,
            Algorithm::MultiChannelNoCd,
            Algorithm::ExpectedConstant,
        ];
        for algo in algos {
            let res = Session::new(32, 1 << 10)
                .algorithm(algo)
                .seed(5)
                .run(100)
                .unwrap_or_else(|e| panic!("{}: {e}", algo.name()));
            assert!(res.rounds().is_some(), "{}", algo.name());
            assert_eq!(res.algorithm, algo.name());
        }
    }

    #[test]
    fn sparse_population_resolves_over_huge_namespace() {
        // A namespace of 2^20 identities with 60 active: the engine holds
        // 60 slots, and the id-keyed algorithms get real namespace ids.
        let pop = SparsePopulation::uniform(1 << 20, 60, 1, 9);
        for algo in [
            Algorithm::Paper(Params::practical()),
            Algorithm::BinaryDescent,
            Algorithm::TreeSplit,
        ] {
            let res = Session::new(32, 1 << 20)
                .algorithm(algo)
                .seed(5)
                .run_population(&pop)
                .unwrap_or_else(|e| panic!("{}: {e}", algo.name()));
            assert!(res.rounds().is_some(), "{}", algo.name());
        }

        // A staggered population goes through the §3 transform.
        let staggered = SparsePopulation::uniform(1 << 20, 20, 16, 9);
        assert!(staggered.latest_wake() > 0);
        let res = Session::new(32, 1 << 20)
            .seed(6)
            .run_population(&staggered)
            .expect("staggered population resolves");
        assert!(res.rounds().is_some());
    }

    #[test]
    fn sparse_population_misuse_is_rejected() {
        let pop = SparsePopulation::uniform(1 << 12, 10, 1, 1);
        // Namespace mismatch.
        assert!(matches!(
            Session::new(8, 1 << 10).run_population(&pop),
            Err(SessionError::InvalidConfig(_))
        ));
        // Population plus explicit wake offsets.
        assert!(matches!(
            Session::new(8, 1 << 12)
                .wake_offsets(vec![0; 10])
                .run_population(&pop),
            Err(SessionError::InvalidConfig(_))
        ));
        // Empty population.
        assert!(Session::new(8, 1 << 12)
            .run_population(&SparsePopulation::new(1 << 12))
            .is_err());
    }

    #[test]
    fn two_active_requires_exactly_two() {
        let session = Session::new(32, 1 << 10).algorithm(Algorithm::TwoActive);
        assert!(matches!(
            session.run(3),
            Err(SessionError::InvalidConfig(_))
        ));
        assert!(session.run(2).is_ok());
    }

    #[test]
    fn activation_cannot_exceed_universe() {
        let err = Session::new(8, 16).run(17).unwrap_err();
        assert!(matches!(err, SessionError::InvalidConfig(_)));
        assert!(err.to_string().contains("17"));
    }

    #[test]
    fn zero_active_is_rejected() {
        assert!(Session::new(8, 16).run(0).is_err());
    }

    #[test]
    fn channel_minimums_are_enforced() {
        let err = Session::new(1, 1 << 10)
            .algorithm(Algorithm::ExpectedConstant)
            .run(10)
            .unwrap_err();
        assert!(err.to_string().contains("channels"));
    }

    #[test]
    fn wake_offsets_must_match_active_count() {
        let err = Session::new(32, 1 << 10)
            .wake_offsets(vec![0, 1])
            .run(3)
            .unwrap_err();
        assert!(matches!(err, SessionError::InvalidConfig(_)));
    }

    #[test]
    fn staggered_session_solves() {
        let res = Session::new(32, 1 << 10)
            .seed(3)
            .wake_offsets((0..20).map(|i| i % 3).collect())
            .run(20)
            .expect("solves");
        assert!(res.rounds().is_some());
    }

    #[test]
    fn completion_mode_reports_leaders() {
        let res = Session::new(32, 1 << 10)
            .seed(9)
            .run_to_completion(true)
            .run(50)
            .expect("completes");
        assert!(res.report.leaders.len() <= 1);
        assert!(res.report.active_remaining.is_empty());
    }

    #[test]
    fn trace_flag_records_channels() {
        let res = Session::new(8, 1 << 8)
            .trace(true)
            .seed(1)
            .run(10)
            .expect("solves");
        assert!(!res.report.trace.is_empty());
    }

    #[test]
    fn no_cd_algorithms_run_under_none_mode() {
        assert_eq!(Algorithm::Decay.cd_mode(), CdMode::None);
        assert_eq!(Algorithm::MultiChannelNoCd.cd_mode(), CdMode::None);
        assert_eq!(
            Algorithm::Paper(Params::practical()).cd_mode(),
            CdMode::Strong
        );
    }

    #[test]
    fn solver_phase_spine_is_exposed() {
        let res = Session::new(64, 1 << 12).seed(2).run(200).expect("solves");
        assert!(!res.solver_phases.is_empty());
        assert_eq!(res.solver_phases[0].name, "reduce");
        // The solver acted in every round up to the solving one, so its
        // spine accounts for the whole run.
        let spine_total: u64 = res.solver_phases.iter().map(|r| r.rounds).sum();
        assert_eq!(Some(spine_total), res.rounds());
        assert_eq!(res.phase_rounds("reduce"), res.solver_phases[0].rounds);
        assert_eq!(res.phase_rounds("no-such-phase"), 0);
    }

    #[test]
    fn baseline_spines_carry_their_own_label() {
        let res = Session::new(32, 1 << 10)
            .algorithm(Algorithm::CdTournament)
            .seed(4)
            .run(60)
            .expect("solves");
        assert_eq!(res.solver_phases.len(), 1);
        assert_eq!(res.solver_phases[0].name, "cd-tournament");
        assert!(res.phase_rounds("cd-tournament") > 0);
    }

    #[test]
    fn staggered_session_still_exposes_the_spine() {
        let res = Session::new(32, 1 << 10)
            .seed(3)
            .wake_offsets((0..20).map(|i| i % 3).collect())
            .run(20)
            .expect("solves");
        // The wake-up wrapper forwards the inner protocol's spine; listen
        // and beacon rounds are not phase rounds, so the spine total is
        // bounded by (not equal to) the engine total.
        if res.report.solver.is_some() {
            let spine_total: u64 = res.solver_phases.iter().map(|r| r.rounds).sum();
            assert!(spine_total <= res.rounds().unwrap());
        }
    }

    #[test]
    fn supervised_session_reports_zero_restarts_fault_free() {
        let res = Session::new(64, 1 << 12)
            .algorithm(Algorithm::SupervisedPaper(
                Params::practical(),
                RestartPolicy::new(5_000, 3),
            ))
            .seed(2)
            .run(200)
            .expect("solves");
        assert!(res.rounds().is_some());
        assert_eq!(res.algorithm, "supervised-paper");
        assert_eq!(res.restarts(), 0);
        assert_eq!(res.restart_rounds(), 0);
        assert!(!res.solver_phases.is_empty());
    }

    #[test]
    fn resolution_tallies_into_a_registry() {
        let res = Session::new(64, 1 << 12).seed(2).run(200).expect("solves");
        let mut reg = Registry::new();
        res.record_telemetry(&mut reg);
        assert_eq!(reg.counter("session_runs_total"), 1);
        assert_eq!(reg.counter("session_solved_total"), 1);
        assert_eq!(
            reg.counter("session_rounds_total"),
            res.report.rounds_executed
        );
        assert_eq!(reg.counter("supervised_restarts_total"), 0);
        let solve = reg
            .histograms()
            .get("session_solve_rounds")
            .expect("histogram");
        assert_eq!(solve.count(), 1);
        assert_eq!(solve.sum(), res.rounds().unwrap());
    }

    #[test]
    fn session_error_displays() {
        let e = SessionError::InvalidConfig("boom".into());
        assert!(e.to_string().contains("boom"));
        let e = SessionError::from(SimError::NoNodes);
        assert!(e.to_string().contains("simulation failed"));
    }
}
