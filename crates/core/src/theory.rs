//! Closed-form round budgets from the paper's analysis.
//!
//! These are the *concrete* (constant-carrying) versions of the paper's
//! asymptotic bounds, used by tests and the experiment harness to check
//! that executions stay inside their theorems. Each function documents the
//! constants it commits to and the claim it instantiates.

/// `lg x` (base-2 logarithm), the paper's notation.
#[must_use]
pub fn lg(x: f64) -> f64 {
    x.log2()
}

/// The probes `SplitCheck` (Fig. 1) needs for a tree of height `h`:
/// a binary search over the `h + 1` levels costs at most `⌈lg h⌉ + 1`
/// probe rounds (Lemma 3's `O(log log C)` with its constant made explicit).
///
/// # Panics
///
/// Panics if `h == 0` (a one-leaf tree has nothing to search).
#[must_use]
pub fn split_check_budget(h: u32) -> u32 {
    assert!(h >= 1, "SplitCheck needs a tree of height >= 1");
    (f64::from(h)).log2().ceil() as u32 + 1
}

/// A concrete w.h.p. budget for `TwoActive` (Theorem 1): `2·log_C n`
/// renaming rounds (failure probability `n^{-2}`, by Lemma 2 run at
/// constant `c = 2`), plus the deterministic search and the declaration
/// round.
///
/// # Panics
///
/// Panics if `c < 2` or `n < 2`.
#[must_use]
pub fn two_active_budget(n: u64, c: u32) -> f64 {
    assert!(c >= 2, "TwoActive needs C >= 2");
    assert!(n >= 2, "the model requires n >= 2");
    let c_eff = f64::from(prev_power_of_two(c.min(n.min(u64::from(u32::MAX)) as u32)));
    let h = lg(c_eff).max(1.0);
    2.0 * lg(n as f64) / lg(c_eff) + (h.log2().ceil() + 1.0).max(1.0) + 1.0
}

/// Rounds `Reduce` (Fig. 2) executes when no leader emerges:
/// `2·⌈lg lg n⌉` (two rounds per iteration). Matches
/// [`crate::Reduce::total_rounds`] at `reduce_factor = 1`.
#[must_use]
pub fn reduce_rounds(n: u64) -> u64 {
    let lg_n = (n.max(2) as f64).log2();
    2 * (lg_n.log2().max(0.0).ceil() as u64).max(1)
}

/// Lemma 16's per-phase `SplitSearch` cost for phase `i` (1-based) over a
/// tree of height `h`: `5·⌈log_{p+1} h⌉` rounds with `p = 2^{i-1}`, plus
/// the root-check and pairing rounds of the enclosing phase.
///
/// # Panics
///
/// Panics if `i == 0` or `h == 0`.
#[must_use]
pub fn leaf_election_phase_budget(h: u32, i: u32) -> f64 {
    assert!(i >= 1, "phases are 1-based");
    assert!(h >= 1, "tree height must be >= 1");
    let p = f64::from(1u32 << (i - 1).min(30));
    5.0 * (f64::from(h).ln() / (p + 1.0).ln()).ceil().max(1.0) + 2.0
}

/// Theorem 17's total budget for `LeafElection` from `x` starting actives
/// on a tree of height `h`: the per-phase budgets summed over the at most
/// `⌈lg x⌉ + 1` phases (Corollary 15), plus the final root check.
///
/// # Panics
///
/// Panics if `x == 0` or `h == 0`.
#[must_use]
pub fn leaf_election_budget(h: u32, x: u32) -> f64 {
    assert!(x >= 1, "need at least one active node");
    let phases = (f64::from(x)).log2().ceil() as u32 + 1;
    (1..=phases)
        .map(|i| leaf_election_phase_budget(h, i))
        .sum::<f64>()
        + 1.0
}

/// A concrete end-to-end budget for the general algorithm (Theorem 4):
/// `Reduce`'s fixed rounds, an `IdReduction` allowance of `6·log_C n + 6`
/// rounds (Theorem 6 at small constants), and the `LeafElection` budget for
/// `x = C/2` potential survivors capped at `12·lg n` (Theorem 5).
///
/// This is intentionally *generous* — it is an upper envelope for tests,
/// not a fit.
///
/// # Panics
///
/// Panics if `c < 2` or `n < 2`.
#[must_use]
pub fn full_budget(n: u64, c: u32) -> f64 {
    assert!(c >= 2, "budget defined for C >= 2");
    assert!(n >= 2, "the model requires n >= 2");
    let c_eff = prev_power_of_two(c);
    let leaves = (c_eff / 2).max(1);
    let h = leaves.trailing_zeros().max(1);
    let x = (12.0 * lg(n as f64)).min(f64::from(leaves)).max(1.0) as u32;
    reduce_rounds(n) as f64
        + 6.0 * lg(n as f64) / lg(f64::from(c_eff.max(2))).max(1.0)
        + 6.0
        + leaf_election_budget(h, x)
}

fn prev_power_of_two(x: u32) -> u32 {
    debug_assert!(x >= 1);
    1 << (31 - x.leading_zeros())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_check_budget_small_cases() {
        assert_eq!(split_check_budget(1), 1);
        assert_eq!(split_check_budget(2), 2);
        assert_eq!(split_check_budget(10), 5);
    }

    #[test]
    fn two_active_budget_shrinks_then_floors() {
        let n = 1u64 << 20;
        let wide = two_active_budget(n, 1 << 14);
        let narrow = two_active_budget(n, 4);
        assert!(wide < narrow);
        // The floor: beyond C = n the budget stops improving (C is capped).
        let capped = two_active_budget(1 << 10, 1 << 20);
        let at_n = two_active_budget(1 << 10, 1 << 10);
        assert!((capped - at_n).abs() < 1e-9);
    }

    #[test]
    fn reduce_rounds_matches_protocol() {
        use crate::{Params, Reduce};
        for ne in [2u32, 8, 16, 20, 32] {
            let n = 1u64 << ne;
            assert_eq!(
                reduce_rounds(n),
                Reduce::total_rounds(Params::practical(), n),
                "n=2^{ne}"
            );
        }
    }

    #[test]
    fn phase_budget_decays_with_phase() {
        let h = 13;
        let early = leaf_election_phase_budget(h, 1);
        let late = leaf_election_phase_budget(h, 6);
        assert!(late < early);
        assert!(late >= 7.0, "floor is 5 + 2");
    }

    #[test]
    fn total_budget_is_monotone_in_x() {
        assert!(leaf_election_budget(10, 64) > leaf_election_budget(10, 4));
    }

    #[test]
    fn full_budget_reflects_both_terms() {
        // Monotone in n at fixed C (both the log n/log C and the lg lg n
        // terms grow)...
        assert!(full_budget(1 << 30, 64) > full_budget(1 << 10, 64));
        // ...and the log n/log C *component* shrinks with C: isolate it by
        // comparing against a same-h configuration at larger n.
        let gain_narrow = full_budget(1 << 40, 8) - full_budget(1 << 20, 8);
        let gain_wide = full_budget(1 << 40, 1 << 12) - full_budget(1 << 20, 1 << 12);
        assert!(
            gain_wide < gain_narrow,
            "growing n must cost less with more channels: {gain_wide} vs {gain_narrow}"
        );
    }

    #[test]
    #[should_panic(expected = "height")]
    fn zero_height_rejected() {
        let _ = split_check_budget(0);
    }
}
