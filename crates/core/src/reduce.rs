//! `Reduce` — step 1 of the general algorithm (§5.1, Fig. 2).
//!
//! A knock-out protocol on the primary channel alone: in iteration `r`
//! (each iteration is a pair of identical rounds), every active node
//! broadcasts with probability `1/n̂` where `n̂` starts at `n` and is
//! square-rooted between iterations. A node that broadcasts *without
//! collision* is alone on the primary channel — it has solved the problem
//! and becomes leader. A node that listens and hears anything but silence
//! has been beaten and goes inactive. After `⌈lg lg n⌉` iterations
//! (`O(log log n)` rounds) the surviving set has size between 1 and
//! `O(log n)` with high probability (Theorem 5).
//!
//! Note that this step needs collision detection but only a *single*
//! channel.

use mac_sim::{Action, ChannelId, Feedback, Protocol, RoundContext, Status};
use rand::rngs::SmallRng;
use rand::Rng;

use crate::params::Params;
use crate::phase::{impl_phase_telemetry, Phase, PhaseMeter, PhaseOutcome, PhaseStats};

/// How a node's participation in `Reduce` ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOutcome {
    /// The node broadcast alone on the primary channel: it is the leader
    /// and the problem is solved.
    Leader,
    /// The node heard another node's (or several nodes') transmission while
    /// listening: it was knocked out.
    Knocked,
    /// The node survived all `⌈lg lg n⌉` iterations. Survivors proceed to
    /// the next step of the general algorithm; Theorem 5 bounds their count
    /// by `O(log n)` w.h.p.
    Survived,
}

/// The knock-out protocol of Fig. 2. Runs exactly
/// `2 · reduce_factor · ⌈lg lg n⌉` rounds unless it ends early with a
/// leader, so all survivors finish in the same round — which is what lets
/// the full algorithm chain the next step synchronously.
///
/// ```
/// use contention::{Reduce, ReduceOutcome};
/// use mac_sim::{Engine, SimConfig, StopWhen};
///
/// # fn main() -> Result<(), mac_sim::SimError> {
/// let n = 1u64 << 16;
/// let cfg = SimConfig::new(1).seed(3).stop_when(StopWhen::AllTerminated);
/// let mut exec = Engine::new(cfg);
/// for _ in 0..1000 {
///     exec.add_node(Reduce::with_params(contention::Params::practical(), n));
/// }
/// exec.run()?;
/// let survivors = exec
///     .iter_nodes()
///     .filter(|r| r.outcome() == Some(ReduceOutcome::Survived))
///     .count();
/// assert!(survivors <= 200, "survivors should be O(log n), got {survivors}");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Reduce {
    n_hat: f64,
    iterations_left: u32,
    rounds_left_in_iteration: u8,
    transmitted: bool,
    outcome: Option<ReduceOutcome>,
    rounds_run: u64,
    meter: PhaseMeter,
}

impl Reduce {
    /// Creates a `Reduce` node for `n` possible nodes with default
    /// ([`Params::practical`]) constants.
    #[must_use]
    pub fn new(n: u64) -> Self {
        Reduce::with_params(Params::practical(), n)
    }

    /// Creates a `Reduce` node with explicit constants.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` (the problem is defined for `n ≥ 2`).
    #[must_use]
    pub fn with_params(params: Params, n: u64) -> Self {
        assert!(n >= 2, "the model requires n >= 2, got {n}");
        Reduce {
            n_hat: n as f64,
            iterations_left: params.reduce_iterations(n),
            rounds_left_in_iteration: 2,
            transmitted: false,
            outcome: None,
            rounds_run: 0,
            meter: PhaseMeter::default(),
        }
    }

    /// How this node's run ended, once it has.
    #[must_use]
    pub fn outcome(&self) -> Option<ReduceOutcome> {
        self.outcome
    }

    /// Rounds this node participated in.
    #[must_use]
    pub fn rounds_run(&self) -> u64 {
        self.rounds_run
    }

    /// The total number of rounds the protocol runs when no leader emerges:
    /// two per iteration.
    #[must_use]
    pub fn total_rounds(params: Params, n: u64) -> u64 {
        2 * u64::from(params.reduce_iterations(n))
    }
}

impl Protocol for Reduce {
    type Msg = u32;

    fn act(&mut self, _ctx: &RoundContext, rng: &mut SmallRng) -> Action<u32> {
        debug_assert!(self.outcome.is_none(), "terminated node must not act");
        self.rounds_run += 1;
        let p = (1.0 / self.n_hat).min(1.0);
        self.transmitted = rng.gen_bool(p);
        if self.transmitted {
            Action::transmit(ChannelId::PRIMARY, 0)
        } else {
            Action::listen(ChannelId::PRIMARY)
        }
    }

    fn observe(&mut self, _ctx: &RoundContext, feedback: Feedback<u32>, _rng: &mut SmallRng) {
        if self.transmitted {
            if feedback.message().is_some() {
                // Broadcast without collision: leader.
                self.outcome = Some(ReduceOutcome::Leader);
                return;
            }
        } else if !feedback.is_silence() {
            // Received and did not hear silence: knocked out.
            self.outcome = Some(ReduceOutcome::Knocked);
            return;
        }

        self.rounds_left_in_iteration -= 1;
        if self.rounds_left_in_iteration == 0 {
            self.iterations_left -= 1;
            self.rounds_left_in_iteration = 2;
            self.n_hat = self.n_hat.sqrt();
            if self.iterations_left == 0 {
                self.outcome = Some(ReduceOutcome::Survived);
            }
        }
    }

    fn status(&self) -> Status {
        match self.outcome {
            None => Status::Active,
            Some(ReduceOutcome::Leader) => Status::Leader,
            Some(ReduceOutcome::Knocked | ReduceOutcome::Survived) => Status::Inactive,
        }
    }

    fn phase(&self) -> &'static str {
        "reduce"
    }
}

/// As a [`Phase`], `Reduce` *completes* for survivors (they proceed to the
/// next step of a stack) and *terminates* for leaders and knocked-out
/// nodes — the composable reading of [`ReduceOutcome`].
impl Phase for Reduce {
    type Output = ();

    fn act(&mut self, ctx: &RoundContext, rng: &mut SmallRng) -> Action<u32> {
        let action = Protocol::act(self, ctx, rng);
        self.meter.on_act(&action);
        action
    }

    fn observe(&mut self, ctx: &RoundContext, feedback: Feedback<u32>, rng: &mut SmallRng) {
        Protocol::observe(self, ctx, feedback, rng);
    }

    fn outcome(&self) -> Option<PhaseOutcome<()>> {
        match self.outcome {
            None => None,
            Some(ReduceOutcome::Leader) => Some(PhaseOutcome::Terminated(Status::Leader)),
            Some(ReduceOutcome::Knocked) => Some(PhaseOutcome::Terminated(Status::Inactive)),
            Some(ReduceOutcome::Survived) => Some(PhaseOutcome::Complete(())),
        }
    }

    fn name(&self) -> &'static str {
        "reduce"
    }

    fn collect_stats(&self, out: &mut Vec<PhaseStats>) {
        out.push(self.meter.snapshot("reduce"));
    }
}

impl_phase_telemetry!(Reduce);

#[cfg(test)]
mod tests {
    use super::*;
    use mac_sim::{Engine, SimConfig, StopWhen};

    fn run(n: u64, active: usize, seed: u64) -> (mac_sim::RunReport, Vec<ReduceOutcome>) {
        let cfg = SimConfig::new(1)
            .seed(seed)
            .stop_when(StopWhen::AllTerminated)
            .max_rounds(10_000);
        let mut exec = Engine::new(cfg);
        for _ in 0..active {
            exec.add_node(Reduce::new(n));
        }
        let report = exec.run().expect("run succeeds");
        let outcomes = exec.iter_nodes().map(|r| r.outcome().unwrap()).collect();
        (report, outcomes)
    }

    fn survivors(outcomes: &[ReduceOutcome]) -> usize {
        outcomes
            .iter()
            .filter(|&&o| o == ReduceOutcome::Survived)
            .count()
    }

    #[test]
    fn runs_exactly_two_lglg_rounds_without_leader() {
        let n = 1u64 << 16; // lg lg n = 4 -> 8 rounds
        let (report, _) = run(n, 1000, 1);
        let expected = Reduce::total_rounds(Params::practical(), n);
        assert!(report.rounds_executed <= expected + 1);
        assert_eq!(expected, 8);
    }

    #[test]
    fn at_least_one_node_always_survives_or_leads() {
        for seed in 0..30 {
            let (_, outcomes) = run(1 << 12, 300, seed);
            let leaders = outcomes
                .iter()
                .filter(|&&o| o == ReduceOutcome::Leader)
                .count();
            assert!(
                survivors(&outcomes) + leaders >= 1,
                "seed {seed}: everyone knocked out"
            );
            assert!(leaders <= 1, "seed {seed}: multiple leaders");
        }
    }

    #[test]
    fn survivor_count_is_order_log_n() {
        // Theorem 5: survivors in [1, alpha*beta*log n] w.h.p. Check an
        // empirically generous alpha over many seeds.
        let n = 1u64 << 14;
        let bound = 12.0 * (n as f64).log2();
        for seed in 0..20 {
            let (_, outcomes) = run(n, n as usize / 4, seed);
            let s = survivors(&outcomes);
            assert!((s as f64) <= bound, "seed {seed}: {s} survivors > {bound}");
        }
    }

    #[test]
    fn reduction_is_substantial_from_full_activation() {
        let n = 1u64 << 12;
        let mut worst = 0usize;
        for seed in 0..10 {
            let (_, outcomes) = run(n, n as usize, seed);
            worst = worst.max(survivors(&outcomes));
        }
        // From 4096 actives down to O(log n): even a loose check shows the
        // knock-out is drastic.
        assert!(worst < 300, "knock-out too weak: {worst} of 4096 survive");
    }

    #[test]
    fn lone_active_node_becomes_leader_quickly() {
        // With one active node, its first broadcast is alone; n_hat shrinks
        // fast enough that this happens within the round budget for small n.
        let (report, outcomes) = run(4, 1, 0);
        // n = 4: 1 iteration, 2 rounds, p = 1/4 then... it may survive
        // without leading. Either way the run terminates cleanly.
        assert!(report.rounds_executed <= 3);
        assert_eq!(outcomes.len(), 1);
        assert_ne!(outcomes[0], ReduceOutcome::Knocked);
    }

    #[test]
    fn leader_outcome_solves_the_problem() {
        // Hunt for a seed where a leader emerges and check consistency.
        for seed in 0..200 {
            let (report, outcomes) = run(1 << 8, 50, seed);
            if outcomes.contains(&ReduceOutcome::Leader) {
                assert!(report.is_solved(), "seed {seed}: leader without solve");
                assert_eq!(report.leaders.len(), 1);
                // Everyone else heard the lone broadcast and was knocked out.
                assert_eq!(survivors(&outcomes), 0, "seed {seed}");
                return;
            }
        }
        panic!("no seed produced a Reduce leader; probabilities look wrong");
    }

    #[test]
    fn two_active_nodes_knock_out_only_via_a_leader() {
        // With |A|=2, a node can only be Knocked if the other transmitted
        // alone — i.e. became Leader. (Both transmitting is a collision and
        // both stay.) Verify that invariant across seeds.
        for seed in 0..40 {
            let (_, outcomes) = run(1 << 32, 2, seed);
            let knocked = outcomes
                .iter()
                .filter(|&&o| o == ReduceOutcome::Knocked)
                .count();
            let leaders = outcomes
                .iter()
                .filter(|&&o| o == ReduceOutcome::Leader)
                .count();
            if knocked > 0 {
                assert_eq!(leaders, 1, "seed {seed}: knocked without a leader");
            }
            assert!(leaders + survivors(&outcomes) >= 1, "seed {seed}");
        }
    }

    #[test]
    #[should_panic(expected = "n >= 2")]
    fn rejects_tiny_n() {
        let _ = Reduce::new(1);
    }

    #[test]
    fn outcome_accessors() {
        let r = Reduce::new(16);
        assert_eq!(r.outcome(), None);
        assert_eq!(r.rounds_run(), 0);
        assert_eq!(r.phase(), "reduce");
        assert_eq!(r.status(), Status::Active);
    }
}
