//! The non-simultaneous wake-up transform (§3).
//!
//! The paper's algorithms assume all nodes start in the same round, and §3
//! sketches the standard reduction from the harder staggered-start model at
//! a ×2 cost in rounds: a waking node first listens on the primary channel;
//! if it hears silence it joins the *runner* group, which interleaves
//! primary-channel beacon rounds with rounds of the original protocol; if
//! it hears anything, an execution is already underway and it retires.
//!
//! **A strengthening over the paper's sketch.** The paper has nodes listen
//! for two rounds, but with a wake-up offset of exactly 1 round a late
//! node's two-round window can close *before the first beacon is sent*
//! (beacons start three rounds after the first wake-up), letting it join
//! out of phase and jam the primary channel forever. We listen for **three**
//! rounds instead: the earliest runners beacon in their 4th round and every
//! strictly later window of three consecutive rounds contains a beacon or
//! protocol round, so every late waker hears something and retires. The
//! cost is `2·T + 4` rounds for an original protocol that takes `T` — the
//! same ×2 asymptotics the paper claims. Experiment E12 verifies this
//! against adversarial offsets, including the offset-1 case that breaks the
//! two-round version.
//!
//! Only the nodes that woke in the *earliest* round become runners, and they
//! are mutually synchronized, so the inner protocol runs under exactly the
//! simultaneous-start assumption it was designed for.

use mac_sim::{Action, ChannelId, Feedback, Protocol, RoundContext, Status};
use rand::rngs::SmallRng;

use crate::phase::{PhaseStats, PhaseTelemetry};

/// How many initial rounds a waking node spends listening before deciding
/// it is among the first wave.
pub const LISTEN_ROUNDS: u64 = 3;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WakeState {
    /// Still in the initial listen window (`heard` rounds so far).
    Listening { heard: u64 },
    /// Among the first wave: beacon on odd steps, run the protocol on even.
    Runner { step: u64, in_protocol_round: bool },
    /// Retired: an execution was already underway at wake-up, or this
    /// node's lone beacon just solved the problem.
    Done(Status),
}

/// Wraps any simultaneous-start [`Protocol`] into one that tolerates
/// arbitrary staggered wake-ups (use [`mac_sim::Engine::add_node_at`] to
/// schedule them).
///
/// ```
/// use contention::wakeup::StaggeredStart;
/// use contention::{FullAlgorithm, Params};
/// use mac_sim::{Engine, SimConfig};
///
/// # fn main() -> Result<(), mac_sim::SimError> {
/// let (c, n) = (32u32, 1u64 << 10);
/// let mut exec = Engine::new(SimConfig::new(c).seed(8));
/// for i in 0..50u64 {
///     let node = StaggeredStart::new(FullAlgorithm::new(Params::practical(), c, n));
///     exec.add_node_at(node, i % 7); // adversarial wake-up offsets
/// }
/// assert!(exec.run()?.is_solved());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct StaggeredStart<P> {
    inner: P,
    state: WakeState,
    inner_rounds: u64,
}

impl<P> StaggeredStart<P> {
    /// Wraps `inner`, which will only start executing if this node turns
    /// out to be in the first wake-up wave.
    #[must_use]
    pub fn new(inner: P) -> Self {
        StaggeredStart {
            inner,
            state: WakeState::Listening { heard: 0 },
            inner_rounds: 0,
        }
    }

    /// The wrapped protocol.
    #[must_use]
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Rounds of the inner protocol actually executed (half the runner
    /// rounds, by construction).
    #[must_use]
    pub fn inner_rounds(&self) -> u64 {
        self.inner_rounds
    }

    /// Whether this node retired without running the inner protocol.
    #[must_use]
    pub fn retired_early(&self) -> bool {
        matches!(self.state, WakeState::Done(_)) && self.inner_rounds == 0
    }
}

impl<P> Protocol for StaggeredStart<P>
where
    P: Protocol,
    P::Msg: Default,
{
    type Msg = P::Msg;

    fn act(&mut self, ctx: &RoundContext, rng: &mut SmallRng) -> Action<P::Msg> {
        match self.state {
            WakeState::Listening { .. } => Action::listen(ChannelId::PRIMARY),
            WakeState::Runner { step, .. } => {
                if step % 2 == 1 {
                    // Beacon round: jam the primary channel so late wakers
                    // notice the ongoing execution.
                    self.state = WakeState::Runner {
                        step,
                        in_protocol_round: false,
                    };
                    Action::transmit(ChannelId::PRIMARY, P::Msg::default())
                } else {
                    self.state = WakeState::Runner {
                        step,
                        in_protocol_round: true,
                    };
                    self.inner_rounds += 1;
                    let inner_ctx = RoundContext {
                        round: ctx.round,
                        local_round: step / 2,
                        channels: ctx.channels,
                    };
                    self.inner.act(&inner_ctx, rng)
                }
            }
            WakeState::Done(_) => Action::Sleep,
        }
    }

    fn observe(&mut self, ctx: &RoundContext, feedback: Feedback<P::Msg>, rng: &mut SmallRng) {
        match self.state {
            WakeState::Listening { heard } => {
                if !feedback.is_silence() {
                    // An execution is underway; stay out of its way.
                    self.state = WakeState::Done(Status::Inactive);
                } else if heard + 1 >= LISTEN_ROUNDS {
                    // First wave: start running. Step counts from 1 so the
                    // first runner round is a beacon.
                    self.state = WakeState::Runner {
                        step: 1,
                        in_protocol_round: false,
                    };
                } else {
                    self.state = WakeState::Listening { heard: heard + 1 };
                }
            }
            WakeState::Runner {
                step,
                in_protocol_round,
            } => {
                if in_protocol_round {
                    let inner_ctx = RoundContext {
                        round: ctx.round,
                        local_round: step / 2,
                        channels: ctx.channels,
                    };
                    self.inner.observe(&inner_ctx, feedback, rng);
                    if self.inner.status().is_terminated() {
                        self.state = WakeState::Done(self.inner.status());
                        return;
                    }
                } else if feedback.message().is_some() {
                    // This node's beacon went out alone: the problem is
                    // solved and it is the only runner — it leads.
                    self.state = WakeState::Done(Status::Leader);
                    return;
                }
                self.state = WakeState::Runner {
                    step: step + 1,
                    in_protocol_round: false,
                };
            }
            WakeState::Done(_) => {}
        }
    }

    fn status(&self) -> Status {
        match self.state {
            WakeState::Done(status) => status,
            _ => Status::Active,
        }
    }

    fn phase(&self) -> &'static str {
        match self.state {
            WakeState::Listening { .. } => "wakeup-listen",
            WakeState::Runner {
                in_protocol_round: true,
                ..
            } => self.inner.phase(),
            WakeState::Runner { .. } => "wakeup-beacon",
            WakeState::Done(_) => "done",
        }
    }
}

impl<P> PhaseTelemetry for StaggeredStart<P>
where
    P: PhaseTelemetry,
{
    /// The wrapped protocol's spine. Wake-up listen/beacon rounds are not
    /// part of any phase; compare against [`StaggeredStart::inner_rounds`]
    /// rather than the engine's total when accounting for them.
    fn phase_stats(&self) -> Vec<PhaseStats> {
        self.inner.phase_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::CdTournament;
    use crate::{FullAlgorithm, Params};
    use mac_sim::{Engine, SimConfig, StopWhen};

    fn run_with_offsets(offsets: &[u64], seed: u64) -> mac_sim::RunReport {
        let (c, n) = (32u32, 1u64 << 10);
        let cfg = SimConfig::new(c)
            .seed(seed)
            .stop_when(StopWhen::Solved)
            .max_rounds(100_000);
        let mut exec = Engine::new(cfg);
        for &off in offsets {
            let node = StaggeredStart::new(FullAlgorithm::new(Params::practical(), c, n));
            exec.add_node_at(node, off);
        }
        exec.run().expect("run succeeds")
    }

    #[test]
    fn simultaneous_start_still_works() {
        let report = run_with_offsets(&[0; 20], 1);
        assert!(report.is_solved());
    }

    #[test]
    fn offset_one_adversary_is_handled() {
        // The case that breaks the paper's literal 2-round listen: half the
        // nodes wake exactly one round after the rest.
        let offsets: Vec<u64> = (0..40).map(|i| u64::from(i % 2 == 1)).collect();
        for seed in 0..10 {
            let report = run_with_offsets(&offsets, seed);
            assert!(report.is_solved(), "seed {seed}");
        }
    }

    #[test]
    fn widely_staggered_wakeups_solve() {
        let offsets: Vec<u64> = (0..30).map(|i| i * 3).collect();
        let report = run_with_offsets(&offsets, 3);
        assert!(report.is_solved());
    }

    #[test]
    fn late_wakers_retire_without_running_inner() {
        let (c, n) = (32u32, 1u64 << 10);
        let cfg = SimConfig::new(c)
            .seed(5)
            .stop_when(StopWhen::AllTerminated)
            .max_rounds(100_000);
        let mut exec = Engine::new(cfg);
        let mut late = Vec::new();
        for i in 0..20 {
            let node = StaggeredStart::new(FullAlgorithm::new(Params::practical(), c, n));
            // The late wave must arrive while the first wave is still
            // running (its beacons are what the late listeners hear); at
            // offset 6 the first wave is still deep in its Reduce step.
            let off = if i < 10 { 0 } else { 6 };
            let id = exec.add_node_at(node, off);
            if off > 0 {
                late.push(id);
            }
        }
        exec.run().expect("run succeeds");
        for id in late {
            assert!(
                exec.node(id).retired_early(),
                "late node {id} ran the protocol"
            );
        }
    }

    #[test]
    fn lone_late_node_can_win_if_nothing_started() {
        // A single node waking at round 10 with no earlier activity hears
        // silence, becomes the only runner, and its first beacon solves.
        let cfg = SimConfig::new(4).seed(0).max_rounds(1000);
        let mut exec = Engine::new(cfg);
        exec.add_node_at(StaggeredStart::new(CdTournament::new()), 10);
        let report = exec.run().expect("run succeeds");
        assert_eq!(report.solved_round, Some(10 + LISTEN_ROUNDS));
    }

    #[test]
    fn overhead_is_at_most_double_plus_constant() {
        let (c, n) = (32u32, 1u64 << 10);
        let base = {
            let mut exec = Engine::new(SimConfig::new(c).seed(6).max_rounds(100_000));
            for _ in 0..30 {
                exec.add_node(FullAlgorithm::new(Params::practical(), c, n));
            }
            exec.run().unwrap().rounds_to_solve().unwrap()
        };
        let wrapped = run_with_offsets(&[0; 30], 6).rounds_to_solve().unwrap();
        assert!(
            wrapped <= 2 * base + 2 * LISTEN_ROUNDS + 2,
            "wrapped {wrapped} vs base {base}"
        );
    }
}
