//! # contention — multi-channel contention resolution with collision detection
//!
//! A complete implementation of *Contention Resolution on Multiple Channels
//! with Collision Detection* (Fineman, Newport, Wang; PODC 2016), on top of
//! the [`mac_sim`] channel simulator.
//!
//! The paper's model: `n` possible nodes, an unknown subset activated, and
//! `C ≥ 1` synchronous multiple-access channels with strong collision
//! detection. The problem is solved in the first round in which exactly one
//! node transmits on channel 1.
//!
//! ## What's here
//!
//! * [`TwoActive`] — the optimal `O(log n/log C + log log n)` algorithm for
//!   the restricted two-node case (§4), matching the lower bound of
//!   \[Newport 2014\].
//! * [`Reduce`] — step 1 of the general algorithm: knock the active set
//!   down to `O(log n)` in `O(log log n)` rounds (§5.1, Fig. 2).
//! * [`IdReduction`] — step 2: rename survivors with unique ids from
//!   `[C/2]` in `O(log n / log C)` rounds (§5.2).
//! * [`LeafElection`] — step 3: deterministic leader election through
//!   *coalescing cohorts* that simulate Snir's CREW-PRAM `(p+1)`-ary search
//!   (§5.3, Fig. 3), in `O(log h · log log x)` rounds.
//! * [`FullAlgorithm`] — the composed pipeline of Theorem 4:
//!   `O(log n / log C + (log log n)(log log log n))` rounds w.h.p.
//! * [`phase`] — the composition layer the pipeline is built from: the
//!   [`phase::Phase`] trait with barrier-synchronized
//!   [`and_then`](phase::Phase::and_then) handoff, small-`C`
//!   [`with_fallback`](phase::Phase::with_fallback) routing, and a unified
//!   per-phase [`phase::PhaseStats`] telemetry spine.
//! * [`baselines`] — the prior-art comparators: single-channel collision
//!   detection descent (`O(log n)`), single-channel decay without collision
//!   detection (`O(log² n)`), and a multi-channel no-CD algorithm
//!   (`O(log² n / C + log n)`).
//! * [`supervise`] — restart-with-backoff recovery: wrap any phase stack
//!   in [`supervise::Supervised`] and a wedge under faults (round slice
//!   exhausted, invariant violated) restarts it from clean state on a
//!   fresh derived RNG stream, per a bounded [`supervise::RestartPolicy`].
//! * [`wakeup`] — the §3 transform that lifts any of the above to
//!   non-simultaneous wake-up at a ×2 round cost.
//! * [`session`] — a one-stop facade (`Session::new(c, n).run(k)`) over all
//!   algorithms with feedback-model bookkeeping.
//! * [`serialize`] — repeated contention resolution: deliver *every*
//!   contender's packet, Komlós–Greenberg style, with any embedded
//!   election.
//! * [`cohort_compute`] / [`extensions`] / [`theory`] — the paper's §6
//!   material made executable: cohorts as CREW-PRAM work groups, the
//!   expected-O(1) regime, population-size estimation, and the closed-form
//!   round budgets behind the experiments.
//!
//! ## Quickstart
//!
//! ```
//! use contention::{FullAlgorithm, Params};
//! use mac_sim::{Engine, SimConfig};
//!
//! # fn main() -> Result<(), mac_sim::SimError> {
//! let (n, c, active) = (1u64 << 12, 64u32, 500usize);
//! let mut exec = Engine::new(SimConfig::new(c).seed(7));
//! for _ in 0..active {
//!     exec.add_node(FullAlgorithm::new(Params::practical(), c, n));
//! }
//! let report = exec.run()?;
//! println!("solved in {} rounds", report.rounds_to_solve().unwrap());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod cohort_compute;
pub mod extensions;
mod full;
mod id_reduction;
mod leaf_election;
mod params;
pub mod phase;
mod reduce;
pub mod serialize;
pub mod session;
pub mod supervise;
pub mod theory;
pub mod tree;
mod two_active;
pub mod wakeup;

pub use full::{
    supervised_paper_node, FullAlgorithm, FullStats, MakePaperStack, PaperStack,
    SupervisedPaperStack,
};
pub use id_reduction::{IdReduction, IdReductionOutcome, IdReductionStats};
pub use leaf_election::{LeafElection, LeafElectionStats};
pub use params::Params;
pub use phase::{Phase, PhaseOutcome, PhaseProtocol, PhaseStats, PhaseTelemetry};
pub use reduce::{Reduce, ReduceOutcome};
pub use supervise::{RestartPolicy, Supervised};
pub use two_active::{TwoActive, TwoActiveStats};
