//! `TwoActive` — contention resolution for exactly two active nodes (§4).
//!
//! The algorithm solves the restricted `|A| = 2` case in
//! `O(log n / log C + log log n)` rounds w.h.p., exactly matching the lower
//! bound of \[Newport 2014\]. It has two steps:
//!
//! 1. **ID reduction** (`O(log n / log C)` rounds w.h.p.): both nodes
//!    repeatedly pick a uniform channel from `[C']` (`C'` = the largest
//!    power of two `≤ min(C, n)`) and transmit on it. Strong collision
//!    detection tells each transmitter whether it was alone; the first round
//!    in which the two picks differ, *both* nodes detect success
//!    simultaneously and adopt their channel labels as new ids.
//! 2. **Symmetry breaking** (`O(log log C)` rounds, deterministic): over the
//!    canonical tree `T_{C'}` with `C'` leaves, binary-search the levels for
//!    the smallest level `L` at which the two root-to-leaf paths diverge
//!    (`SplitCheck` in Fig. 1). Each probe of level `m` has both nodes
//!    transmit on the channel given by their level-`m` ancestor's position;
//!    a collision means the paths still share that tree node. At the end,
//!    the node whose level-`L` path node is a *left* child wins and
//!    transmits alone on the primary channel.
//!
//! The implementation is a [`Protocol`] state machine driven by the
//! `mac-sim` executor; [`TwoActive::stats`] exposes per-step round counts
//! for the experiments.

use mac_sim::{Action, ChannelId, Feedback, Protocol, RoundContext, Status};
use rand::rngs::SmallRng;
use rand::Rng;

use crate::phase::{impl_terminal_phase, PhaseMeter};
use crate::tree::ChannelTree;

/// Per-step round counts, exposed for experiments E1–E4.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TwoActiveStats {
    /// Rounds spent in step 1 (ID reduction).
    pub rename_rounds: u64,
    /// Rounds spent in step 2's binary search (`SplitCheck`).
    pub search_rounds: u64,
    /// The id from `[C']` adopted in step 1, once set.
    pub adopted_id: Option<u32>,
    /// The divergence level `L` found by the search, once set.
    pub split_level: Option<u32>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Step 1: picking random channels until alone.
    Rename,
    /// Step 2: binary search over levels `[l, r]`; when `probed` holds the
    /// level just transmitted on, the next `observe` resolves it.
    Search { l: u32, r: u32 },
    /// Step 2 epilogue: the split level is known; winner transmits on the
    /// primary channel, loser listens.
    Declare { level: u32 },
    /// Terminated.
    Done,
}

/// The two-node algorithm of §4, Fig. 1.
///
/// # Preconditions
///
/// Exactly two nodes must run this protocol in the same execution (that is
/// the problem variant it solves). With `min(C, n) < 2` there is no way to
/// break symmetry through channel choice, so [`TwoActive::new`] rejects it.
///
/// ```
/// use contention::TwoActive;
/// use mac_sim::{Engine, SimConfig};
///
/// # fn main() -> Result<(), mac_sim::SimError> {
/// let c = 64;
/// let n = 1 << 16;
/// let mut exec = Engine::new(SimConfig::new(c).seed(1));
/// exec.add_node(TwoActive::new(c, n));
/// exec.add_node(TwoActive::new(c, n));
/// let report = exec.run()?;
/// assert!(report.is_solved());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TwoActive {
    tree: ChannelTree,
    state: State,
    status: Status,
    id: u32,
    stats: TwoActiveStats,
    meter: PhaseMeter,
}

impl TwoActive {
    /// Creates a node of the two-node algorithm for `channels` channels and
    /// id-space size `n`.
    ///
    /// Only the largest power of two `≤ min(channels, n)` channels are used:
    /// the paper assumes `C` is a power of two and caps usable channels at
    /// `n` ("for the case where C > n, we use only the first n channels").
    ///
    /// # Panics
    ///
    /// Panics if `min(channels, n) < 2`.
    #[must_use]
    pub fn new(channels: u32, n: u64) -> Self {
        let usable = u64::from(channels).min(n);
        assert!(
            usable >= 2,
            "TwoActive needs at least 2 usable channels (C={channels}, n={n})"
        );
        let c_eff = prev_power_of_two(usable as u32);
        TwoActive {
            tree: ChannelTree::new(c_eff),
            state: State::Rename,
            status: Status::Active,
            id: 0,
            stats: TwoActiveStats::default(),
            meter: PhaseMeter::default(),
        }
    }

    /// The number of channels the algorithm actually uses (`C'`).
    #[must_use]
    pub fn effective_channels(&self) -> u32 {
        self.tree.leaves()
    }

    /// Step statistics, for experiments.
    #[must_use]
    pub fn stats(&self) -> TwoActiveStats {
        self.stats
    }

    /// The channel probed when checking level `m`: the 1-based position of
    /// this node's level-`m` ancestor within its level — the paper's
    /// `⌈id / 2^{lg C − m}⌉`.
    fn probe_channel(&self, m: u32) -> ChannelId {
        ChannelId::new(
            self.tree
                .leaf(self.id)
                .ancestor_at_level(m)
                .position_in_level(),
        )
    }

    /// Whether this node wins at split level `level`: its path node at that
    /// level is a left child. `level == 0` only happens if no collision was
    /// ever observed (the node is alone); it then claims victory.
    fn wins_at(&self, level: u32) -> bool {
        level == 0
            || self
                .tree
                .leaf(self.id)
                .ancestor_at_level(level)
                .is_left_child()
    }
}

/// The largest power of two `≤ x`.
fn prev_power_of_two(x: u32) -> u32 {
    debug_assert!(x >= 1);
    1 << (31 - x.leading_zeros())
}

impl Protocol for TwoActive {
    type Msg = u32;

    fn act(&mut self, _ctx: &RoundContext, rng: &mut SmallRng) -> Action<u32> {
        match self.state {
            State::Rename => {
                self.stats.rename_rounds += 1;
                self.id = rng.gen_range(1..=self.tree.leaves());
                Action::transmit(ChannelId::new(self.id), 0)
            }
            State::Search { l, r } => {
                debug_assert!(l < r);
                self.stats.search_rounds += 1;
                let m = (l + r) / 2;
                Action::transmit(self.probe_channel(m), 0)
            }
            State::Declare { level } => {
                if self.wins_at(level) {
                    Action::transmit(ChannelId::PRIMARY, 0)
                } else {
                    Action::listen(ChannelId::PRIMARY)
                }
            }
            State::Done => Action::Sleep,
        }
    }

    fn observe(&mut self, _ctx: &RoundContext, feedback: Feedback<u32>, _rng: &mut SmallRng) {
        match self.state {
            State::Rename => {
                if feedback.message().is_some() {
                    // Alone on the chosen channel: adopt it as the new id.
                    // The other node (if its pick differed) succeeds in the
                    // same round, so both enter the search synchronized.
                    self.stats.adopted_id = Some(self.id);
                    self.state = if self.tree.height() == 0 {
                        State::Declare { level: 0 }
                    } else {
                        State::Search {
                            l: 0,
                            r: self.tree.height(),
                        }
                    };
                }
            }
            State::Search { l, r } => {
                let m = (l + r) / 2;
                let (nl, nr) = if feedback.is_collision() {
                    // Paths share the level-m tree node: split is deeper.
                    (m + 1, r)
                } else {
                    // Alone: paths have already diverged by level m.
                    (l, m)
                };
                self.state = if nl >= nr {
                    self.stats.split_level = Some(nl);
                    State::Declare { level: nl }
                } else {
                    State::Search { l: nl, r: nr }
                };
            }
            State::Declare { level } => {
                if self.wins_at(level) {
                    debug_assert!(
                        feedback.message().is_some(),
                        "symmetry breaking failed: winner's declaration was not alone"
                    );
                    self.status = Status::Leader;
                } else {
                    debug_assert!(
                        feedback.message().is_some(),
                        "symmetry breaking failed: loser heard {feedback:?} instead of winner"
                    );
                    self.status = Status::Inactive;
                }
                self.state = State::Done;
            }
            State::Done => {}
        }
    }

    fn status(&self) -> Status {
        self.status
    }

    fn phase(&self) -> &'static str {
        match self.state {
            State::Rename => "rename",
            State::Search { .. } => "search",
            State::Declare { .. } => "declare",
            State::Done => "done",
        }
    }
}

impl_terminal_phase!(TwoActive, "two-active");

#[cfg(test)]
mod tests {
    use super::*;
    use mac_sim::{Engine, SimConfig, SimError, StopWhen};

    fn run_pair(c: u32, n: u64, seed: u64) -> (mac_sim::RunReport, TwoActiveStats, TwoActiveStats) {
        let cfg = SimConfig::new(c)
            .seed(seed)
            .stop_when(StopWhen::AllTerminated)
            .max_rounds(100_000);
        let mut exec = Engine::new(cfg);
        let a = exec.add_node(TwoActive::new(c, n));
        let b = exec.add_node(TwoActive::new(c, n));
        let report = exec.run().expect("run succeeds");
        (report, exec.node(a).stats(), exec.node(b).stats())
    }

    #[test]
    fn solves_and_elects_exactly_one_leader() {
        for seed in 0..50 {
            let (report, _, _) = run_pair(16, 1 << 12, seed);
            assert!(report.is_solved(), "seed {seed}");
            assert_eq!(report.leaders.len(), 1, "seed {seed}");
            assert!(report.active_remaining.is_empty(), "seed {seed}");
        }
    }

    #[test]
    fn nodes_adopt_distinct_ids() {
        for seed in 0..50 {
            let (_, sa, sb) = run_pair(32, 1 << 10, seed);
            let (ia, ib) = (sa.adopted_id.unwrap(), sb.adopted_id.unwrap());
            assert_ne!(ia, ib, "seed {seed}");
            assert!((1..=32).contains(&ia));
            assert!((1..=32).contains(&ib));
        }
    }

    #[test]
    fn split_level_matches_tree_oracle() {
        for seed in 0..50 {
            let (_, sa, sb) = run_pair(64, 1 << 10, seed);
            let tree = ChannelTree::new(64);
            let want = tree
                .divergence_level(sa.adopted_id.unwrap(), sb.adopted_id.unwrap())
                .unwrap();
            assert_eq!(sa.split_level, Some(want), "seed {seed}");
            assert_eq!(sb.split_level, Some(want), "seed {seed}");
        }
    }

    #[test]
    fn search_rounds_are_logarithmic_in_height() {
        // h = lg C; the binary search over levels [0, h] takes at most
        // ceil(lg(h)) + 1 probes.
        for c in [4u32, 16, 64, 1024, 4096] {
            let h = f64::from(c).log2();
            let cap = h.log2().ceil() as u64 + 1;
            for seed in 0..10 {
                let (_, sa, _) = run_pair(c, 1 << 20, seed);
                assert!(
                    sa.search_rounds <= cap,
                    "C={c}: {} probes > cap {cap}",
                    sa.search_rounds
                );
            }
        }
    }

    #[test]
    fn rename_rounds_shrink_with_more_channels() {
        // Averaged over seeds, the geometric step-1 length has mean
        // C/(C-1); with many channels it should almost always be 1 round.
        let mean = |c: u32| -> f64 {
            let total: u64 = (0..40)
                .map(|s| run_pair(c, 1 << 16, s).1.rename_rounds)
                .sum();
            total as f64 / 40.0
        };
        let coarse = mean(2);
        let fine = mean(1024);
        assert!(
            fine < coarse,
            "more channels must speed renaming: {fine} vs {coarse}"
        );
        assert!(fine <= 1.2, "with C=1024 renaming is ~1 round, got {fine}");
    }

    #[test]
    fn works_with_minimum_channels() {
        for seed in 0..20 {
            let (report, _, _) = run_pair(2, 1 << 8, seed);
            assert!(report.is_solved(), "seed {seed}");
            assert_eq!(report.leaders.len(), 1);
        }
    }

    #[test]
    fn caps_channels_at_n() {
        let ta = TwoActive::new(1 << 20, 16);
        assert_eq!(ta.effective_channels(), 16);
        // And rounds down to a power of two.
        let ta = TwoActive::new(100, 1 << 20);
        assert_eq!(ta.effective_channels(), 64);
    }

    #[test]
    #[should_panic(expected = "at least 2 usable channels")]
    fn rejects_single_channel() {
        let _ = TwoActive::new(1, 1 << 10);
    }

    #[test]
    #[should_panic(expected = "at least 2 usable channels")]
    fn rejects_n_of_one() {
        let _ = TwoActive::new(64, 1);
    }

    #[test]
    fn lone_node_declares_itself_leader() {
        // Robustness beyond the paper: a single node never sees a collision,
        // its search collapses to level 0, and it claims victory.
        let cfg = SimConfig::new(8)
            .stop_when(StopWhen::AllTerminated)
            .max_rounds(1000);
        let mut exec = Engine::new(cfg);
        exec.add_node(TwoActive::new(8, 256));
        let report = exec.run().expect("run succeeds");
        assert_eq!(report.leaders.len(), 1);
        assert!(report.is_solved());
    }

    #[test]
    fn total_rounds_match_theorem_one_budget() {
        // Theorem 1: O(log n / log C + log log n). Check against a generous
        // concrete budget: 4·(lg n / lg C) + 2·lg lg C + 8.
        for (c, n) in [
            (4u32, 1u64 << 16),
            (64, 1 << 16),
            (1024, 1 << 20),
            (2, 1 << 10),
        ] {
            for seed in 0..20 {
                let (report, _, _) = run_pair(c, n, seed);
                let budget = 4.0 * (n as f64).log2() / f64::from(c).log2()
                    + 2.0 * f64::from(c).log2().log2().max(1.0)
                    + 8.0;
                let rounds = report.rounds_to_solve().unwrap() as f64;
                assert!(
                    rounds <= budget,
                    "C={c} n={n} seed={seed}: {rounds} rounds > budget {budget}"
                );
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let (r1, s1a, s1b) = run_pair(32, 1 << 12, 99);
        let (r2, s2a, s2b) = run_pair(32, 1 << 12, 99);
        assert_eq!(r1.solved_round, r2.solved_round);
        assert_eq!(s1a, s2a);
        assert_eq!(s1b, s2b);
    }

    #[test]
    fn timeout_error_propagates() {
        // A one-round cap cannot accommodate the declaration round.
        let cfg = SimConfig::new(4).max_rounds(0);
        let mut exec = Engine::new(cfg);
        exec.add_node(TwoActive::new(4, 16));
        exec.add_node(TwoActive::new(4, 16));
        assert_eq!(exec.run().unwrap_err(), SimError::Timeout { max_rounds: 0 });
    }
}
