//! The *channel tree*: a complete binary tree whose nodes are identified
//! with channels.
//!
//! Both of the paper's symmetry-breaking searches run over such a tree:
//!
//! * `TwoActive` (§4) uses a tree `T_C` with `C` leaves labelled `[C]` and,
//!   when checking level `m`, assigns a node with leaf id `id` to the channel
//!   `⌈id / 2^{lg C − m}⌉` — the 1-based *position within level `m`* of the
//!   leaf's level-`m` ancestor.
//! * `LeafElection` (§5.3) uses a tree with `C/2` leaves and assigns every
//!   tree node its own channel; we use the standard heap numbering
//!   (root = 1, children of `v` = `2v`, `2v+1`), which conveniently makes
//!   the root's channel the primary channel — exactly what the paper needs,
//!   since a lone broadcast on the root channel both detects the final
//!   cohort and solves the problem.
//!
//! Tree nodes are represented by their heap index ([`TreeNode`]); all level
//! and ancestor arithmetic is bit twiddling on that index.

use mac_sim::ChannelId;

/// A node of a [`ChannelTree`], identified by its heap index (root = 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TreeNode(u32);

impl TreeNode {
    /// The root of every channel tree.
    pub const ROOT: TreeNode = TreeNode(1);

    /// Creates a tree node from its heap index.
    ///
    /// # Panics
    ///
    /// Panics if `heap_index` is zero (heap numbering starts at 1).
    #[must_use]
    pub fn from_heap_index(heap_index: u32) -> Self {
        assert!(heap_index >= 1, "heap indices start at 1");
        TreeNode(heap_index)
    }

    /// This node's heap index.
    #[must_use]
    pub fn heap_index(self) -> u32 {
        self.0
    }

    /// The node's level (depth): the root is at level 0.
    #[must_use]
    pub fn level(self) -> u32 {
        31 - self.0.leading_zeros()
    }

    /// The node's parent.
    ///
    /// # Panics
    ///
    /// Panics if called on the root.
    #[must_use]
    pub fn parent(self) -> TreeNode {
        assert!(self.0 > 1, "the root has no parent");
        TreeNode(self.0 >> 1)
    }

    /// The node's left child.
    #[must_use]
    pub fn left_child(self) -> TreeNode {
        TreeNode(self.0 << 1)
    }

    /// The node's right child.
    #[must_use]
    pub fn right_child(self) -> TreeNode {
        TreeNode((self.0 << 1) | 1)
    }

    /// Whether this node is the left child of its parent. The root is
    /// neither child; this returns `false` for it.
    #[must_use]
    pub fn is_left_child(self) -> bool {
        self.0 > 1 && self.0 & 1 == 0
    }

    /// Whether this node is the right child of its parent.
    #[must_use]
    pub fn is_right_child(self) -> bool {
        self.0 > 1 && self.0 & 1 == 1
    }

    /// The ancestor of this node at level `level`.
    ///
    /// # Panics
    ///
    /// Panics if `level` exceeds this node's own level.
    #[must_use]
    pub fn ancestor_at_level(self, level: u32) -> TreeNode {
        let own = self.level();
        assert!(
            level <= own,
            "node at level {own} has no ancestor at deeper level {level}"
        );
        TreeNode(self.0 >> (own - level))
    }

    /// The 1-based position of this node among the nodes of its level,
    /// left to right. This is the channel assignment `⌈id / 2^{lg C − m}⌉`
    /// used by `TwoActive`'s `SplitCheck`.
    #[must_use]
    pub fn position_in_level(self) -> u32 {
        self.0 - (1 << self.level()) + 1
    }

    /// The channel dedicated to this tree node under heap numbering.
    #[must_use]
    pub fn channel(self) -> ChannelId {
        ChannelId::new(self.0)
    }
}

/// The channel dedicated to *level* `level` as a whole (its "row channel"
/// in the paper's terminology): the channel of the leftmost node at that
/// level. `CheckLevel` uses it to globalize per-ancestor collision
/// observations.
#[must_use]
pub fn row_channel(level: u32) -> ChannelId {
    ChannelId::new(1 << level)
}

/// A complete binary tree over a power-of-two number of leaves, with leaves
/// labelled `1..=leaves`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelTree {
    leaves: u32,
    height: u32,
}

impl ChannelTree {
    /// Creates the canonical tree with `leaves` leaves.
    ///
    /// # Panics
    ///
    /// Panics unless `leaves` is a power of two (the paper assumes `C` is a
    /// power of two; callers round down).
    #[must_use]
    pub fn new(leaves: u32) -> Self {
        assert!(
            leaves.is_power_of_two(),
            "leaf count must be a power of two, got {leaves}"
        );
        ChannelTree {
            leaves,
            height: leaves.trailing_zeros(),
        }
    }

    /// Number of leaves.
    #[must_use]
    pub fn leaves(&self) -> u32 {
        self.leaves
    }

    /// Tree height `h = lg(leaves)`: the level at which the leaves sit.
    #[must_use]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Total number of tree nodes (`2·leaves − 1`), which is also the number
    /// of distinct channels the tree occupies under heap numbering.
    #[must_use]
    pub fn node_count(&self) -> u32 {
        2 * self.leaves - 1
    }

    /// The leaf labelled `id` (1-based).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not in `1..=leaves`.
    #[must_use]
    pub fn leaf(&self, id: u32) -> TreeNode {
        assert!(
            (1..=self.leaves).contains(&id),
            "leaf id {id} out of range 1..={}",
            self.leaves
        );
        TreeNode(self.leaves + id - 1)
    }

    /// The root node.
    #[must_use]
    pub fn root(&self) -> TreeNode {
        TreeNode::ROOT
    }

    /// The level (counted from the root) at which the paths from the root to
    /// leaves `a` and `b` first diverge: the smallest `m` with distinct
    /// level-`m` ancestors. Returns `None` when `a == b` (the paths never
    /// diverge).
    ///
    /// This is the quantity `SplitCheck`/`SplitSearch` compute with channel
    /// probes; the closed form is used as the test oracle.
    #[must_use]
    pub fn divergence_level(&self, a: u32, b: u32) -> Option<u32> {
        if a == b {
            return None;
        }
        let la = self.leaf(a).heap_index();
        let lb = self.leaf(b).heap_index();
        // The paths share ancestors down to (and including) the LCA, whose
        // level is height - (bits below the common prefix).
        let diff_bits = 32 - (la ^ lb).leading_zeros();
        Some(self.height - diff_bits + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_and_children() {
        let root = TreeNode::ROOT;
        assert_eq!(root.level(), 0);
        assert_eq!(root.left_child().heap_index(), 2);
        assert_eq!(root.right_child().heap_index(), 3);
        assert_eq!(root.left_child().level(), 1);
        assert!(root.left_child().is_left_child());
        assert!(root.right_child().is_right_child());
        assert!(!root.is_left_child());
        assert!(!root.is_right_child());
        assert_eq!(root.left_child().parent(), root);
        assert_eq!(root.right_child().parent(), root);
    }

    #[test]
    #[should_panic(expected = "no parent")]
    fn root_has_no_parent() {
        let _ = TreeNode::ROOT.parent();
    }

    #[test]
    fn ancestors_walk_toward_root() {
        let tree = ChannelTree::new(16);
        let leaf = tree.leaf(11); // heap index 16 + 10 = 26 = 0b11010
        assert_eq!(leaf.level(), 4);
        assert_eq!(leaf.ancestor_at_level(4), leaf);
        assert_eq!(leaf.ancestor_at_level(3).heap_index(), 13);
        assert_eq!(leaf.ancestor_at_level(2).heap_index(), 6);
        assert_eq!(leaf.ancestor_at_level(1).heap_index(), 3);
        assert_eq!(leaf.ancestor_at_level(0), TreeNode::ROOT);
    }

    #[test]
    #[should_panic(expected = "no ancestor")]
    fn ancestor_below_own_level_panics() {
        let tree = ChannelTree::new(4);
        let _ = tree.root().ancestor_at_level(1);
    }

    #[test]
    fn position_in_level_matches_paper_formula() {
        // The paper assigns leaf `id` at level m the channel ceil(id / 2^(h-m)).
        let tree = ChannelTree::new(64);
        let h = tree.height();
        for id in 1..=64u32 {
            for m in 0..=h {
                let expected = id.div_ceil(1 << (h - m));
                let got = tree.leaf(id).ancestor_at_level(m).position_in_level();
                assert_eq!(got, expected, "id={id} m={m}");
            }
        }
    }

    #[test]
    fn leaf_labels_map_to_contiguous_heap_indices() {
        let tree = ChannelTree::new(8);
        let idxs: Vec<u32> = (1..=8).map(|id| tree.leaf(id).heap_index()).collect();
        assert_eq!(idxs, vec![8, 9, 10, 11, 12, 13, 14, 15]);
        assert_eq!(tree.node_count(), 15);
        assert_eq!(tree.height(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn leaf_out_of_range_panics() {
        let tree = ChannelTree::new(8);
        let _ = tree.leaf(9);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_leaves_panics() {
        let _ = ChannelTree::new(12);
    }

    #[test]
    fn root_channel_is_primary() {
        assert!(TreeNode::ROOT.channel().is_primary());
        let tree = ChannelTree::new(32);
        assert!(tree.root().channel().is_primary());
    }

    #[test]
    fn row_channels_are_leftmost_nodes() {
        assert_eq!(row_channel(0), ChannelId::new(1));
        assert_eq!(row_channel(1), ChannelId::new(2));
        assert_eq!(row_channel(4), ChannelId::new(16));
    }

    #[test]
    fn divergence_level_brute_force() {
        let tree = ChannelTree::new(16);
        for a in 1..=16u32 {
            for b in 1..=16u32 {
                let want = if a == b {
                    None
                } else {
                    // Brute force: first level with distinct ancestors.
                    (0..=tree.height()).find(|&m| {
                        tree.leaf(a).ancestor_at_level(m) != tree.leaf(b).ancestor_at_level(m)
                    })
                };
                assert_eq!(tree.divergence_level(a, b), want, "a={a} b={b}");
            }
        }
    }

    #[test]
    fn divergence_is_symmetric_and_at_least_one() {
        let tree = ChannelTree::new(64);
        for (a, b) in [(1u32, 2u32), (1, 64), (17, 48), (33, 34)] {
            let d = tree.divergence_level(a, b).unwrap();
            assert_eq!(tree.divergence_level(b, a).unwrap(), d);
            assert!(d >= 1, "paths share the root, so divergence is >= 1");
            assert!(d <= tree.height());
        }
    }

    #[test]
    fn single_leaf_tree_is_degenerate_but_valid() {
        let tree = ChannelTree::new(1);
        assert_eq!(tree.height(), 0);
        assert_eq!(tree.leaf(1), tree.root());
        assert_eq!(tree.node_count(), 1);
    }

    #[test]
    fn channel_equals_heap_index() {
        let tree = ChannelTree::new(8);
        for id in 1..=8 {
            let node = tree.leaf(id);
            assert_eq!(node.channel().get(), node.heap_index());
        }
    }
}
