//! `LeafElection` — step 3 of the general algorithm (§5.3, Fig. 3):
//! deterministic leader election through *coalescing cohorts*.
//!
//! Input: `x ≤ C/2` active nodes holding distinct ids from `[C/2]`, mapped
//! to the leaves of a channel tree with `C/2` leaves (every tree node owns
//! a channel under heap numbering; the root's channel is the primary
//! channel). The algorithm repeatedly:
//!
//! 1. **Root check** (1 round): each cohort's master (`cID = 1`) broadcasts
//!    on the root channel. A lone broadcast means one cohort remains — its
//!    master is the leader, and because the root channel *is* the primary
//!    channel, that same broadcast solves contention resolution.
//! 2. **`SplitSearch`** (`5·⌈log_{p+1} h⌉` rounds for cohort size `p`):
//!    find the level `ℓ` closest to the root at which all cohorts occupy
//!    distinct tree nodes. This is a distributed simulation of Snir's CREW
//!    PRAM `(p+1)`-ary search (see the `crew-pram` crate, whose
//!    `split_points` function is shared so the two stay in lockstep):
//!    member `cID = j` of every cohort probes split level `ℓ_j` and
//!    `ℓ_{j+1}` with the two-round `CheckLevel` primitive, and the unique
//!    member that straddles the boundary announces the surviving subrange
//!    on the cohort's own channel.
//! 3. **Pairing** (1 round): masters broadcast on their level-`(ℓ−1)`
//!    ancestor's channel. A collision there means exactly two cohorts share
//!    that ancestor (one per subtree — they merge: members in the right
//!    subtree add the old cohort size to their `cID`, the cohort size
//!    doubles, and the shared ancestor becomes the new cohort node. A lone
//!    broadcast means the cohort found no partner and goes inactive.
//!
//! Cohort sizes double every phase, so phase `i` searches with `p = 2^{i-1}`
//! processors and Lemma 16 gives `O((1/i)·log h)` rounds per search; summing
//! over `O(log x)` phases yields Theorem 17's `O(log h · log log x)` bound.

use crew_pram::search::split_points;
use mac_sim::{Action, Feedback, Protocol, RoundContext, Status};
use rand::rngs::SmallRng;

use crate::phase::{impl_phase_telemetry, Phase, PhaseMeter, PhaseOutcome, PhaseStats};
use crate::tree::{row_channel, ChannelTree, TreeNode};

/// Per-node counters exposed for experiments E8/E13.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LeafElectionStats {
    /// Number of phases entered (root checks that found > 1 cohort).
    pub phases: u32,
    /// Rounds spent inside `SplitSearch`, per phase.
    pub search_rounds_by_phase: Vec<u64>,
    /// Total rounds participated in.
    pub total_rounds: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SearchState {
    l_min: u32,
    l_max: u32,
    /// Sub-round within the 5-round iteration: 0–1 first `CheckLevel`,
    /// 2–3 second `CheckLevel`, 4 announcement.
    sub: u8,
    /// Collision observed on the ancestor channel in the current
    /// `CheckLevel`'s first round.
    anc_collision: bool,
    /// Global result of the first check ("was there a collision at
    /// `ℓ_cID`?"), once known.
    check1: Option<bool>,
    /// Global result of the second check (level `ℓ_{cID+1}`), once known.
    check2: Option<bool>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    RootCheck,
    Search(SearchState),
    Pair { level: u32 },
    Done,
}

/// The coalescing-cohorts leader election of Fig. 3.
///
/// # Preconditions
///
/// Every node running this protocol in an execution must hold a *distinct*
/// id (as guaranteed by [`crate::IdReduction`]); duplicate ids violate
/// Property 11 and the run's behavior is unspecified. Feedback that is
/// impossible on a clean channel — a fault-injected collision at the root,
/// a swallowed announcement — does *not* panic: the node parks and reports
/// it through [`Phase::invariant_violation`], so a
/// [`crate::Supervised`] wrapper can restart the stack.
///
/// ```
/// use contention::LeafElection;
/// use mac_sim::{Engine, SimConfig, StopWhen};
///
/// # fn main() -> Result<(), mac_sim::SimError> {
/// let c = 64; // tree with 32 leaves
/// let cfg = SimConfig::new(c).stop_when(StopWhen::AllTerminated);
/// let mut exec = Engine::new(cfg);
/// for id in [3, 7, 20, 21, 30] {
///     exec.add_node(LeafElection::new(c, id));
/// }
/// let report = exec.run()?;
/// assert_eq!(report.leaders.len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LeafElection {
    tree: ChannelTree,
    leaf: TreeNode,
    c_size: u32,
    c_id: u32,
    c_node: TreeNode,
    stage: Stage,
    status: Status,
    /// First fault-corrupted observation, if any: an adversarial channel
    /// (jam, noise, loss) can deliver feedback that is impossible on a
    /// clean channel. Instead of panicking, the node parks and reports the
    /// violation through [`Phase::invariant_violation`] so a supervisor
    /// can restart the stack.
    violation: Option<&'static str>,
    stats: LeafElectionStats,
    meter: PhaseMeter,
    /// Ablation knob (experiment E13): when set, `SplitSearch` pretends the
    /// cohort has a single member, degrading the `(p+1)`-ary search to the
    /// plain binary search a cohort-free design would use.
    force_binary_search: bool,
}

impl LeafElection {
    /// Creates a node with unique id `id` on a channel tree sized for
    /// `channels` channels (`C'/2` leaves, `C'` = largest power of two
    /// `≤ channels`).
    ///
    /// # Panics
    ///
    /// Panics if `channels < 2` or `id` is outside `1..=C'/2`.
    #[must_use]
    pub fn new(channels: u32, id: u32) -> Self {
        assert!(channels >= 2, "LeafElection needs C >= 2, got {channels}");
        let c_eff = 1u32 << (31 - channels.leading_zeros());
        let leaves = (c_eff / 2).max(1);
        let tree = ChannelTree::new(leaves);
        let leaf = tree.leaf(id);
        LeafElection {
            tree,
            leaf,
            c_size: 1,
            c_id: 1,
            c_node: leaf,
            stage: Stage::RootCheck,
            status: Status::Active,
            violation: None,
            stats: LeafElectionStats::default(),
            meter: PhaseMeter::default(),
            force_binary_search: false,
        }
    }

    /// Like [`LeafElection::new`], but with the coalescing-cohorts search
    /// acceleration disabled: every `SplitSearch` runs as a plain binary
    /// search no matter how large cohorts grow. Used by the E13 ablation to
    /// measure what the cohort structure buys
    /// (`O(log h · log x)` instead of `O(log h · log log x)` rounds).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`LeafElection::new`].
    #[must_use]
    pub fn with_binary_search(channels: u32, id: u32) -> Self {
        let mut node = LeafElection::new(channels, id);
        node.force_binary_search = true;
        node
    }

    /// This node's current cohort size (`2^{i-1}` in phase `i`).
    #[must_use]
    pub fn cohort_size(&self) -> u32 {
        self.c_size
    }

    /// This node's id within its cohort (`1..=cohort_size`).
    #[must_use]
    pub fn cohort_id(&self) -> u32 {
        self.c_id
    }

    /// The tree node currently acting as this node's cohort node.
    #[must_use]
    pub fn cohort_node(&self) -> TreeNode {
        self.c_node
    }

    /// Round counters for experiments.
    #[must_use]
    pub fn stats(&self) -> &LeafElectionStats {
        &self.stats
    }

    /// The level interval `(l_min, l_max]` the node's current `SplitSearch`
    /// is working on, if it is inside one — the observable the PRAM
    /// trace-equivalence tests compare against Snir's search.
    #[must_use]
    pub fn search_interval(&self) -> Option<(u32, u32)> {
        match self.stage {
            Stage::Search(s) => Some((s.l_min, s.l_max)),
            _ => None,
        }
    }

    /// The first invariant violation this node observed, if the channel
    /// ever delivered feedback that is impossible on a clean channel.
    #[must_use]
    pub fn violation(&self) -> Option<&'static str> {
        self.violation
    }

    /// Whether this node is its cohort's master (`cID = 1`).
    fn is_master(&self) -> bool {
        self.c_id == 1
    }

    /// Parks the node on a fault-corrupted observation. The protocol's
    /// state machine has no sound transition for feedback that violates
    /// its invariants, so the node goes idle (it still answers rounds with
    /// `Sleep`) and surfaces the violation for a supervisor to act on; an
    /// unsupervised run simply stays wedged until its round budget expires
    /// — the same verdict either way, with or without debug assertions.
    fn record_violation(&mut self, msg: &'static str) {
        if self.violation.is_none() {
            self.violation = Some(msg);
        }
        self.stage = Stage::Done;
    }

    /// The probe level `ℓ_j` of the current search iteration: interior
    /// levels are `l_min + j·seg`, and `ℓ_k = l_max`.
    fn probe_level(s: &SearchState, c_size: u32, j: usize) -> u32 {
        let (seg, k) = split_points(s.l_min as usize, s.l_max as usize, c_size as usize);
        if j >= k {
            s.l_max
        } else {
            s.l_min + (j * seg) as u32
        }
    }

    /// The processor count the search runs with: the cohort size, unless
    /// the E13 ablation pinned it to 1.
    fn search_width(&self) -> u32 {
        if self.force_binary_search {
            1
        } else {
            self.c_size
        }
    }

    /// Whether this node probes in the current iteration (`cID ≤ k−1`).
    fn is_prober(&self, s: &SearchState) -> bool {
        let (_, k) = split_points(
            s.l_min as usize,
            s.l_max as usize,
            self.search_width() as usize,
        );
        (self.c_id as usize) < k
    }

    /// Enters a search over `(l_min, l_max]`, or skips straight to pairing
    /// when the interval is already resolved.
    fn enter_search(&mut self, l_min: u32, l_max: u32) {
        debug_assert!(l_max > l_min, "search interval must be nonempty");
        if l_max == l_min + 1 {
            self.stage = Stage::Pair { level: l_max };
        } else {
            self.stage = Stage::Search(SearchState {
                l_min,
                l_max,
                sub: 0,
                anc_collision: false,
                check1: None,
                check2: None,
            });
        }
    }

    /// Applies the announced subrange index `i` and recurses or finishes.
    fn apply_announcement(&mut self, s: SearchState, i: u32) {
        let new_min = Self::probe_level(&s, self.search_width(), i as usize);
        let new_max = Self::probe_level(&s, self.search_width(), i as usize + 1);
        self.enter_search(new_min, new_max);
    }
}

impl Protocol for LeafElection {
    type Msg = u32;

    fn act(&mut self, _ctx: &RoundContext, _rng: &mut SmallRng) -> Action<u32> {
        self.stats.total_rounds += 1;
        match &self.stage {
            Stage::RootCheck => {
                if self.is_master() {
                    Action::transmit(self.tree.root().channel(), 0)
                } else {
                    Action::listen(self.tree.root().channel())
                }
            }
            Stage::Search(s) => {
                let s = *s;
                if let Some(r) = self.stats.search_rounds_by_phase.last_mut() {
                    *r += 1;
                }
                match s.sub {
                    // First CheckLevel, round 1: probe own ancestor at ℓ_cID.
                    0 | 2 => {
                        if self.is_prober(&s) {
                            let j = self.c_id as usize + usize::from(s.sub == 2);
                            let level = Self::probe_level(&s, self.search_width(), j);
                            Action::transmit(self.leaf.ancestor_at_level(level).channel(), 0)
                        } else {
                            Action::Sleep
                        }
                    }
                    // CheckLevel round 2: globalize on the row channel.
                    1 | 3 => {
                        if self.is_prober(&s) {
                            let j = self.c_id as usize + usize::from(s.sub == 3);
                            let level = Self::probe_level(&s, self.search_width(), j);
                            if s.anc_collision {
                                Action::transmit(row_channel(level), 0)
                            } else {
                                Action::listen(row_channel(level))
                            }
                        } else {
                            Action::Sleep
                        }
                    }
                    // Announcement round on the cohort's own channel.
                    4 => {
                        let check1 = s.check1.unwrap_or(false);
                        let check2 = s.check2.unwrap_or(false);
                        if self.c_id == 1 && self.is_prober(&s) && !check1 {
                            Action::transmit(self.c_node.channel(), 0)
                        } else if self.is_prober(&s) && check1 && !check2 {
                            Action::transmit(self.c_node.channel(), self.c_id)
                        } else {
                            Action::listen(self.c_node.channel())
                        }
                    }
                    _ => unreachable!("sub-round out of range"),
                }
            }
            Stage::Pair { level } => {
                let ancestor = self.leaf.ancestor_at_level(level - 1);
                if self.is_master() {
                    Action::transmit(ancestor.channel(), 0)
                } else {
                    Action::listen(ancestor.channel())
                }
            }
            Stage::Done => Action::Sleep,
        }
    }

    fn observe(&mut self, _ctx: &RoundContext, feedback: Feedback<u32>, _rng: &mut SmallRng) {
        match self.stage {
            Stage::RootCheck => {
                if feedback.is_collision() {
                    let l_max = self.c_node.level();
                    if l_max == 0 {
                        // A jammed channel can turn the lone root broadcast
                        // into a collision; impossible on a clean channel.
                        self.record_violation("colliding cohorts cannot sit at the root");
                        return;
                    }
                    // More than one cohort: search for the divergence level.
                    self.stats.phases += 1;
                    self.stats.search_rounds_by_phase.push(0);
                    self.enter_search(0, l_max);
                } else if feedback.message().is_none() {
                    // Noise or loss swallowed every master's broadcast.
                    self.record_violation("root check heard silence; a master failed to broadcast");
                } else {
                    // Lone broadcast: one cohort remains and its master won.
                    self.status = if self.is_master() {
                        Status::Leader
                    } else {
                        Status::Inactive
                    };
                    self.stage = Stage::Done;
                }
            }
            Stage::Search(ref mut s) => match s.sub {
                0 | 2 => {
                    s.anc_collision = feedback.is_collision();
                    s.sub += 1;
                }
                1 | 3 => {
                    // Transmitters on the row channel already know the
                    // answer is "collision"; listeners learn it from whether
                    // the row channel stayed silent.
                    let result = s.anc_collision || !feedback.is_silence();
                    if s.sub == 1 {
                        s.check1 = Some(result);
                    } else {
                        s.check2 = Some(result);
                    }
                    s.sub += 1;
                }
                4 => {
                    let s = *s;
                    let check1 = s.check1.unwrap_or(false);
                    let check2 = s.check2.unwrap_or(false);
                    let announced_by_me =
                        self.is_prober(&s) && ((self.c_id == 1 && !check1) || (check1 && !check2));
                    let i = if announced_by_me {
                        if self.c_id == 1 && !check1 {
                            0
                        } else {
                            self.c_id
                        }
                    } else {
                        match feedback.message() {
                            Some(&i) => i,
                            None => {
                                // Faults erased the announcement; exactly one
                                // member should have announced on a clean
                                // channel.
                                self.record_violation(
                                    "announcement round delivered no subrange; \
                                     exactly one member should have announced",
                                );
                                return;
                            }
                        }
                    };
                    self.apply_announcement(s, i);
                }
                _ => unreachable!("sub-round out of range"),
            },
            Stage::Pair { level } => {
                if feedback.is_collision() {
                    // Two cohorts share the level-(ℓ-1) ancestor: merge.
                    if self.leaf.ancestor_at_level(level).is_right_child() {
                        self.c_id += self.c_size;
                    }
                    self.c_size *= 2;
                    self.c_node = self.leaf.ancestor_at_level(level - 1);
                    self.stage = Stage::RootCheck;
                } else if feedback.message().is_none() {
                    // Even this node's own master went unheard.
                    self.record_violation(
                        "pairing round heard silence; own master failed to broadcast",
                    );
                } else {
                    // Lone master: no partner at this level — cohort retires.
                    self.status = Status::Inactive;
                    self.stage = Stage::Done;
                }
            }
            Stage::Done => {}
        }
    }

    fn status(&self) -> Status {
        self.status
    }

    fn phase(&self) -> &'static str {
        if self.violation.is_some() {
            return "le-wedged";
        }
        match self.stage {
            Stage::RootCheck => "le-root-check",
            Stage::Search(_) => "le-split-search",
            Stage::Pair { .. } => "le-pair",
            Stage::Done => "le-done",
        }
    }
}

/// As a [`Phase`], `LeafElection` only ever *terminates* — it is the last
/// step of the paper's pipeline, so there is no completion value to hand
/// on: the node ends as leader or inactive.
impl Phase for LeafElection {
    type Output = ();

    fn act(&mut self, ctx: &RoundContext, rng: &mut SmallRng) -> Action<u32> {
        let action = Protocol::act(self, ctx, rng);
        self.meter.on_act(&action);
        action
    }

    fn observe(&mut self, ctx: &RoundContext, feedback: Feedback<u32>, rng: &mut SmallRng) {
        Protocol::observe(self, ctx, feedback, rng);
    }

    fn outcome(&self) -> Option<PhaseOutcome<()>> {
        match self.status {
            Status::Active => None,
            status => Some(PhaseOutcome::Terminated(status)),
        }
    }

    fn name(&self) -> &'static str {
        "leaf-election"
    }

    fn label(&self) -> &'static str {
        Protocol::phase(self)
    }

    fn collect_stats(&self, out: &mut Vec<PhaseStats>) {
        out.push(self.meter.snapshot("leaf-election"));
    }

    fn invariant_violation(&self) -> Option<&'static str> {
        self.violation
    }
}

impl_phase_telemetry!(LeafElection);

#[cfg(test)]
mod tests {
    use super::*;
    use mac_sim::{Engine, RunReport, SimConfig, StopWhen};

    fn run_ids(c: u32, ids: &[u32]) -> (RunReport, Vec<LeafElection>) {
        let cfg = SimConfig::new(c)
            .stop_when(StopWhen::AllTerminated)
            .max_rounds(100_000);
        let mut exec = Engine::new(cfg);
        for &id in ids {
            exec.add_node(LeafElection::new(c, id));
        }
        let report = exec.run().expect("run succeeds");
        let nodes = exec.iter_nodes().cloned().collect();
        (report, nodes)
    }

    #[test]
    fn elects_exactly_one_leader_for_all_small_id_sets() {
        // Exhaustive over all nonempty subsets of an 8-leaf tree (C = 16).
        for mask in 1u32..(1 << 8) {
            let ids: Vec<u32> = (0..8)
                .filter(|b| mask & (1 << b) != 0)
                .map(|b| b + 1)
                .collect();
            let (report, _) = run_ids(16, &ids);
            assert_eq!(report.leaders.len(), 1, "ids {ids:?}");
            assert!(report.is_solved(), "ids {ids:?}");
            assert!(report.active_remaining.is_empty(), "ids {ids:?}");
        }
    }

    #[test]
    fn single_node_wins_in_one_round() {
        let (report, _) = run_ids(64, &[17]);
        assert_eq!(report.leaders.len(), 1);
        assert_eq!(report.solved_round, Some(0));
    }

    #[test]
    fn deterministic_winner_is_reproducible() {
        let (r1, _) = run_ids(64, &[2, 9, 23, 24]);
        let (r2, _) = run_ids(64, &[2, 9, 23, 24]);
        assert_eq!(r1.leaders, r2.leaders);
        assert_eq!(r1.rounds_executed, r2.rounds_executed);
    }

    #[test]
    fn adjacent_leaves_merge_in_first_phase() {
        // Leaves 1 and 2 share their parent: the first search must find the
        // leaf level, and pairing must merge them into one cohort of 2.
        let (report, nodes) = run_ids(16, &[1, 2]);
        assert_eq!(report.leaders.len(), 1);
        let winner = &nodes[report.leaders[0].0];
        assert_eq!(winner.cohort_size(), 2);
    }

    #[test]
    fn power_of_two_occupancy_coalesces_fully() {
        // All 8 leaves active: cohorts double every phase; the final winner
        // sits in a cohort of 8 and 3 phases of searching happened.
        let ids: Vec<u32> = (1..=8).collect();
        let (report, nodes) = run_ids(16, &ids);
        assert_eq!(report.leaders.len(), 1);
        let winner = &nodes[report.leaders[0].0];
        assert_eq!(winner.cohort_size(), 8);
        assert_eq!(winner.stats().phases, 3);
    }

    #[test]
    fn cohort_ids_stay_distinct_within_cohort() {
        // Property 11: after every run, group surviving nodes by cohort node
        // and check their cIDs form [1..=size].
        let ids: Vec<u32> = (1..=16).collect();
        let (report, nodes) = run_ids(32, &ids);
        assert_eq!(report.leaders.len(), 1);
        let winner = &nodes[report.leaders[0].0];
        // The winning cohort at the end: collect members with same c_node.
        let members: Vec<&LeafElection> = nodes
            .iter()
            .filter(|n| {
                n.cohort_node() == winner.cohort_node() && n.cohort_size() == winner.cohort_size()
            })
            .collect();
        let mut cids: Vec<u32> = members.iter().map(|m| m.cohort_id()).collect();
        cids.sort_unstable();
        let want: Vec<u32> = (1..=winner.cohort_size()).collect();
        assert_eq!(cids, want);
    }

    #[test]
    fn rounds_match_theorem_17_budget() {
        // O(log h * log log x) with h = lg(C/2). Use a generous concrete
        // budget: per phase, searches cost 5*ceil(log_{p+1} h)+2; sum + x.
        for (c, x) in [(64u32, 16u32), (256, 64), (1024, 128), (4096, 256)] {
            let leaves = c / 2;
            let ids: Vec<u32> = (1..=x.min(leaves)).collect();
            let (report, _) = run_ids(c, &ids);
            let h = f64::from(leaves).log2();
            let phases = (f64::from(x)).log2().ceil() + 1.0;
            let mut budget = 0.0;
            for i in 1..=(phases as u32) {
                let p = f64::from(1u32 << (i - 1));
                budget += 5.0 * (h.ln() / (p + 1.0).ln()).ceil().max(1.0) + 2.0;
            }
            budget += 2.0;
            assert!(
                (report.rounds_executed as f64) <= budget,
                "C={c} x={x}: {} rounds > budget {budget}",
                report.rounds_executed
            );
        }
    }

    #[test]
    fn later_phases_search_faster_per_lemma_16() {
        // Bigger cohorts mean higher-arity searches: per-phase search rounds
        // must be non-increasing (up to the +-1 granularity of ceil).
        let ids: Vec<u32> = (1..=128).collect();
        let (report, nodes) = run_ids(1024, &ids);
        assert_eq!(report.leaders.len(), 1);
        let winner = &nodes[report.leaders[0].0];
        let by_phase = &winner.stats().search_rounds_by_phase;
        assert!(
            by_phase.len() >= 4,
            "expected several phases, got {by_phase:?}"
        );
        for w in by_phase.windows(2) {
            assert!(
                w[1] <= w[0] + 5,
                "search rounds grew sharply across phases: {by_phase:?}"
            );
        }
        assert!(
            *by_phase.last().unwrap() <= by_phase[0],
            "last phase should be no slower than the first: {by_phase:?}"
        );
    }

    #[test]
    fn sparse_far_apart_leaves_work() {
        let (report, _) = run_ids(256, &[1, 128]);
        assert_eq!(report.leaders.len(), 1);
    }

    #[test]
    fn tiny_tree_with_two_leaves() {
        // C = 4 gives a 2-leaf tree (height 1).
        let (report, _) = run_ids(4, &[1, 2]);
        assert_eq!(report.leaders.len(), 1);
        assert!(report.is_solved());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_id_beyond_leaves() {
        let _ = LeafElection::new(16, 9); // 8 leaves only
    }

    #[test]
    #[should_panic(expected = "C >= 2")]
    fn rejects_single_channel() {
        let _ = LeafElection::new(1, 1);
    }

    #[test]
    fn jammed_root_collision_parks_with_a_reported_violation() {
        use rand::SeedableRng;
        // C = 2 gives a single-leaf tree: the cohort node *is* the root, so
        // a collision during the root check is impossible on a clean channel
        // — only a jammer can produce it. The node must not panic: it parks,
        // stays non-terminated, and reports the violation for a supervisor.
        let mut node = LeafElection::new(2, 1);
        let ctx = RoundContext {
            round: 0,
            local_round: 0,
            channels: 2,
        };
        let mut rng = rand::rngs::SmallRng::seed_from_u64(0);
        let _ = Protocol::act(&mut node, &ctx, &mut rng);
        Protocol::observe(&mut node, &ctx, Feedback::Collision, &mut rng);
        assert_eq!(
            Phase::invariant_violation(&node),
            Some("colliding cohorts cannot sit at the root")
        );
        assert_eq!(node.status(), Status::Active, "wedged, not terminated");
        assert!(Phase::outcome(&node).is_none());
        assert_eq!(Protocol::phase(&node), "le-wedged");
        // Once parked the node sleeps; further rounds change nothing.
        assert!(matches!(
            Protocol::act(&mut node, &ctx, &mut rng),
            Action::Sleep
        ));
    }

    #[test]
    fn lossy_root_silence_parks_with_a_reported_violation() {
        use rand::SeedableRng;
        // Every master's broadcast swallowed by loss: the root check hears
        // silence, which a clean channel can never deliver.
        let mut node = LeafElection::new(16, 3);
        let ctx = RoundContext {
            round: 0,
            local_round: 0,
            channels: 16,
        };
        let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
        let _ = Protocol::act(&mut node, &ctx, &mut rng);
        Protocol::observe(&mut node, &ctx, Feedback::Silence, &mut rng);
        assert_eq!(
            node.violation(),
            Some("root check heard silence; a master failed to broadcast")
        );
        assert!(Phase::outcome(&node).is_none());
    }

    #[test]
    fn accessors_report_initial_state() {
        let le = LeafElection::new(64, 5);
        assert_eq!(le.cohort_size(), 1);
        assert_eq!(le.cohort_id(), 1);
        assert_eq!(le.cohort_node(), ChannelTree::new(32).leaf(5));
        assert_eq!(le.phase(), "le-root-check");
    }
}
