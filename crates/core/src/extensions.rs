//! Extensions beyond the paper's theorems, grounded in its §6 discussion.
//!
//! The conclusion observes that for *expected* (rather than w.h.p.) time,
//! multiple channels are already known to be extremely powerful: "the best
//! expected time solutions are really fast, reaching O(1) expected
//! complexity with as few as log n channels." This module implements such
//! an algorithm for the collision-detection model so experiment E14 can
//! chart where the expected-time regime takes over from the w.h.p. regime.
//!
//! [`ExpectedConstant`] alternates two-round epochs:
//!
//! 1. **Density-test round** — every active node draws a *geometric* test
//!    channel (`P[j] = 2^{-(j-1)}` over channels `2, 3, …, C'`) and
//!    transmits on it. Channel `j` then carries `Binomial(|A|, 2^{-(j-1)})`
//!    transmitters, so the channel at height `≈ lg |A|` carries `Θ(1)` of
//!    them and some transmitter is **alone** with constant probability —
//!    *whatever `|A|` is*. Strong CD tells that transmitter it was alone;
//!    it becomes a *claimant*.
//! 2. **Claim round** — claimants transmit on the primary channel with
//!    probability 1/2 while everyone else listens. A lone claim solves the
//!    problem; a collision runs the usual CD knock-out among claimants
//!    (listening claimants that hear anything drop their claim).
//!
//! Since each epoch mints `Θ(1)` claimants and resolves collisions
//! geometrically, the expected number of rounds to solve is `O(1)` once
//! `C ≥ lg n + 1` — compared with the `Θ(log log n)`-ish w.h.p.-optimal
//! pipeline. The flip side: its *tail* is worse, which is exactly the
//! expected-vs-w.h.p. trade-off the paper's conclusion points at.

use mac_sim::{Action, ChannelId, Feedback, Protocol, RoundContext, Status};
use rand::rngs::SmallRng;
use rand::Rng;

use crate::phase::{impl_terminal_phase, PhaseMeter};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Step {
    Test,
    Claim,
}

/// The expected-O(1) contention-resolution algorithm sketched above.
///
/// ```
/// use contention::extensions::ExpectedConstant;
/// use mac_sim::{Engine, SimConfig};
///
/// # fn main() -> Result<(), mac_sim::SimError> {
/// let (c, n) = (16u32, 1u64 << 12); // C >= lg n + 1 = 13
/// let mut exec = Engine::new(SimConfig::new(c).seed(3));
/// for _ in 0..500 {
///     exec.add_node(ExpectedConstant::new(c, n));
/// }
/// let report = exec.run()?;
/// assert!(report.rounds_to_solve().unwrap() < 1000);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ExpectedConstant {
    /// Highest *physical* test channel (channels `2..=c_top` are tests).
    c_top: u32,
    /// Highest density level worth testing (`lg n + 2`). When `c_top` is
    /// smaller, the missing levels `c_top..=max_j` are time-multiplexed
    /// onto channel `c_top`, one per epoch — the expected time then
    /// degrades gracefully from `O(1)` toward `O(lg n − lg C)`.
    max_j: u32,
    /// Epoch counter driving the time multiplexing.
    epoch: u64,
    step: Step,
    claimant: bool,
    transmitted: bool,
    status: Status,
    rounds: u64,
    meter: PhaseMeter,
}

impl ExpectedConstant {
    /// Creates a node for `channels` channels and universe size `n`.
    ///
    /// Test channels are capped at `lg n + 2` — more buy nothing, because
    /// `|A| ≤ n` bounds the densities worth testing.
    ///
    /// # Panics
    ///
    /// Panics if `channels < 2` or `n < 2`.
    #[must_use]
    pub fn new(channels: u32, n: u64) -> Self {
        assert!(channels >= 2, "need at least 2 channels, got {channels}");
        assert!(n >= 2, "the model requires n >= 2, got {n}");
        let lg_n = (n as f64).log2().ceil() as u32;
        let max_j = (lg_n + 2).max(2);
        ExpectedConstant {
            c_top: channels.min(max_j).max(2),
            max_j,
            epoch: 0,
            step: Step::Test,
            claimant: false,
            transmitted: false,
            status: Status::Active,
            rounds: 0,
            meter: PhaseMeter::default(),
        }
    }

    /// Number of density-test channels in use.
    #[must_use]
    pub fn test_channels(&self) -> u32 {
        self.c_top - 1
    }

    /// Rounds participated in.
    #[must_use]
    pub fn rounds_run(&self) -> u64 {
        self.rounds
    }
}

impl Protocol for ExpectedConstant {
    type Msg = u32;

    fn act(&mut self, _ctx: &RoundContext, rng: &mut SmallRng) -> Action<u32> {
        self.rounds += 1;
        match self.step {
            Step::Test => {
                let epoch = self.epoch;
                self.epoch += 1;
                if self.claimant {
                    // Claimants sit out density tests and wait to claim.
                    self.transmitted = false;
                    return Action::Sleep;
                }
                // Geometric level choice: halve the population per level.
                let mut level = 2;
                while level < self.max_j && rng.gen_bool(0.5) {
                    level += 1;
                }
                if level < self.c_top {
                    self.transmitted = true;
                    Action::transmit(ChannelId::new(level), 0)
                } else {
                    // Levels the physical band cannot host are rotated onto
                    // the top channel, one per epoch.
                    let span = u64::from(self.max_j - self.c_top) + 1;
                    let hosted = self.c_top + (epoch % span) as u32;
                    if level == hosted {
                        self.transmitted = true;
                        Action::transmit(ChannelId::new(self.c_top), 0)
                    } else {
                        self.transmitted = false;
                        Action::listen(ChannelId::new(self.c_top))
                    }
                }
            }
            Step::Claim => {
                if self.claimant {
                    self.transmitted = rng.gen_bool(0.5);
                    if self.transmitted {
                        return Action::transmit(ChannelId::PRIMARY, 0);
                    }
                }
                self.transmitted = false;
                Action::listen(ChannelId::PRIMARY)
            }
        }
    }

    fn observe(&mut self, _ctx: &RoundContext, feedback: Feedback<u32>, _rng: &mut SmallRng) {
        match self.step {
            Step::Test => {
                if self.transmitted && feedback.message().is_some() {
                    // Alone on a test channel: promoted to claimant.
                    self.claimant = true;
                }
                self.step = Step::Claim;
            }
            Step::Claim => {
                if self.transmitted {
                    if feedback.message().is_some() {
                        self.status = Status::Leader;
                    }
                } else if feedback.message().is_some() {
                    // Someone claimed alone: problem solved, retire.
                    self.status = Status::Inactive;
                } else if self.claimant && feedback.is_collision() {
                    // Lost the claimants' knock-out.
                    self.claimant = false;
                }
                self.step = Step::Test;
            }
        }
    }

    fn status(&self) -> Status {
        self.status
    }

    fn phase(&self) -> &'static str {
        match self.step {
            Step::Test => "xc-test",
            Step::Claim => "xc-claim",
        }
    }
}

impl_terminal_phase!(ExpectedConstant, "expected-constant");

/// Population-size estimation — a classic capability of collision
/// detection, and the tool a deployment uses to *choose* between the
/// regimes measured in E14 (`|A|`-aware protocols need an `|A|` estimate).
///
/// All active nodes sweep transmit probabilities `1, 1/2, 1/4, …` on the
/// primary channel, one per round. Under strong CD every participant —
/// transmitter or listener — observes the same per-round outcome, so all
/// nodes compute the *same* estimate: `2^j` for the first round `j` whose
/// outcome was not a collision (the expected transmitter count crosses 1
/// around `j ≈ lg |A|`). The estimate is within a constant factor of `|A|`
/// with constant probability, and all nodes agree on it by construction.
///
/// ```
/// use contention::extensions::SizeEstimate;
/// use mac_sim::{Engine, SimConfig, StopWhen};
///
/// # fn main() -> Result<(), mac_sim::SimError> {
/// let cfg = SimConfig::new(1).seed(2).stop_when(StopWhen::AllTerminated);
/// let mut exec = Engine::new(cfg);
/// for _ in 0..300 {
///     exec.add_node(SizeEstimate::new(1 << 12));
/// }
/// exec.run()?;
/// let estimate = exec.iter_nodes().next().expect("has nodes").estimate().expect("done");
/// assert!(estimate >= 16 && estimate <= 8192, "estimate {estimate} off for |A| = 300");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SizeEstimate {
    /// Sweep length: `lg n + 1` rounds.
    sweep: u32,
    /// Current sweep position.
    j: u32,
    transmitted: bool,
    estimate: Option<u64>,
}

impl SizeEstimate {
    /// Creates an estimator node for universe size `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    #[must_use]
    pub fn new(n: u64) -> Self {
        assert!(n >= 2, "the model requires n >= 2, got {n}");
        SizeEstimate {
            sweep: (n as f64).log2().ceil() as u32 + 1,
            j: 0,
            transmitted: false,
            estimate: None,
        }
    }

    /// The agreed estimate of `|A|`, once the sweep finished.
    #[must_use]
    pub fn estimate(&self) -> Option<u64> {
        self.estimate
    }
}

impl Protocol for SizeEstimate {
    type Msg = u32;

    fn act(&mut self, _ctx: &RoundContext, rng: &mut SmallRng) -> Action<u32> {
        let p = 0.5f64.powi(self.j as i32);
        self.transmitted = rng.gen_bool(p);
        if self.transmitted {
            Action::transmit(ChannelId::PRIMARY, 0)
        } else {
            Action::listen(ChannelId::PRIMARY)
        }
    }

    fn observe(&mut self, _ctx: &RoundContext, feedback: Feedback<u32>, _rng: &mut SmallRng) {
        // Transmitters and listeners observe the same truth under strong CD,
        // so this decision is consensus by construction.
        if self.estimate.is_none() && !feedback.is_collision() {
            self.estimate = Some(1u64 << self.j);
        }
        self.j += 1;
        if self.j >= self.sweep && self.estimate.is_none() {
            // Degenerate: collisions all the way down (|A| > n?); report
            // the largest tested scale.
            self.estimate = Some(1u64 << (self.sweep - 1));
        }
    }

    fn status(&self) -> Status {
        if self.j >= self.sweep {
            Status::Inactive
        } else {
            Status::Active
        }
    }

    fn phase(&self) -> &'static str {
        "size-estimate"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mac_sim::{Engine, SimConfig, StopWhen};

    fn rounds_to_solve(c: u32, n: u64, active: usize, seed: u64) -> u64 {
        let mut exec = Engine::new(SimConfig::new(c).seed(seed).max_rounds(1_000_000));
        for _ in 0..active {
            exec.add_node(ExpectedConstant::new(c, n));
        }
        exec.run()
            .expect("solves")
            .rounds_to_solve()
            .expect("solved")
    }

    #[test]
    fn solves_across_densities() {
        let (c, n) = (16u32, 1u64 << 12);
        for active in [1usize, 2, 10, 100, 1000, 4000] {
            let r = rounds_to_solve(c, n, active, 7);
            assert!(r < 500, "active={active}: {r} rounds");
        }
    }

    #[test]
    fn expected_rounds_are_small_with_enough_channels() {
        // C = lg n + 2: mean over seeds should be a small constant,
        // independent of |A|.
        let (c, n) = (18u32, 1u64 << 16);
        for active in [1usize, 4, 256, 16384] {
            let mean: f64 = (0..20)
                .map(|s| rounds_to_solve(c, n, active, s) as f64)
                .sum::<f64>()
                / 20.0;
            assert!(
                mean <= 16.0,
                "expected-constant regime broken at |A|={active}: mean {mean}"
            );
        }
    }

    #[test]
    fn single_leader_when_run_to_completion() {
        let cfg = SimConfig::new(16)
            .seed(5)
            .stop_when(StopWhen::AllTerminated)
            .max_rounds(1_000_000);
        let mut exec = Engine::new(cfg);
        for _ in 0..200 {
            exec.add_node(ExpectedConstant::new(16, 1 << 10));
        }
        let report = exec.run().expect("solves");
        assert_eq!(report.leaders.len(), 1);
        assert!(report.active_remaining.is_empty());
    }

    #[test]
    fn test_channel_cap_tracks_n() {
        let node = ExpectedConstant::new(1024, 1 << 10);
        assert_eq!(node.test_channels(), 11); // lg n + 2 - 1
        let node = ExpectedConstant::new(4, 1 << 20);
        assert_eq!(node.test_channels(), 3); // capped by C
    }

    #[test]
    #[should_panic(expected = "at least 2 channels")]
    fn rejects_single_channel() {
        let _ = ExpectedConstant::new(1, 16);
    }

    fn estimates(n: u64, active: usize, seed: u64) -> Vec<u64> {
        let cfg = SimConfig::new(1)
            .seed(seed)
            .stop_when(StopWhen::AllTerminated)
            .max_rounds(1000);
        let mut exec = Engine::new(cfg);
        for _ in 0..active {
            exec.add_node(SizeEstimate::new(n));
        }
        exec.run().expect("sweeps");
        exec.iter_nodes()
            .map(|e| e.estimate().expect("estimated"))
            .collect()
    }

    #[test]
    fn all_nodes_agree_on_the_estimate() {
        for seed in 0..10 {
            let est = estimates(1 << 10, 100, seed);
            assert!(est.windows(2).all(|w| w[0] == w[1]), "seed {seed}: {est:?}");
        }
    }

    #[test]
    fn estimate_tracks_population_in_the_median() {
        // Single estimates are within a constant factor only with constant
        // probability; the median over seeds is a robust check.
        for &(active, lo, hi) in &[(4usize, 1u64, 64u64), (64, 8, 1024), (1024, 128, 16384)] {
            let mut meds: Vec<u64> = (0..15).map(|s| estimates(1 << 14, active, s)[0]).collect();
            meds.sort_unstable();
            let med = meds[meds.len() / 2];
            assert!(
                (lo..=hi).contains(&med),
                "|A|={active}: median estimate {med} outside [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn sweep_length_is_lg_n_plus_one() {
        let cfg = SimConfig::new(1)
            .seed(0)
            .stop_when(StopWhen::AllTerminated)
            .max_rounds(100);
        let mut exec = Engine::new(cfg);
        for _ in 0..10 {
            exec.add_node(SizeEstimate::new(1 << 8));
        }
        let report = exec.run().expect("sweeps");
        assert_eq!(report.rounds_executed, 9); // lg 256 + 1
    }

    #[test]
    #[should_panic(expected = "n >= 2")]
    fn estimator_rejects_tiny_n() {
        let _ = SizeEstimate::new(1);
    }
}
