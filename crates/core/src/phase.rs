//! Composable protocol *phases* — the building blocks of the paper's
//! pipelines, made first-class.
//!
//! The Theorem 4 algorithm is a composition: `Reduce → IdReduction →
//! LeafElection`, with a single-channel fallback when `C` is too small for
//! the multi-channel machinery to pay off. This module turns "a step of
//! such a pipeline" into a value — the [`Phase`] trait — and provides the
//! combinators that express the paper's composition rules directly:
//!
//! * [`AndThen`] — barrier-synchronized sequencing. The paper's steps are
//!   globally synchronized (`Reduce` runs a fixed number of rounds,
//!   `IdReduction` ends for every participant in the same report round), so
//!   a completed phase can hand its typed result to a successor **in the
//!   same round boundary** and every survivor enters the next phase in
//!   lockstep. Built via [`Phase::and_then`].
//! * [`WithFallback`] — the small-`C` branch: run either the primary stack
//!   or a fallback phase, chosen at construction time (the paper picks
//!   [`crate::baselines::CdTournament`] when `C` is constant). Built via
//!   [`Phase::with_fallback`].
//! * [`Repeat`] — run freshly built instances of a phase back to back,
//!   feeding each completion value into the next instance.
//! * [`Bounded`] — a round-budget watchdog that retires a phase which
//!   overstays its welcome. Built via [`Phase::bounded`].
//! * [`Pass`] — the no-op phase; the identity for [`AndThen`].
//!
//! A composed stack runs on the unmodified [`mac_sim::Engine`] through the
//! [`PhaseProtocol`] adapter, which implements [`mac_sim::Protocol`]. Every
//! phase also feeds one telemetry spine: a [`Vec`] of [`PhaseStats`]
//! records (rounds, transmissions, adopted ids — one record per phase the
//! node entered), read uniformly through [`PhaseTelemetry`] by
//! [`crate::session::Session`] and the experiment harness.
//!
//! See `docs/PHASES.md` for the lifecycle contract and a worked example of
//! writing a new phase.
//!
//! ```
//! use contention::baselines::CdTournament;
//! use contention::phase::{Phase, PhaseProtocol, PhaseTelemetry};
//! use contention::Reduce;
//! use mac_sim::{Engine, SimConfig};
//!
//! # fn main() -> Result<(), mac_sim::SimError> {
//! // A hybrid stack the paper never wrote down: knock the field down with
//! // Reduce, then finish on one channel with the id-free tournament.
//! let mut exec = Engine::new(SimConfig::new(1).seed(3));
//! for _ in 0..200 {
//!     let stack = Reduce::new(1 << 12).and_then(|()| CdTournament::new());
//!     exec.add_node(PhaseProtocol::new(stack));
//! }
//! assert!(exec.run()?.is_solved());
//! # Ok(())
//! # }
//! ```

use mac_sim::{Action, Feedback, Protocol, RoundContext, Status};
use rand::rngs::SmallRng;

use crate::wakeup::StaggeredStart;

/// How a phase ended, once it has.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseOutcome<T> {
    /// The whole stack is over for this node: it ends with the given
    /// terminal status. Combinators propagate a termination outward —
    /// nothing downstream of a terminated phase ever runs.
    Terminated(Status),
    /// This phase finished its job and hands `T` to whatever comes next
    /// (for the last phase of a stack, completion retires the node as
    /// [`Status::Inactive`], exactly like a standalone protocol that
    /// finished its step).
    Complete(T),
}

/// One record of the per-phase telemetry spine: what a single phase of a
/// single node did before it finished (or up to now, for the phase the
/// node is currently in).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseStats {
    /// The phase's stable name (e.g. `"reduce"`, `"id-reduction"`,
    /// `"leaf-election"`, `"cd-tournament"`).
    pub name: &'static str,
    /// Rounds this node participated in the phase.
    pub rounds: u64,
    /// Transmissions this node made during the phase.
    pub transmissions: u64,
    /// The unique id the node adopted in this phase, if it is a renaming
    /// phase ([`crate::IdReduction`] sets this).
    pub adopted_id: Option<u32>,
}

/// Round/transmission counters a phase implementation embeds to feed
/// [`PhaseStats`]. Call [`PhaseMeter::on_act`] on every action the phase
/// returns; [`PhaseMeter::snapshot`] produces the spine record.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseMeter {
    rounds: u64,
    transmissions: u64,
}

impl PhaseMeter {
    /// Counts one acted round (and the transmission, if the action is one).
    pub fn on_act(&mut self, action: &Action<u32>) {
        self.rounds += 1;
        if action.is_transmit() {
            self.transmissions += 1;
        }
    }

    /// The spine record for this meter, under the given phase name.
    #[must_use]
    pub fn snapshot(&self, name: &'static str) -> PhaseStats {
        PhaseStats {
            name,
            rounds: self.rounds,
            transmissions: self.transmissions,
            adopted_id: None,
        }
    }

    /// Rounds counted so far.
    #[must_use]
    pub fn rounds(&self) -> u64 {
        self.rounds
    }
}

/// One composable step of a protocol stack.
///
/// A phase mirrors the [`Protocol`] act/observe lifecycle but ends in a
/// typed [`PhaseOutcome`] instead of a bare [`Status`]: *completing* hands
/// a value to the next phase, *terminating* ends the whole stack. The
/// engine never sees a `Phase` directly — stacks run through
/// [`PhaseProtocol`].
///
/// # Contract
///
/// * `act` is only called while [`Phase::outcome`] is `None`; after the
///   outcome is set the phase is never stepped again.
/// * All randomness must come from the provided `rng`; bookkeeping
///   (counters, outcome checks) must not touch it, so that composing
///   phases preserves the RNG stream of the phases themselves.
/// * The outcome may only be set inside `observe` (or at construction, for
///   instant phases like [`Pass`]): combinators hand off at the
///   observe/act round boundary, which is what keeps survivors in
///   lockstep.
pub trait Phase {
    /// The value a completed phase hands to its successor.
    type Output;

    /// Choose this round's action. Mirrors [`Protocol::act`].
    fn act(&mut self, ctx: &RoundContext, rng: &mut SmallRng) -> Action<u32>;

    /// Receive this round's feedback. Mirrors [`Protocol::observe`].
    fn observe(&mut self, ctx: &RoundContext, feedback: Feedback<u32>, rng: &mut SmallRng);

    /// How the phase ended, once it has. `None` while still running.
    fn outcome(&self) -> Option<PhaseOutcome<Self::Output>>;

    /// Stable name identifying the phase in [`PhaseStats`] records. For
    /// combinators: the name of the currently running child.
    fn name(&self) -> &'static str;

    /// Fine-grained label for the engine's per-phase round accounting
    /// (e.g. [`crate::IdReduction`] reports `"id-rename"` / `"id-report"` /
    /// `"id-reduce"` here while its [`Phase::name`] stays
    /// `"id-reduction"`). Defaults to [`Phase::name`].
    fn label(&self) -> &'static str {
        self.name()
    }

    /// Appends this phase's spine records to `out` — one per phase entered,
    /// in the order they ran. Combinators append archived records of
    /// finished children before the current child's.
    fn collect_stats(&self, out: &mut Vec<PhaseStats>);

    /// A phase-reported *invariant violation*: the phase has observed a
    /// state its correctness argument rules out (possible under the fault
    /// layers of [`mac_sim::fault`], which can forge collisions and erase
    /// frames) and cannot make further progress. `None` means healthy.
    ///
    /// The default is `None` — phases are not obliged to self-diagnose.
    /// Combinators forward the currently running child's report, so a
    /// violation anywhere in a stack surfaces at the top, where
    /// [`crate::supervise::Supervised`] treats it as a wedge and restarts
    /// the stack instead of burning the rest of its round slice.
    fn invariant_violation(&self) -> Option<&'static str> {
        None
    }

    /// Barrier-synchronized sequencing: when `self` completes, `next`
    /// builds the successor phase from the completion value, and the
    /// successor starts at the next round boundary — the paper's lockstep
    /// step handoff.
    fn and_then<N>(self, next: N) -> AndThen<Self, N::Phase, N>
    where
        Self: Sized,
        N: NextPhase<Self::Output>,
    {
        AndThen::new(self, next)
    }

    /// Branch selection at construction time: run `self` normally, or
    /// `fallback` instead when `use_fallback` is set (the paper's small-`C`
    /// escape hatch).
    fn with_fallback<Q>(self, use_fallback: bool, fallback: Q) -> WithFallback<Self, Q>
    where
        Self: Sized,
        Q: Phase<Output = Self::Output>,
    {
        if use_fallback {
            WithFallback::fallback(fallback)
        } else {
            WithFallback::primary(self)
        }
    }

    /// Watchdog: give up (terminate [`Status::Inactive`]) if the phase has
    /// not produced an outcome after `max_rounds` acted rounds.
    fn bounded(self, max_rounds: u64) -> Bounded<Self>
    where
        Self: Sized,
    {
        Bounded::new(self, max_rounds)
    }

    /// Adapts the stack into a [`Protocol`] runnable on the engine.
    fn into_protocol(self) -> PhaseProtocol<Self>
    where
        Self: Sized,
    {
        PhaseProtocol::new(self)
    }

    /// Adapts the stack into a protocol *and* wraps it in the §3 wake-up
    /// transform, making it tolerate staggered starts at a ×2 round cost.
    fn staggered(self) -> StaggeredStart<PhaseProtocol<Self>>
    where
        Self: Sized,
    {
        StaggeredStart::new(PhaseProtocol::new(self))
    }
}

/// Builds the successor phase of an [`AndThen`] from the predecessor's
/// completion value.
///
/// Implemented for any `FnMut(I) -> P` closure; implement it on a named
/// struct when the composed stack's type must be nameable (as
/// [`crate::FullAlgorithm`] does for its pipeline).
pub trait NextPhase<I> {
    /// The phase this builder produces.
    type Phase: Phase;

    /// Builds the successor from the predecessor's completion value.
    fn build(&mut self, input: I) -> Self::Phase;
}

impl<I, P: Phase, F: FnMut(I) -> P> NextPhase<I> for F {
    type Phase = P;

    fn build(&mut self, input: I) -> P {
        self(input)
    }
}

/// Which child of a two-stage combinator is currently running.
#[derive(Debug, Clone)]
enum Seq<A, B> {
    First(A),
    Second(B),
}

/// Barrier-synchronized sequential composition of two phases (see
/// [`Phase::and_then`]).
///
/// While the first phase runs, `AndThen` is transparent. When the first
/// phase *completes*, its stats are archived, the builder constructs the
/// second phase from the completion value, and the second phase takes over
/// from the next `act` — no rounds are lost and no RNG is consumed by the
/// handoff, so a chained stack is round-for-round identical to running the
/// phases back to back by hand. If the first phase *terminates*, the
/// second is never built.
#[derive(Debug, Clone)]
pub struct AndThen<A, B, N> {
    seq: Seq<A, B>,
    next: N,
    archived: Vec<PhaseStats>,
    /// Whether the pre-`act` handoff check has run. A completion can only
    /// be pending at `act` time when the first phase was complete *at
    /// construction* (observe-time completions advance inside `observe`),
    /// so after one `act` the check is dead and skipping it keeps the
    /// steady-state path to a single `outcome()` probe per round.
    primed: bool,
}

impl<A, B, N> AndThen<A, B, N>
where
    A: Phase,
    B: Phase,
    N: NextPhase<A::Output, Phase = B>,
{
    /// Sequences `first` before whatever `next` builds from its completion
    /// value. Prefer the [`Phase::and_then`] method.
    #[must_use]
    pub fn new(first: A, next: N) -> Self {
        AndThen {
            seq: Seq::First(first),
            next,
            archived: Vec::new(),
            primed: false,
        }
    }

    /// Whether the handoff has happened (the second phase is running or
    /// finished).
    #[must_use]
    pub fn in_second(&self) -> bool {
        matches!(self.seq, Seq::Second(_))
    }

    /// If the first phase has completed, archive it and build the second.
    ///
    /// Called at both lifecycle edges — after `observe` (the normal
    /// barrier handoff) and before `act` (so instant phases like [`Pass`]
    /// hand off without consuming a round).
    fn advance(&mut self) {
        let handoff = match &self.seq {
            Seq::First(first) => match first.outcome() {
                Some(PhaseOutcome::Complete(value)) => Some(value),
                _ => None,
            },
            Seq::Second(_) => None,
        };
        if let Some(value) = handoff {
            if let Seq::First(first) = &self.seq {
                first.collect_stats(&mut self.archived);
            }
            self.seq = Seq::Second(self.next.build(value));
        }
    }
}

impl<A, B, N> Phase for AndThen<A, B, N>
where
    A: Phase,
    B: Phase,
    N: NextPhase<A::Output, Phase = B>,
{
    type Output = B::Output;

    #[inline]
    fn act(&mut self, ctx: &RoundContext, rng: &mut SmallRng) -> Action<u32> {
        if !self.primed {
            self.advance();
            self.primed = true;
        }
        match &mut self.seq {
            Seq::First(first) => first.act(ctx, rng),
            Seq::Second(second) => second.act(ctx, rng),
        }
    }

    #[inline]
    fn observe(&mut self, ctx: &RoundContext, feedback: Feedback<u32>, rng: &mut SmallRng) {
        match &mut self.seq {
            Seq::First(first) => first.observe(ctx, feedback, rng),
            Seq::Second(second) => second.observe(ctx, feedback, rng),
        }
        self.advance();
    }

    #[inline]
    fn outcome(&self) -> Option<PhaseOutcome<B::Output>> {
        match &self.seq {
            Seq::First(first) => match first.outcome() {
                // A completion that has not advanced yet is not an outcome
                // of the composition: the successor still has to run.
                Some(PhaseOutcome::Terminated(status)) => Some(PhaseOutcome::Terminated(status)),
                _ => None,
            },
            Seq::Second(second) => second.outcome(),
        }
    }

    fn name(&self) -> &'static str {
        match &self.seq {
            Seq::First(first) => first.name(),
            Seq::Second(second) => second.name(),
        }
    }

    fn label(&self) -> &'static str {
        match &self.seq {
            Seq::First(first) => first.label(),
            Seq::Second(second) => second.label(),
        }
    }

    fn collect_stats(&self, out: &mut Vec<PhaseStats>) {
        out.extend_from_slice(&self.archived);
        match &self.seq {
            Seq::First(first) => first.collect_stats(out),
            Seq::Second(second) => second.collect_stats(out),
        }
    }

    fn invariant_violation(&self) -> Option<&'static str> {
        match &self.seq {
            Seq::First(first) => first.invariant_violation(),
            Seq::Second(second) => second.invariant_violation(),
        }
    }
}

#[derive(Debug, Clone)]
enum Arm<P, Q> {
    Primary(P),
    Fallback(Q),
}

/// Construction-time branch between a primary stack and a fallback phase
/// (see [`Phase::with_fallback`]).
///
/// The paper's Theorem 4 pipeline needs `C` above a constant for the
/// multi-channel machinery to beat the `Ω(log n)` single-channel bound;
/// below it, the whole stack is replaced by an optimal single-channel
/// protocol. `WithFallback` holds exactly one of the two arms.
#[derive(Debug, Clone)]
pub struct WithFallback<P, Q> {
    arm: Arm<P, Q>,
}

impl<P, Q> WithFallback<P, Q> {
    /// A stack that runs the primary arm.
    #[must_use]
    pub fn primary(primary: P) -> Self {
        WithFallback {
            arm: Arm::Primary(primary),
        }
    }

    /// A stack that runs the fallback arm.
    #[must_use]
    pub fn fallback(fallback: Q) -> Self {
        WithFallback {
            arm: Arm::Fallback(fallback),
        }
    }

    /// Whether the fallback arm was selected.
    #[must_use]
    pub fn is_fallback(&self) -> bool {
        matches!(self.arm, Arm::Fallback(_))
    }
}

impl<T, P, Q> Phase for WithFallback<P, Q>
where
    P: Phase<Output = T>,
    Q: Phase<Output = T>,
{
    type Output = T;

    #[inline]
    fn act(&mut self, ctx: &RoundContext, rng: &mut SmallRng) -> Action<u32> {
        match &mut self.arm {
            Arm::Primary(primary) => primary.act(ctx, rng),
            Arm::Fallback(fallback) => fallback.act(ctx, rng),
        }
    }

    #[inline]
    fn observe(&mut self, ctx: &RoundContext, feedback: Feedback<u32>, rng: &mut SmallRng) {
        match &mut self.arm {
            Arm::Primary(primary) => primary.observe(ctx, feedback, rng),
            Arm::Fallback(fallback) => fallback.observe(ctx, feedback, rng),
        }
    }

    #[inline]
    fn outcome(&self) -> Option<PhaseOutcome<T>> {
        match &self.arm {
            Arm::Primary(primary) => primary.outcome(),
            Arm::Fallback(fallback) => fallback.outcome(),
        }
    }

    fn name(&self) -> &'static str {
        match &self.arm {
            Arm::Primary(primary) => primary.name(),
            Arm::Fallback(fallback) => fallback.name(),
        }
    }

    fn label(&self) -> &'static str {
        match &self.arm {
            Arm::Primary(primary) => primary.label(),
            Arm::Fallback(fallback) => fallback.label(),
        }
    }

    fn collect_stats(&self, out: &mut Vec<PhaseStats>) {
        match &self.arm {
            Arm::Primary(primary) => primary.collect_stats(out),
            Arm::Fallback(fallback) => fallback.collect_stats(out),
        }
    }

    fn invariant_violation(&self) -> Option<&'static str> {
        match &self.arm {
            Arm::Primary(primary) => primary.invariant_violation(),
            Arm::Fallback(fallback) => fallback.invariant_violation(),
        }
    }
}

/// Runs freshly built instances of a phase back to back, feeding each
/// completion value into the builder for the next instance.
///
/// Unbounded ([`Repeat::new`]), the loop only ends when an instance
/// *terminates*. Bounded ([`Repeat::times`]), the composition completes
/// with the final instance's value after the given number of completions.
#[derive(Debug, Clone)]
pub struct Repeat<P, N> {
    current: P,
    next: N,
    completed: u64,
    limit: Option<u64>,
    archived: Vec<PhaseStats>,
}

impl<P, N> Repeat<P, N>
where
    P: Phase,
    N: NextPhase<P::Output, Phase = P>,
{
    /// Repeats forever: every completion of the current instance seeds a
    /// new instance; only a termination ends the loop.
    #[must_use]
    pub fn new(first: P, next: N) -> Self {
        Repeat {
            current: first,
            next,
            completed: 0,
            limit: None,
            archived: Vec::new(),
        }
    }

    /// Repeats until `times` instances have completed (terminations still
    /// end the loop early). The composition completes with the last
    /// instance's value.
    ///
    /// # Panics
    ///
    /// Panics if `times == 0`.
    #[must_use]
    pub fn times(first: P, next: N, times: u64) -> Self {
        assert!(times >= 1, "Repeat::times needs at least one iteration");
        Repeat {
            current: first,
            next,
            completed: 0,
            limit: Some(times),
            archived: Vec::new(),
        }
    }

    /// Completed instances so far.
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Whether the current instance's completion is the composition's.
    fn is_last(&self) -> bool {
        self.limit.is_some_and(|limit| self.completed + 1 >= limit)
    }

    /// If the current instance completed and the loop continues, archive
    /// it and build the next instance.
    fn advance(&mut self) {
        if self.is_last() {
            return;
        }
        let value = match self.current.outcome() {
            Some(PhaseOutcome::Complete(value)) => value,
            _ => return,
        };
        self.current.collect_stats(&mut self.archived);
        self.completed += 1;
        self.current = self.next.build(value);
    }
}

impl<P, N> Phase for Repeat<P, N>
where
    P: Phase,
    N: NextPhase<P::Output, Phase = P>,
{
    type Output = P::Output;

    fn act(&mut self, ctx: &RoundContext, rng: &mut SmallRng) -> Action<u32> {
        self.advance();
        self.current.act(ctx, rng)
    }

    fn observe(&mut self, ctx: &RoundContext, feedback: Feedback<u32>, rng: &mut SmallRng) {
        self.current.observe(ctx, feedback, rng);
        self.advance();
    }

    fn outcome(&self) -> Option<PhaseOutcome<P::Output>> {
        match self.current.outcome() {
            Some(PhaseOutcome::Terminated(status)) => Some(PhaseOutcome::Terminated(status)),
            Some(PhaseOutcome::Complete(value)) if self.is_last() => {
                Some(PhaseOutcome::Complete(value))
            }
            _ => None,
        }
    }

    fn name(&self) -> &'static str {
        self.current.name()
    }

    fn label(&self) -> &'static str {
        self.current.label()
    }

    fn collect_stats(&self, out: &mut Vec<PhaseStats>) {
        out.extend_from_slice(&self.archived);
        self.current.collect_stats(out);
    }

    fn invariant_violation(&self) -> Option<&'static str> {
        self.current.invariant_violation()
    }
}

/// Round-budget watchdog over a phase (see [`Phase::bounded`]).
///
/// Delegates transparently until the inner phase has acted `max_rounds`
/// times without producing an outcome; from then on the composition is
/// `Terminated(Inactive)` — the node gives up. Inside an [`AndThen`], the
/// give-up ends the whole stack, exactly like any other termination.
#[derive(Debug, Clone)]
pub struct Bounded<P> {
    inner: P,
    budget: u64,
    used: u64,
}

impl<P: Phase> Bounded<P> {
    /// Caps `inner` at `max_rounds` acted rounds.
    ///
    /// # Panics
    ///
    /// Panics if `max_rounds == 0` (the phase could never act).
    #[must_use]
    pub fn new(inner: P, max_rounds: u64) -> Self {
        assert!(max_rounds >= 1, "Bounded needs a positive round budget");
        Bounded {
            inner,
            budget: max_rounds,
            used: 0,
        }
    }

    /// The wrapped phase.
    #[must_use]
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Whether the budget ran out before the inner phase finished.
    #[must_use]
    pub fn expired(&self) -> bool {
        self.used >= self.budget && self.inner.outcome().is_none()
    }
}

impl<P: Phase> Phase for Bounded<P> {
    type Output = P::Output;

    fn act(&mut self, ctx: &RoundContext, rng: &mut SmallRng) -> Action<u32> {
        self.used += 1;
        self.inner.act(ctx, rng)
    }

    fn observe(&mut self, ctx: &RoundContext, feedback: Feedback<u32>, rng: &mut SmallRng) {
        self.inner.observe(ctx, feedback, rng);
    }

    fn outcome(&self) -> Option<PhaseOutcome<P::Output>> {
        match self.inner.outcome() {
            Some(outcome) => Some(outcome),
            None if self.used >= self.budget => Some(PhaseOutcome::Terminated(Status::Inactive)),
            None => None,
        }
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn label(&self) -> &'static str {
        self.inner.label()
    }

    fn collect_stats(&self, out: &mut Vec<PhaseStats>) {
        self.inner.collect_stats(out);
    }

    fn invariant_violation(&self) -> Option<&'static str> {
        self.inner.invariant_violation()
    }
}

/// The no-op phase: complete from the moment it is constructed, carrying a
/// fixed value. The identity element for [`AndThen`] — sequencing a stack
/// with `Pass` on either side leaves its round-for-round behavior
/// unchanged (pinned by the property tests in `tests/phase_props.rs`).
///
/// A single `Pass` adjacent to a real phase hands off instantly; each
/// *additional* consecutive instant phase in a nested chain costs one
/// sleeping round, because a combinator can only advance its own handoff
/// per lifecycle edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pass<T> {
    value: T,
}

impl<T: Clone> Pass<T> {
    /// A phase that immediately completes with `value`.
    #[must_use]
    pub fn new(value: T) -> Self {
        Pass { value }
    }
}

impl<T: Clone> Phase for Pass<T> {
    type Output = T;

    #[inline]
    fn act(&mut self, _ctx: &RoundContext, _rng: &mut SmallRng) -> Action<u32> {
        Action::Sleep
    }

    #[inline]
    fn observe(&mut self, _ctx: &RoundContext, _feedback: Feedback<u32>, _rng: &mut SmallRng) {}

    #[inline]
    fn outcome(&self) -> Option<PhaseOutcome<T>> {
        Some(PhaseOutcome::Complete(self.value.clone()))
    }

    fn name(&self) -> &'static str {
        "pass"
    }

    fn collect_stats(&self, _out: &mut Vec<PhaseStats>) {}
}

/// Adapter that runs any [`Phase`] stack on the engine by implementing
/// [`Protocol`].
///
/// The mapping from phase outcomes to protocol status follows the
/// conventions the standalone step protocols already use: no outcome ⇒
/// [`Status::Active`]; `Terminated(s)` ⇒ `s`; `Complete(_)` ⇒
/// [`Status::Inactive`] (a node whose stack completed without electing
/// itself retires, exactly like a standalone [`crate::Reduce`] survivor).
#[derive(Debug, Clone)]
pub struct PhaseProtocol<P> {
    phase: P,
    /// Cached terminal status, mirroring `phase.outcome()`.
    ///
    /// The engine reads `status()` several times per node per round (the
    /// phase-label scan, the act-loop filter, the all-terminated check),
    /// and on a composed stack every `outcome()` call re-walks the nested
    /// combinator chain. Outcomes only change inside `observe` (or at
    /// construction — lifecycle contract point 2), so caching at those two
    /// points makes `status()` a field read without changing any value the
    /// engine can observe.
    settled: Option<Status>,
}

impl<P: Phase> PhaseProtocol<P> {
    /// Wraps a phase stack. Prefer the [`Phase::into_protocol`] method.
    #[must_use]
    pub fn new(phase: P) -> Self {
        let mut adapter = PhaseProtocol {
            phase,
            settled: None,
        };
        adapter.settle();
        adapter
    }

    /// Refreshes the cached status from the stack's outcome.
    fn settle(&mut self) {
        self.settled = match self.phase.outcome() {
            None => None,
            Some(PhaseOutcome::Terminated(status)) => Some(status),
            Some(PhaseOutcome::Complete(_)) => Some(Status::Inactive),
        };
    }

    /// The wrapped stack.
    #[must_use]
    pub fn inner(&self) -> &P {
        &self.phase
    }

    /// Unwraps the stack.
    #[must_use]
    pub fn into_inner(self) -> P {
        self.phase
    }

    /// Whether the stack has produced an outcome (the node no longer acts).
    #[must_use]
    pub fn is_settled(&self) -> bool {
        self.settled.is_some()
    }

    /// The stack's completion value, if it completed.
    #[must_use]
    pub fn output(&self) -> Option<P::Output> {
        match self.phase.outcome() {
            Some(PhaseOutcome::Complete(value)) => Some(value),
            _ => None,
        }
    }
}

impl<P: Phase> Protocol for PhaseProtocol<P> {
    type Msg = u32;

    #[inline]
    fn act(&mut self, ctx: &RoundContext, rng: &mut SmallRng) -> Action<u32> {
        if self.settled.is_some() {
            return Action::Sleep;
        }
        self.phase.act(ctx, rng)
    }

    #[inline]
    fn observe(&mut self, ctx: &RoundContext, feedback: Feedback<u32>, rng: &mut SmallRng) {
        if self.settled.is_some() {
            return;
        }
        self.phase.observe(ctx, feedback, rng);
        self.settle();
    }

    #[inline]
    fn status(&self) -> Status {
        self.settled.unwrap_or(Status::Active)
    }

    #[inline]
    fn phase(&self) -> &'static str {
        if self.settled.is_some() {
            "done"
        } else {
            self.phase.label()
        }
    }
}

/// Object-safe read access to the per-phase telemetry spine.
///
/// Everything the workspace runs — composed stacks, the pipeline facade,
/// standalone steps, baselines, wake-up-wrapped nodes — implements this,
/// so [`crate::session::Session`] and the experiment harness read phase
/// statistics through one API regardless of which algorithm produced
/// them. Protocols without phase structure report a single record (or
/// none).
pub trait PhaseTelemetry: Protocol<Msg = u32> {
    /// The node's spine: one [`PhaseStats`] record per phase entered, in
    /// execution order.
    fn phase_stats(&self) -> Vec<PhaseStats>;
}

impl<P: PhaseTelemetry + ?Sized> PhaseTelemetry for Box<P> {
    fn phase_stats(&self) -> Vec<PhaseStats> {
        (**self).phase_stats()
    }
}

impl<P: Phase> PhaseTelemetry for PhaseProtocol<P> {
    fn phase_stats(&self) -> Vec<PhaseStats> {
        let mut out = Vec::new();
        self.phase.collect_stats(&mut out);
        out
    }
}

/// Implements [`PhaseTelemetry`] for a type that implements [`Phase`], by
/// collecting its own spine.
macro_rules! impl_phase_telemetry {
    ($ty:ty) => {
        impl crate::phase::PhaseTelemetry for $ty {
            fn phase_stats(&self) -> ::std::vec::Vec<crate::phase::PhaseStats> {
                let mut out = ::std::vec::Vec::new();
                crate::phase::Phase::collect_stats(self, &mut out);
                out
            }
        }
    };
}

/// Implements [`Phase`] (plus [`PhaseTelemetry`]) for a protocol that only
/// ever *terminates* — its [`mac_sim::Protocol::status`] goes straight
/// from active to a terminal state, with no completion value to hand on
/// (all the prior-art baselines are of this shape).
///
/// The type must have a `meter: PhaseMeter` field.
macro_rules! impl_terminal_phase {
    ($ty:ty, $name:literal) => {
        impl crate::phase::Phase for $ty {
            type Output = ();

            fn act(
                &mut self,
                ctx: &mac_sim::RoundContext,
                rng: &mut rand::rngs::SmallRng,
            ) -> mac_sim::Action<u32> {
                let action = mac_sim::Protocol::act(self, ctx, rng);
                self.meter.on_act(&action);
                action
            }

            fn observe(
                &mut self,
                ctx: &mac_sim::RoundContext,
                feedback: mac_sim::Feedback<u32>,
                rng: &mut rand::rngs::SmallRng,
            ) {
                mac_sim::Protocol::observe(self, ctx, feedback, rng);
            }

            fn outcome(&self) -> ::std::option::Option<crate::phase::PhaseOutcome<()>> {
                match mac_sim::Protocol::status(self) {
                    mac_sim::Status::Active => ::std::option::Option::None,
                    status => {
                        ::std::option::Option::Some(crate::phase::PhaseOutcome::Terminated(status))
                    }
                }
            }

            fn name(&self) -> &'static str {
                $name
            }

            fn label(&self) -> &'static str {
                mac_sim::Protocol::phase(self)
            }

            fn collect_stats(&self, out: &mut ::std::vec::Vec<crate::phase::PhaseStats>) {
                out.push(self.meter.snapshot($name));
            }
        }

        crate::phase::impl_phase_telemetry!($ty);
    };
}

pub(crate) use impl_phase_telemetry;
pub(crate) use impl_terminal_phase;

#[cfg(test)]
mod tests {
    use super::*;
    use mac_sim::ChannelId;

    /// A scripted phase for combinator tests: acts `rounds` times, then
    /// completes with `value` (or terminates with `terminal`).
    #[derive(Debug, Clone)]
    struct Scripted {
        rounds_left: u64,
        value: u32,
        terminal: Option<Status>,
        meter: PhaseMeter,
    }

    impl Scripted {
        fn completes(rounds: u64, value: u32) -> Self {
            Scripted {
                rounds_left: rounds,
                value,
                terminal: None,
                meter: PhaseMeter::default(),
            }
        }

        fn terminates(rounds: u64, status: Status) -> Self {
            Scripted {
                rounds_left: rounds,
                value: 0,
                terminal: Some(status),
                meter: PhaseMeter::default(),
            }
        }
    }

    impl Phase for Scripted {
        type Output = u32;

        fn act(&mut self, _ctx: &RoundContext, _rng: &mut SmallRng) -> Action<u32> {
            let action = Action::transmit(ChannelId::PRIMARY, self.value);
            self.meter.on_act(&action);
            action
        }

        fn observe(&mut self, _ctx: &RoundContext, _fb: Feedback<u32>, _rng: &mut SmallRng) {
            self.rounds_left -= 1;
        }

        fn outcome(&self) -> Option<PhaseOutcome<u32>> {
            if self.rounds_left > 0 {
                return None;
            }
            Some(match self.terminal {
                Some(status) => PhaseOutcome::Terminated(status),
                None => PhaseOutcome::Complete(self.value),
            })
        }

        fn name(&self) -> &'static str {
            "scripted"
        }

        fn collect_stats(&self, out: &mut Vec<PhaseStats>) {
            out.push(self.meter.snapshot("scripted"));
        }
    }

    fn ctx() -> RoundContext {
        RoundContext {
            round: 0,
            local_round: 0,
            channels: 1,
        }
    }

    fn rng() -> SmallRng {
        use rand::SeedableRng;
        SmallRng::seed_from_u64(0)
    }

    /// Steps a protocol through `rounds` act/observe rounds with silent
    /// feedback.
    fn step<P: Protocol<Msg = u32>>(node: &mut P, rounds: u64) {
        let (ctx, mut rng) = (ctx(), rng());
        for _ in 0..rounds {
            let _ = node.act(&ctx, &mut rng);
            node.observe(&ctx, Feedback::Silence, &mut rng);
        }
    }

    #[test]
    fn and_then_hands_value_to_builder() {
        let mut seen = None;
        let stack = Scripted::completes(2, 7).and_then(|v: u32| {
            seen = Some(v);
            Scripted::completes(1, v + 1)
        });
        let mut node = PhaseProtocol::new(stack);
        step(&mut node, 2);
        assert_eq!(node.status(), Status::Active, "second phase still runs");
        step(&mut node, 1);
        assert_eq!(node.status(), Status::Inactive);
        assert_eq!(node.output(), Some(8));
        drop(node);
        assert_eq!(seen, Some(7));
    }

    #[test]
    fn and_then_propagates_termination_without_building_second() {
        let stack = Scripted::terminates(1, Status::Leader)
            .and_then(|_: u32| -> Scripted { unreachable!() });
        let mut node = PhaseProtocol::new(stack);
        step(&mut node, 1);
        assert_eq!(node.status(), Status::Leader);
    }

    #[test]
    fn and_then_archives_first_phase_stats() {
        let stack = Scripted::completes(3, 1).and_then(|_| Scripted::completes(2, 2));
        let mut node = PhaseProtocol::new(stack);
        step(&mut node, 5);
        let spine = node.phase_stats();
        assert_eq!(spine.len(), 2);
        assert_eq!(spine[0].rounds, 3);
        assert_eq!(spine[0].transmissions, 3);
        assert_eq!(spine[1].rounds, 2);
    }

    #[test]
    fn pass_prefix_hands_off_without_a_round() {
        let stack = Pass::new(5u32).and_then(|v: u32| Scripted::completes(u64::from(v), v));
        let mut node = PhaseProtocol::new(stack);
        assert_eq!(node.status(), Status::Active);
        step(&mut node, 5);
        assert_eq!(node.status(), Status::Inactive);
        let spine = node.phase_stats();
        assert_eq!(spine.len(), 1, "Pass contributes no record");
        assert_eq!(spine[0].rounds, 5);
    }

    #[test]
    fn with_fallback_selects_arm() {
        let primary: WithFallback<Scripted, Scripted> =
            Scripted::completes(1, 1).with_fallback(false, Scripted::completes(9, 9));
        assert!(!primary.is_fallback());
        let fallback: WithFallback<Scripted, Scripted> =
            Scripted::completes(1, 1).with_fallback(true, Scripted::completes(9, 9));
        assert!(fallback.is_fallback());
        let mut node = PhaseProtocol::new(fallback);
        step(&mut node, 9);
        assert_eq!(node.output(), Some(9));
    }

    #[test]
    fn repeat_times_completes_with_last_value() {
        let looped = Repeat::times(
            Scripted::completes(2, 0),
            |v: u32| Scripted::completes(2, v + 1),
            3,
        );
        let mut node = PhaseProtocol::new(looped);
        step(&mut node, 6);
        assert_eq!(node.status(), Status::Inactive);
        assert_eq!(node.output(), Some(2), "three instances: values 0, 1, 2");
        assert_eq!(node.phase_stats().len(), 3);
    }

    #[test]
    fn repeat_unbounded_ends_only_on_termination() {
        let looped = Repeat::new(Scripted::completes(1, 0), |v: u32| {
            if v >= 2 {
                Scripted::terminates(1, Status::Leader)
            } else {
                Scripted::completes(1, v + 1)
            }
        });
        let mut node = PhaseProtocol::new(looped);
        step(&mut node, 4);
        assert_eq!(node.status(), Status::Leader);
    }

    #[test]
    fn bounded_gives_up_at_budget() {
        let mut node = PhaseProtocol::new(Scripted::completes(10, 1).bounded(3));
        step(&mut node, 3);
        assert_eq!(node.status(), Status::Inactive);
        assert!(node.inner().expired());
        // Settled nodes sleep.
        let (ctx, mut rng) = (ctx(), rng());
        assert!(matches!(node.act(&ctx, &mut rng), Action::Sleep));
    }

    #[test]
    fn bounded_is_transparent_under_budget() {
        let mut node = PhaseProtocol::new(Scripted::completes(2, 4).bounded(10));
        step(&mut node, 2);
        assert_eq!(node.output(), Some(4));
        assert!(!node.inner().expired());
    }

    #[test]
    #[should_panic(expected = "positive round budget")]
    fn bounded_rejects_zero_budget() {
        let _ = Scripted::completes(1, 1).bounded(0);
    }

    #[test]
    fn phase_protocol_reports_done_label_when_settled() {
        let mut node = PhaseProtocol::new(Scripted::completes(1, 1));
        assert_eq!(node.phase(), "scripted");
        step(&mut node, 1);
        assert_eq!(node.phase(), "done");
        assert!(node.is_settled());
    }

    #[test]
    fn meter_counts_rounds_and_transmissions() {
        let mut meter = PhaseMeter::default();
        meter.on_act(&Action::transmit(ChannelId::PRIMARY, 0u32));
        meter.on_act(&Action::<u32>::listen(ChannelId::PRIMARY));
        let record = meter.snapshot("x");
        assert_eq!(record.rounds, 2);
        assert_eq!(record.transmissions, 1);
        assert_eq!(record.adopted_id, None);
        assert_eq!(meter.rounds(), 2);
    }
}
