//! Cohorts as a computing platform — the paper's §6 conjecture, made real.
//!
//! > "We conjecture that this strategy can be combined with a variety of
//! > well-known parallel algorithms to speed up computation in our
//! > distributed model. Even without parallel algorithm simulation,
//! > however, the structure provided by these cohorts still provides a
//! > powerful algorithmic tool…" (§1, Impact; §6)
//!
//! A cohort — `p` nodes with distinct ids from `[p]` and a commonly known
//! channel range — is exactly a CREW PRAM work group: ids are processor
//! ranks and channels are memory cells with broadcast reads. This module
//! simulates the binary-tournament fold (the `crew-pram` crate's
//! [`crew_pram::max::tournament_max`] program) over channels: a cohort
//! aggregates one value per member (max, min, sum, or count) in
//! `⌈lg p⌉ + 1` rounds, ending with every member knowing the result.
//!
//! Round `k` pairs member `i` (1-based, `i ≡ 1 mod 2^{k+1}`) with member
//! `i + 2^k`: the partner transmits its running value on a pair-indexed
//! channel and the anchor folds it in. A final round has member 1 broadcast
//! the aggregate to the whole cohort.

use mac_sim::{Action, ChannelId, Feedback, Protocol, RoundContext, Status};
use rand::rngs::SmallRng;

/// The aggregation operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggregateOp {
    /// Maximum of the members' values.
    Max,
    /// Minimum of the members' values.
    Min,
    /// Sum of the members' values.
    Sum,
    /// Number of members (each contributes 1, values ignored).
    Count,
}

impl AggregateOp {
    fn fold(self, a: i64, b: i64) -> i64 {
        match self {
            AggregateOp::Max => a.max(b),
            AggregateOp::Min => a.min(b),
            AggregateOp::Sum | AggregateOp::Count => a + b,
        }
    }

    fn seed(self, value: i64) -> i64 {
        match self {
            AggregateOp::Count => 1,
            _ => value,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    /// Tournament step `k`.
    Fold { k: u32 },
    /// Member 1 announces the aggregate.
    Announce,
    /// Finished; `result` is available.
    Done,
}

/// A cohort member participating in one aggregation.
///
/// All members must be constructed with the same `(base_channel, p, op)`
/// and distinct `c_id`s covering `1..=p` — exactly the state a
/// [`crate::LeafElection`] cohort ends with (use the cohort node's subtree
/// channels, or any agreed range, as the base).
///
/// ```
/// use contention::cohort_compute::{AggregateOp, CohortAggregate};
/// use mac_sim::{ChannelId, Engine, SimConfig, StopWhen};
///
/// # fn main() -> Result<(), mac_sim::SimError> {
/// let values = [13i64, -4, 99, 7, 22];
/// let p = values.len() as u32;
/// let cfg = SimConfig::new(16).stop_when(StopWhen::AllTerminated);
/// let mut exec = Engine::new(cfg);
/// for (i, &v) in values.iter().enumerate() {
///     exec.add_node(CohortAggregate::new(
///         ChannelId::new(2), p, i as u32 + 1, v, AggregateOp::Max,
///     ));
/// }
/// exec.run()?;
/// for node in exec.iter_nodes() {
///     assert_eq!(node.result(), Some(99));
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CohortAggregate {
    base: ChannelId,
    p: u32,
    c_id: u32,
    op: AggregateOp,
    acc: i64,
    stage: Stage,
    result: Option<i64>,
    rounds: u64,
}

impl CohortAggregate {
    /// Creates a member with cohort id `c_id` (1-based) of a `p`-member
    /// cohort contributing `value`, using channels
    /// `base..base+⌈p/2⌉` for pair exchanges and announcements.
    ///
    /// # Panics
    ///
    /// Panics if `p == 0` or `c_id` is outside `1..=p`.
    #[must_use]
    pub fn new(base: ChannelId, p: u32, c_id: u32, value: i64, op: AggregateOp) -> Self {
        assert!(p >= 1, "cohort must have at least one member");
        assert!((1..=p).contains(&c_id), "cohort id {c_id} outside 1..={p}");
        CohortAggregate {
            base,
            p,
            c_id,
            op,
            acc: op.seed(value),
            stage: if p == 1 {
                Stage::Announce
            } else {
                Stage::Fold { k: 0 }
            },
            result: None,
            rounds: 0,
        }
    }

    /// The aggregate, once the protocol finished.
    #[must_use]
    pub fn result(&self) -> Option<i64> {
        self.result
    }

    /// Rounds this member participated in (`⌈lg p⌉ + 1`).
    #[must_use]
    pub fn rounds_run(&self) -> u64 {
        self.rounds
    }

    /// In fold step `k`: `Some((pair_channel, is_sender))` if this member
    /// participates, `None` if it idles.
    fn fold_role(&self, k: u32) -> Option<(ChannelId, bool)> {
        let stride = 1u64 << k;
        let span = stride * 2;
        let idx = u64::from(self.c_id - 1);
        let (anchor, offset) = (idx / span * span, idx % span);
        let pair_channel = ChannelId::new(self.base.get() + (idx / span) as u32);
        if offset == 0 {
            // Anchor: listens if a partner exists.
            let partner = anchor + stride;
            (partner < u64::from(self.p)).then_some((pair_channel, false))
        } else if offset == stride {
            Some((pair_channel, true))
        } else {
            None
        }
    }
}

impl Protocol for CohortAggregate {
    type Msg = i64;

    fn act(&mut self, _ctx: &RoundContext, _rng: &mut SmallRng) -> Action<i64> {
        self.rounds += 1;
        match self.stage {
            Stage::Fold { k } => match self.fold_role(k) {
                Some((channel, true)) => Action::transmit(channel, self.acc),
                Some((channel, false)) => Action::listen(channel),
                None => Action::Sleep,
            },
            Stage::Announce => {
                if self.c_id == 1 {
                    Action::transmit(self.base, self.acc)
                } else {
                    Action::listen(self.base)
                }
            }
            Stage::Done => Action::Sleep,
        }
    }

    fn observe(&mut self, _ctx: &RoundContext, feedback: Feedback<i64>, _rng: &mut SmallRng) {
        match self.stage {
            Stage::Fold { k } => {
                if let Some((_, is_sender)) = self.fold_role(k) {
                    if !is_sender {
                        match feedback.message() {
                            Some(&v) => self.acc = self.op.fold(self.acc, v),
                            None => debug_assert!(false, "anchor heard {feedback:?}"),
                        }
                    } else {
                        // Senders have delivered their contribution and only
                        // relay from here on; they wait for the announcement.
                    }
                }
                let next_k = k + 1;
                self.stage = if 1u64 << next_k >= u64::from(self.p) {
                    Stage::Announce
                } else {
                    Stage::Fold { k: next_k }
                };
            }
            Stage::Announce => {
                if self.c_id == 1 {
                    self.result = Some(self.acc);
                } else {
                    match feedback.message() {
                        Some(&v) => self.result = Some(v),
                        None => debug_assert!(false, "member heard {feedback:?} in announce"),
                    }
                }
                self.stage = Stage::Done;
            }
            Stage::Done => {}
        }
    }

    fn status(&self) -> Status {
        if self.result.is_some() {
            // Aggregation is a service computation, not a leader election:
            // everyone retires as a non-leader when done.
            Status::Inactive
        } else {
            Status::Active
        }
    }

    fn phase(&self) -> &'static str {
        match self.stage {
            Stage::Fold { .. } => "cohort-fold",
            Stage::Announce => "cohort-announce",
            Stage::Done => "done",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mac_sim::{Engine, SimConfig, StopWhen};

    fn run(values: &[i64], op: AggregateOp) -> (Vec<Option<i64>>, u64) {
        let p = values.len() as u32;
        let cfg = SimConfig::new(64)
            .stop_when(StopWhen::AllTerminated)
            .max_rounds(1000);
        let mut exec = Engine::new(cfg);
        for (i, &v) in values.iter().enumerate() {
            exec.add_node(CohortAggregate::new(
                ChannelId::new(2),
                p,
                i as u32 + 1,
                v,
                op,
            ));
        }
        let report = exec.run().expect("aggregates");
        let results = exec.iter_nodes().map(CohortAggregate::result).collect();
        (results, report.rounds_executed)
    }

    #[test]
    fn max_agrees_with_pram_tournament_for_all_sizes() {
        for p in 1..=33usize {
            let values: Vec<i64> = (0..p as i64).map(|i| (i * 31) % 67 - 20).collect();
            let (results, rounds) = run(&values, AggregateOp::Max);
            let pram = crew_pram::max::tournament_max(&values).expect("pram runs");
            for r in &results {
                assert_eq!(*r, Some(pram.max), "p={p}");
            }
            // lg p fold rounds + 1 announce round.
            let budget = (p as f64).log2().ceil() as u64 + 1;
            assert!(rounds <= budget, "p={p}: {rounds} > {budget}");
        }
    }

    #[test]
    fn sum_and_count_and_min() {
        let values = [5i64, -3, 10, 2, 2, 7];
        let (results, _) = run(&values, AggregateOp::Sum);
        assert!(results.iter().all(|r| *r == Some(23)));
        let (results, _) = run(&values, AggregateOp::Count);
        assert!(results.iter().all(|r| *r == Some(6)));
        let (results, _) = run(&values, AggregateOp::Min);
        assert!(results.iter().all(|r| *r == Some(-3)));
    }

    #[test]
    fn singleton_cohort_is_one_round() {
        let (results, rounds) = run(&[42], AggregateOp::Max);
        assert_eq!(results, vec![Some(42)]);
        assert_eq!(rounds, 1);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn rejects_bad_cohort_id() {
        let _ = CohortAggregate::new(ChannelId::new(2), 4, 5, 0, AggregateOp::Max);
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn rejects_empty_cohort() {
        let _ = CohortAggregate::new(ChannelId::new(2), 0, 1, 0, AggregateOp::Max);
    }

    #[test]
    fn two_cohorts_on_disjoint_bases_do_not_interfere() {
        let cfg = SimConfig::new(64)
            .stop_when(StopWhen::AllTerminated)
            .max_rounds(1000);
        let mut exec = Engine::new(cfg);
        for (i, &v) in [1i64, 9, 4].iter().enumerate() {
            exec.add_node(CohortAggregate::new(
                ChannelId::new(2),
                3,
                i as u32 + 1,
                v,
                AggregateOp::Max,
            ));
        }
        for (i, &v) in [100i64, 50].iter().enumerate() {
            exec.add_node(CohortAggregate::new(
                ChannelId::new(30),
                2,
                i as u32 + 1,
                v,
                AggregateOp::Max,
            ));
        }
        exec.run().expect("aggregates");
        let results: Vec<Option<i64>> = exec.iter_nodes().map(CohortAggregate::result).collect();
        assert_eq!(
            results,
            vec![Some(9), Some(9), Some(9), Some(100), Some(100)]
        );
    }
}
