//! Multi-channel contention resolution **without** collision detection:
//! `O(log² n / C + log n)` rounds w.h.p. — the bound of Daum, Gilbert,
//! Kuhn and Newport (PODC 2012), proved tight by Newport (2014).
//!
//! This is a *faithful-shape simplification* of the original algorithm (the
//! substitution is documented in DESIGN.md §4): the point of the baseline
//! is the `log² n / C + log n` envelope that experiment E9 compares
//! against, not the original's constants.
//!
//! Structure — rounds alternate between two jobs:
//!
//! * **Spread rounds** (even): each active node picks a uniform channel
//!   from `[C]` and transmits with a decay probability; crucially, the
//!   probability is indexed by *channel and sweep position*, so each round
//!   tests `C` different decay probabilities in parallel — compressing the
//!   `Θ(log n)`-long decay sweep into `⌈log n / C⌉` rounds. A node that
//!   listens and hears a lone message retires (somebody beat it), which
//!   drives the active count down by a constant factor per sweep.
//! * **Verify rounds** (odd): a plain single-channel decay round on the
//!   primary channel, which converts "few actives remain" into the lone
//!   primary-channel transmission that actually solves the problem.
//!
//! The spread part contributes `O(log² n / C)` and the verify part
//! `O(log n)`, matching the Daum et al. envelope.

use mac_sim::{Action, ChannelId, Feedback, Protocol, RoundContext, Status};
use rand::rngs::SmallRng;
use rand::Rng;

use crate::phase::{impl_terminal_phase, PhaseMeter};

/// The multi-channel no-collision-detection baseline.
///
/// ```
/// use contention::baselines::MultiChannelNoCd;
/// use mac_sim::{CdMode, Engine, SimConfig};
///
/// # fn main() -> Result<(), mac_sim::SimError> {
/// let c = 16;
/// let cfg = SimConfig::new(c).seed(9).cd_mode(CdMode::None);
/// let mut exec = Engine::new(cfg);
/// for _ in 0..200 {
///     exec.add_node(MultiChannelNoCd::new(c, 1 << 10));
/// }
/// assert!(exec.run()?.is_solved());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MultiChannelNoCd {
    channels: u32,
    /// Decay cycle length `⌈lg n⌉`.
    cycle: u64,
    /// Local round counter.
    round: u64,
    transmitted: bool,
    status: Status,
    meter: PhaseMeter,
}

impl MultiChannelNoCd {
    /// Creates a node for `channels` channels and `n` possible nodes.
    ///
    /// # Panics
    ///
    /// Panics if `channels < 1` or `n < 2`.
    #[must_use]
    pub fn new(channels: u32, n: u64) -> Self {
        assert!(channels >= 1, "the model requires C >= 1");
        assert!(n >= 2, "the model requires n >= 2, got {n}");
        MultiChannelNoCd {
            channels,
            cycle: (n as f64).log2().ceil() as u64,
            round: 0,
            transmitted: false,
            status: Status::Active,
            meter: PhaseMeter::default(),
        }
    }

    /// The decay exponent tested on channel `ch` (1-based) in spread round
    /// number `sweep_round`: sweeps walk all `cycle` exponents in blocks of
    /// `C` per round.
    fn spread_exponent(&self, sweep_round: u64, ch: u32) -> u32 {
        let pos = (sweep_round * u64::from(self.channels) + u64::from(ch - 1)) % self.cycle;
        pos as u32 + 1
    }
}

impl Protocol for MultiChannelNoCd {
    type Msg = u32;

    fn act(&mut self, _ctx: &RoundContext, rng: &mut SmallRng) -> Action<u32> {
        let r = self.round;
        self.round += 1;
        if r.is_multiple_of(2) {
            // Spread round: test C decay probabilities in parallel.
            let ch = rng.gen_range(1..=self.channels);
            let j = self.spread_exponent(r / 2, ch);
            self.transmitted = rng.gen_bool(0.5f64.powi(j as i32));
            if self.transmitted {
                Action::transmit(ChannelId::new(ch), 0)
            } else {
                Action::listen(ChannelId::new(ch))
            }
        } else {
            // Verify round: plain decay on the primary channel.
            let j = ((r / 2) % self.cycle) as u32 + 1;
            self.transmitted = rng.gen_bool(0.5f64.powi(j as i32));
            if self.transmitted {
                Action::transmit(ChannelId::PRIMARY, 0)
            } else {
                Action::listen(ChannelId::PRIMARY)
            }
        }
    }

    fn observe(&mut self, _ctx: &RoundContext, feedback: Feedback<u32>, _rng: &mut SmallRng) {
        // No collision detection: the only usable signal is a lone message,
        // which tells a listener that somebody else won this channel.
        if !self.transmitted && feedback.message().is_some() {
            self.status = Status::Inactive;
        }
    }

    fn status(&self) -> Status {
        self.status
    }

    fn phase(&self) -> &'static str {
        if self.round % 2 == 1 {
            "nocd-spread"
        } else {
            "nocd-verify"
        }
    }
}

impl_terminal_phase!(MultiChannelNoCd, "multichannel-no-cd");

#[cfg(test)]
mod tests {
    use super::*;
    use mac_sim::{CdMode, Engine, SimConfig};

    fn rounds_to_solve(c: u32, n: u64, active: usize, seed: u64) -> u64 {
        let cfg = SimConfig::new(c)
            .seed(seed)
            .cd_mode(CdMode::None)
            .max_rounds(2_000_000);
        let mut exec = Engine::new(cfg);
        for _ in 0..active {
            exec.add_node(MultiChannelNoCd::new(c, n));
        }
        exec.run().expect("run succeeds").rounds_to_solve().unwrap()
    }

    #[test]
    fn solves_across_channel_counts() {
        for c in [1u32, 4, 16, 64] {
            let r = rounds_to_solve(c, 1 << 10, 512, 3);
            assert!(r < 20_000, "C={c}: {r} rounds");
        }
    }

    #[test]
    fn more_channels_help_when_log_squared_dominates() {
        // Average over seeds; with n = 2^14 and many actives, C = 64 should
        // beat C = 1 clearly.
        let mean = |c: u32| -> f64 {
            (0..8)
                .map(|s| rounds_to_solve(c, 1 << 14, 4096, s) as f64)
                .sum::<f64>()
                / 8.0
        };
        let one = mean(1);
        let many = mean(64);
        assert!(many < one, "C=64 ({many}) should beat C=1 ({one})");
    }

    #[test]
    fn lone_node_still_solves() {
        let r = rounds_to_solve(16, 1 << 10, 1, 0);
        assert!(r < 2_000, "lone node took {r} rounds");
    }

    #[test]
    fn spread_exponents_cover_the_cycle() {
        let node = MultiChannelNoCd::new(4, 256); // cycle = 8
        let mut seen = std::collections::HashSet::new();
        for sweep in 0..2 {
            for ch in 1..=4 {
                seen.insert(node.spread_exponent(sweep, ch));
            }
        }
        assert_eq!(
            seen.len(),
            8,
            "two sweeps of 4 channels cover all 8 exponents"
        );
    }

    #[test]
    #[should_panic(expected = "C >= 1")]
    fn rejects_zero_channels() {
        let _ = MultiChannelNoCd::new(0, 16);
    }
}
