//! Prior-art baselines the paper compares against (§2, "Related Work").
//!
//! | Baseline | Model | Bound | Source |
//! |---|---|---|---|
//! | [`BinaryDescent`] | 1 channel, collision detection, ids in `[n]` | `O(log n)`, probability 1 | classic (Hayes/Capetanakis-style; §2 of the paper) |
//! | [`TreeSplit`] | 1 channel, collision detection, ids in `[n]` | first slot in `O(log n)`; *all* `k` contenders served in `O(k + k·log(n/k))` | Capetanakis tree algorithm (the paper's refs \[9, 13\] lineage) |
//! | [`CdTournament`] | 1 channel, collision detection, no ids | `O(log n)` w.h.p. | folklore coin-flip knock-out |
//! | [`Willard`] | 1 channel, collision detection, no ids | **expected** `O(log log n)` | Willard 1986 — the paper's ref \[5\] |
//! | [`Decay`] | 1 channel, **no** collision detection | `O(log² n)` w.h.p. | Jurdziński–Stachowiak 2002 shape |
//! | [`MultiChannelNoCd`] | `C` channels, **no** collision detection | `O(log² n / C + log n)` w.h.p. | Daum–Gilbert–Kuhn–Newport 2012 shape (simplified; see DESIGN.md) |
//!
//! Before this paper, the best known bound for *multiple channels with
//! collision detection* was simply the single-channel `O(log n)` algorithm —
//! which is why [`BinaryDescent`] is the headline comparator in experiment
//! E9.

mod binary_descent;
mod cd_tournament;
mod decay;
mod multichannel_nocd;
mod tree_split;
mod willard;

pub use binary_descent::BinaryDescent;
pub use cd_tournament::CdTournament;
pub use decay::Decay;
pub use multichannel_nocd::MultiChannelNoCd;
pub use tree_split::TreeSplit;
pub use willard::Willard;
