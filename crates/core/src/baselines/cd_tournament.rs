//! Coin-flip knock-out on a single channel with collision detection.
//!
//! Every round, each active node flips a fair coin: heads → transmit on the
//! primary channel, tails → listen. A lone transmitter hears its own message
//! and wins; a listener that hears anything gets knocked out; rounds where
//! everyone transmitted (collision) or everyone listened (silence) change
//! nothing. Each effective round halves the contenders in expectation, so
//! the protocol finishes in `O(log n)` rounds w.h.p. — without requiring
//! node ids.
//!
//! The paper's general algorithm uses this as its small-`C` fallback
//! (`C = O(1)` makes the lower bound `Ω(log n)`, which this matches).

use mac_sim::{Action, ChannelId, Feedback, Protocol, RoundContext, Status};
use rand::rngs::SmallRng;
use rand::Rng;

use crate::phase::{impl_terminal_phase, PhaseMeter};

/// The id-free single-channel collision-detection knock-out.
///
/// ```
/// use contention::baselines::CdTournament;
/// use mac_sim::{Engine, SimConfig};
///
/// # fn main() -> Result<(), mac_sim::SimError> {
/// let mut exec = Engine::new(SimConfig::new(1).seed(5));
/// for _ in 0..100 {
///     exec.add_node(CdTournament::new());
/// }
/// assert!(exec.run()?.is_solved());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct CdTournament {
    transmitted: bool,
    status: Status,
    rounds: u64,
    meter: PhaseMeter,
}

impl CdTournament {
    /// Creates a tournament node.
    #[must_use]
    pub fn new() -> Self {
        CdTournament::default()
    }

    /// Rounds participated in.
    #[must_use]
    pub fn rounds_run(&self) -> u64 {
        self.rounds
    }
}

impl Protocol for CdTournament {
    type Msg = u32;

    fn act(&mut self, _ctx: &RoundContext, rng: &mut SmallRng) -> Action<u32> {
        self.rounds += 1;
        self.transmitted = rng.gen_bool(0.5);
        if self.transmitted {
            Action::transmit(ChannelId::PRIMARY, 0)
        } else {
            Action::listen(ChannelId::PRIMARY)
        }
    }

    fn observe(&mut self, _ctx: &RoundContext, feedback: Feedback<u32>, _rng: &mut SmallRng) {
        if self.transmitted {
            if feedback.message().is_some() {
                self.status = Status::Leader;
            }
        } else if !feedback.is_silence() {
            self.status = Status::Inactive;
        }
    }

    fn status(&self) -> Status {
        self.status
    }

    fn phase(&self) -> &'static str {
        "cd-tournament"
    }
}

impl_terminal_phase!(CdTournament, "cd-tournament");

#[cfg(test)]
mod tests {
    use super::*;
    use mac_sim::{Engine, SimConfig, StopWhen};

    #[test]
    fn elects_exactly_one_leader() {
        for seed in 0..30 {
            let cfg = SimConfig::new(1)
                .seed(seed)
                .stop_when(StopWhen::AllTerminated)
                .max_rounds(10_000);
            let mut exec = Engine::new(cfg);
            for _ in 0..64 {
                exec.add_node(CdTournament::new());
            }
            let report = exec.run().expect("run succeeds");
            assert_eq!(report.leaders.len(), 1, "seed {seed}");
            assert!(report.is_solved());
        }
    }

    #[test]
    fn rounds_are_logarithmic() {
        // 2^k contenders should finish within ~8*lg(n)+20 rounds w.h.p.
        for (n, cap) in [(16u64, 60u64), (256, 90), (4096, 130)] {
            for seed in 0..10 {
                let cfg = SimConfig::new(1).seed(seed).max_rounds(100_000);
                let mut exec = Engine::new(cfg);
                for _ in 0..n {
                    exec.add_node(CdTournament::new());
                }
                let report = exec.run().expect("run succeeds");
                let rounds = report.rounds_to_solve().unwrap();
                assert!(rounds <= cap, "n={n} seed={seed}: {rounds} > {cap}");
            }
        }
    }

    #[test]
    fn lone_node_wins_quickly() {
        let cfg = SimConfig::new(1).seed(0).max_rounds(200);
        let mut exec = Engine::new(cfg);
        exec.add_node(CdTournament::new());
        let report = exec.run().expect("run succeeds");
        assert!(report.rounds_to_solve().unwrap() <= 64);
    }
}
