//! Willard's log-logarithmic selection protocol (reference \[5\] of the
//! paper: "Log-logarithmic selection resolution protocols in a multiple
//! access channel", SIAM J. Comput. 1986).
//!
//! On a *single* channel with strong collision detection, the transmit
//! probability `2^{-j}` induces a monotone signal in the exponent `j`:
//! too-small `j` (relative to `lg |A|`) gives collisions, too-large gives
//! silence, and near `lg |A|` a lone message appears with constant
//! probability. Willard's insight: *binary-search the exponent* — each
//! probe costs one round, so homing in on `j* ≈ lg |A|` costs
//! `O(lg lg n)` rounds, after which a constant expected number of probes
//! at `j*` produces the lone transmission.
//!
//! The probes are random, so a single binary search can land slightly off;
//! the implementation follows the standard robustification: after the
//! search converges, cycle probes over a small window around the landing
//! exponent, restarting the search if a full window stays fruitless. The
//! expected time is `O(log log n)`; the *w.h.p.* time is `O(log n)`-ish —
//! exactly the expected-vs-w.h.p. gap the paper's §6 discusses, and the
//! reason this classic does not supersede the paper's w.h.p.-optimal
//! algorithm.

use mac_sim::{Action, ChannelId, Feedback, Protocol, RoundContext, Status};
use rand::rngs::SmallRng;
use rand::Rng;

use crate::phase::{impl_terminal_phase, PhaseMeter};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    /// Binary search over the exponent interval `[lo, hi]`.
    Search { lo: u32, hi: u32 },
    /// Cycling probes around the landing exponent.
    Exploit { center: u32, step: u32 },
}

/// Willard's expected-`O(log log n)` single-channel protocol.
///
/// ```
/// use contention::baselines::Willard;
/// use mac_sim::{Engine, SimConfig};
///
/// # fn main() -> Result<(), mac_sim::SimError> {
/// let mut exec = Engine::new(SimConfig::new(1).seed(5));
/// for _ in 0..500 {
///     exec.add_node(Willard::new(1 << 16));
/// }
/// assert!(exec.run()?.is_solved());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Willard {
    /// Largest exponent worth testing (`⌈lg n⌉`).
    max_exp: u32,
    stage: Stage,
    transmitted: bool,
    status: Status,
    rounds: u64,
    meter: PhaseMeter,
}

impl Willard {
    /// Creates a node for universe size `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    #[must_use]
    pub fn new(n: u64) -> Self {
        assert!(n >= 2, "the model requires n >= 2, got {n}");
        let max_exp = (n as f64).log2().ceil() as u32;
        Willard {
            max_exp,
            stage: Stage::Search { lo: 0, hi: max_exp },
            transmitted: false,
            status: Status::Active,
            rounds: 0,
            meter: PhaseMeter::default(),
        }
    }

    /// Rounds participated in.
    #[must_use]
    pub fn rounds_run(&self) -> u64 {
        self.rounds
    }

    /// The exponent probed in the current round.
    fn current_exponent(&self) -> u32 {
        match self.stage {
            Stage::Search { lo, hi } => (lo + hi) / 2,
            Stage::Exploit { center, step } => {
                // Cycle center, center-1, center+1, center-2, ... clamped.
                let delta = step.div_ceil(2);
                let exp = if step % 2 == 1 {
                    center.saturating_sub(delta)
                } else {
                    center + delta
                };
                exp.min(self.max_exp)
            }
        }
    }
}

impl Protocol for Willard {
    type Msg = u32;

    fn act(&mut self, _ctx: &RoundContext, rng: &mut SmallRng) -> Action<u32> {
        self.rounds += 1;
        let j = self.current_exponent();
        self.transmitted = rng.gen_bool(0.5f64.powi(j as i32));
        if self.transmitted {
            Action::transmit(ChannelId::PRIMARY, 0)
        } else {
            Action::listen(ChannelId::PRIMARY)
        }
    }

    fn observe(&mut self, _ctx: &RoundContext, feedback: Feedback<u32>, _rng: &mut SmallRng) {
        // Every node observes the same outcome (strong CD), so all nodes'
        // stage machines stay in lock-step.
        if feedback.message().is_some() {
            self.status = if self.transmitted {
                Status::Leader
            } else {
                Status::Inactive
            };
            return;
        }
        match self.stage {
            Stage::Search { lo, hi } => {
                let mid = (lo + hi) / 2;
                let (nlo, nhi) = if feedback.is_collision() {
                    // Too many transmitters: need a smaller probability.
                    (mid.saturating_add(1).min(self.max_exp), hi.max(mid + 1))
                } else {
                    // Silence: probability too small.
                    (lo, mid.saturating_sub(1).max(lo))
                };
                self.stage = if nlo >= nhi {
                    Stage::Exploit {
                        center: nhi,
                        step: 0,
                    }
                } else {
                    Stage::Search { lo: nlo, hi: nhi }
                };
            }
            Stage::Exploit { center, step } => {
                // Widen the probe window; after a fruitless full sweep of
                // ±3 around the center, restart the search (the estimate
                // was off — rare, but the race is random).
                self.stage = if step >= 6 {
                    Stage::Search {
                        lo: 0,
                        hi: self.max_exp,
                    }
                } else {
                    Stage::Exploit {
                        center,
                        step: step + 1,
                    }
                };
            }
        }
    }

    fn status(&self) -> Status {
        self.status
    }

    fn phase(&self) -> &'static str {
        match self.stage {
            Stage::Search { .. } => "willard-search",
            Stage::Exploit { .. } => "willard-exploit",
        }
    }
}

impl_terminal_phase!(Willard, "willard");

#[cfg(test)]
mod tests {
    use super::*;
    use mac_sim::{Engine, SimConfig, StopWhen};

    fn rounds_to_solve(n: u64, active: usize, seed: u64) -> u64 {
        let mut exec = Engine::new(SimConfig::new(1).seed(seed).max_rounds(1_000_000));
        for _ in 0..active {
            exec.add_node(Willard::new(n));
        }
        exec.run()
            .expect("solves")
            .rounds_to_solve()
            .expect("solved")
    }

    #[test]
    fn solves_across_densities() {
        let n = 1u64 << 16;
        for active in [1usize, 2, 16, 256, 4096, 65536] {
            let r = rounds_to_solve(n, active, 3);
            assert!(r < 2_000, "active={active}: {r} rounds");
        }
    }

    #[test]
    fn expected_rounds_are_loglog_scale() {
        // lg lg n = 5 at n = 2^32... use n = 2^16 (lg lg = 4): means should
        // sit well under lg n = 16.
        let n = 1u64 << 16;
        for active in [8usize, 512, 8192] {
            let mean: f64 = (0..25)
                .map(|s| rounds_to_solve(n, active, s) as f64)
                .sum::<f64>()
                / 25.0;
            assert!(
                mean <= 14.0,
                "|A|={active}: mean {mean} not log-logarithmic"
            );
        }
    }

    #[test]
    fn beats_the_tournament_in_expectation_when_dense() {
        use crate::baselines::CdTournament;
        let n = 1u64 << 16;
        let active = 4096usize;
        let willard: f64 = (0..15)
            .map(|s| rounds_to_solve(n, active, s) as f64)
            .sum::<f64>()
            / 15.0;
        let tournament: f64 = (0..15)
            .map(|s| {
                let mut exec = Engine::new(SimConfig::new(1).seed(s).max_rounds(1_000_000));
                for _ in 0..active {
                    exec.add_node(CdTournament::new());
                }
                exec.run()
                    .expect("solves")
                    .rounds_to_solve()
                    .expect("solved") as f64
            })
            .sum::<f64>()
            / 15.0;
        assert!(
            willard < tournament,
            "Willard ({willard}) should beat the lg|A| tournament ({tournament})"
        );
    }

    #[test]
    fn all_nodes_agree_and_terminate() {
        let cfg = SimConfig::new(1)
            .seed(9)
            .stop_when(StopWhen::AllTerminated)
            .max_rounds(1_000_000);
        let mut exec = Engine::new(cfg);
        for _ in 0..200 {
            exec.add_node(Willard::new(1 << 12));
        }
        let report = exec.run().expect("terminates");
        assert_eq!(report.leaders.len(), 1);
        assert!(report.active_remaining.is_empty());
    }

    #[test]
    #[should_panic(expected = "n >= 2")]
    fn rejects_tiny_n() {
        let _ = Willard::new(1);
    }
}
