//! The classic tree-splitting conflict-resolution protocol
//! (Capetanakis / Tsybakov–Mikhailov / Hayes, late 1970s — the lineage
//! behind the paper's references \[9, 13\]).
//!
//! A depth-first search over the id space on a single channel with
//! collision detection: the current interval's members transmit;
//! *silence* discards the interval, a *message* serves its lone member,
//! and a *collision* splits it in two. Because every node observes every
//! round's global outcome, all nodes maintain identical DFS stacks without
//! any coordination.
//!
//! Two readings of the same run:
//!
//! * **one-shot contention resolution** — solved at the first lone
//!   transmission (the first served node is the leader);
//! * **full conflict resolution** — keep going and *every* contender gets
//!   a private slot; with `k` contenders the classic bound is
//!   `O(k + k·log(n/k))` rounds, which the tests check. Compare
//!   [`crate::serialize::SerializeAll`], which achieves the same service
//!   guarantee generically by repeating any election.

use mac_sim::{Action, ChannelId, Feedback, Protocol, RoundContext, Status};
use rand::rngs::SmallRng;

use crate::phase::{impl_terminal_phase, PhaseMeter};

/// The tree-splitting protocol. Requires unique ids in `[0, n)`.
///
/// ```
/// use contention::baselines::TreeSplit;
/// use mac_sim::{Engine, SimConfig, StopWhen};
///
/// # fn main() -> Result<(), mac_sim::SimError> {
/// let n = 64;
/// let cfg = SimConfig::new(1).stop_when(StopWhen::AllTerminated);
/// let mut exec = Engine::new(cfg);
/// for id in [3u64, 17, 40, 41] {
///     exec.add_node(TreeSplit::new(id, n));
/// }
/// let report = exec.run()?;
/// // One-shot reading: solved at the first lone slot…
/// assert!(report.is_solved());
/// // …full reading: every contender was served.
/// assert!(exec.iter_nodes().all(|t| t.served_at().is_some()));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TreeSplit {
    id: u64,
    /// DFS stack of id intervals `[lo, hi)`, top = next to query.
    stack: Vec<(u64, u64)>,
    transmitted: bool,
    /// Round (0-based, local) at which this node transmitted alone.
    served_at: Option<u64>,
    /// Whether any node had been served before this one (first serve wins
    /// the one-shot problem).
    anyone_served: bool,
    status: Status,
    round: u64,
    meter: PhaseMeter,
}

impl TreeSplit {
    /// Creates a contender with unique id `id` out of `n` possible ids.
    ///
    /// # Panics
    ///
    /// Panics unless `id < n` and `n >= 1`.
    #[must_use]
    pub fn new(id: u64, n: u64) -> Self {
        assert!(n >= 1, "n must be at least 1");
        assert!(id < n, "id {id} out of range 0..{n}");
        TreeSplit {
            id,
            stack: vec![(0, n)],
            transmitted: false,
            served_at: None,
            anyone_served: false,
            status: Status::Active,
            round: 0,
            meter: PhaseMeter::default(),
        }
    }

    /// The local round in which this node was served, if it was.
    #[must_use]
    pub fn served_at(&self) -> Option<u64> {
        self.served_at
    }

    /// Rounds participated in.
    #[must_use]
    pub fn rounds_run(&self) -> u64 {
        self.round
    }
}

impl Protocol for TreeSplit {
    type Msg = u32;

    fn act(&mut self, _ctx: &RoundContext, _rng: &mut SmallRng) -> Action<u32> {
        self.round += 1;
        match self.stack.last() {
            None => Action::Sleep,
            Some(&(lo, hi)) => {
                self.transmitted = (lo..hi).contains(&self.id);
                if self.transmitted {
                    Action::transmit(ChannelId::PRIMARY, 0)
                } else {
                    Action::listen(ChannelId::PRIMARY)
                }
            }
        }
    }

    fn observe(&mut self, _ctx: &RoundContext, feedback: Feedback<u32>, _rng: &mut SmallRng) {
        let Some((lo, hi)) = self.stack.pop() else {
            return;
        };
        match feedback {
            Feedback::Silence => {
                // Empty interval: discard.
            }
            Feedback::Message(_) => {
                if self.transmitted {
                    self.served_at = Some(self.round - 1);
                    // The first served contender solved the one-shot
                    // problem; later ones are "delivered" but not leader.
                    self.status = if self.anyone_served {
                        Status::Inactive
                    } else {
                        Status::Leader
                    };
                }
                self.anyone_served = true;
            }
            Feedback::Collision => {
                debug_assert!(
                    hi - lo > 1,
                    "collision on a singleton interval: duplicate ids?"
                );
                let mid = lo + (hi - lo) / 2;
                // DFS order: left half next.
                self.stack.push((mid, hi));
                self.stack.push((lo, mid));
            }
            Feedback::TransmittedBlind | Feedback::Slept => {
                debug_assert!(
                    matches!(feedback, Feedback::Slept),
                    "TreeSplit requires strong collision detection"
                );
            }
        }
        if self.stack.is_empty() && self.status == Status::Active {
            // Every interval resolved; a correct run served this node
            // already, but be safe against misuse (duplicate ids).
            self.status = Status::Inactive;
        }
    }

    fn status(&self) -> Status {
        self.status
    }

    fn phase(&self) -> &'static str {
        "tree-split"
    }
}

impl_terminal_phase!(TreeSplit, "tree-split");

#[cfg(test)]
mod tests {
    use super::*;
    use mac_sim::{Engine, SimConfig, StopWhen};

    fn run(n: u64, ids: &[u64]) -> (mac_sim::RunReport, Vec<TreeSplit>) {
        let cfg = SimConfig::new(1)
            .stop_when(StopWhen::AllTerminated)
            .max_rounds(100_000);
        let mut exec = Engine::new(cfg);
        for &id in ids {
            exec.add_node(TreeSplit::new(id, n));
        }
        let report = exec.run().expect("resolves");
        let nodes = exec.iter_nodes().cloned().collect();
        (report, nodes)
    }

    #[test]
    fn every_contender_is_served_exactly_once() {
        let ids = [0u64, 1, 5, 31, 32, 63];
        let (report, nodes) = run(64, &ids);
        assert!(report.is_solved());
        assert_eq!(report.leaders.len(), 1);
        let mut slots: Vec<u64> = nodes
            .iter()
            .map(|t| t.served_at().expect("served"))
            .collect();
        slots.sort_unstable();
        slots.dedup();
        assert_eq!(slots.len(), ids.len(), "two nodes shared a slot");
    }

    #[test]
    fn service_order_is_id_order() {
        // Left-first DFS serves ids in ascending order.
        let ids = [50u64, 3, 20, 60];
        let (_, nodes) = run(64, &ids);
        let mut order: Vec<(u64, u64)> = nodes
            .iter()
            .map(|t| (t.served_at().expect("served"), t.rounds_run()))
            .zip(ids)
            .map(|((at, _), id)| (at, id))
            .collect();
        order.sort_unstable();
        let served_ids: Vec<u64> = order.into_iter().map(|(_, id)| id).collect();
        assert_eq!(served_ids, vec![3, 20, 50, 60]);
    }

    #[test]
    fn exhaustive_small_universe_all_served() {
        for mask in 1u32..(1 << 8) {
            let ids: Vec<u64> = (0..8).filter(|b| mask & (1 << b) != 0).collect();
            let (report, nodes) = run(8, &ids);
            assert!(report.is_solved(), "ids {ids:?}");
            assert_eq!(report.leaders.len(), 1, "ids {ids:?}");
            assert!(
                nodes.iter().all(|t| t.served_at().is_some()),
                "ids {ids:?}: not all served"
            );
        }
    }

    #[test]
    fn full_resolution_cost_matches_classic_bound() {
        // O(k + k·log(n/k)): check a generous concrete constant.
        for (n, k) in [(1u64 << 10, 4usize), (1 << 10, 32), (1 << 16, 64)] {
            let ids: Vec<u64> = (0..k as u64).map(|i| i * (n / k as u64)).collect();
            let (report, _) = run(n, &ids);
            let bound = 3.0 * (k as f64) * ((n as f64 / k as f64).log2() + 2.0);
            assert!(
                (report.rounds_executed as f64) <= bound,
                "n={n} k={k}: {} rounds > {bound}",
                report.rounds_executed
            );
        }
    }

    #[test]
    fn lone_contender_is_served_fast() {
        let (report, nodes) = run(1 << 20, &[12345]);
        assert!(report.rounds_to_solve().expect("solved") <= 2);
        assert_eq!(
            nodes[0].served_at(),
            Some(report.solved_round.expect("solved"))
        );
    }

    #[test]
    fn dense_activation_is_linear_in_k() {
        let ids: Vec<u64> = (0..256).collect();
        let (report, _) = run(256, &ids);
        // Fully dense: every internal interval collides once, every leaf is
        // a service slot: exactly 2·256 − 1 + ... ≈ 2k rounds.
        assert!(report.rounds_executed <= 3 * 256);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_id() {
        let _ = TreeSplit::new(8, 8);
    }
}
