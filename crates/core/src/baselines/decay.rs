//! Single-channel contention resolution **without** collision detection:
//! the classic decay probability cycle, `O(log² n)` rounds w.h.p.
//!
//! Without collision detection a node cannot distinguish a collision from
//! silence, so knock-out strategies are unavailable; instead every node
//! transmits with a probability cycling through
//! `1/2, 1/4, …, 2^{-⌈lg n⌉}`. When the probability ≈ `1/|A|`, some node is
//! alone on the channel with constant probability, so `O(log n)` full
//! cycles — `O(log² n)` rounds — suffice w.h.p. Jurdziński–Stachowiak
//! (2002) proved this near-optimal for uniform algorithms and Newport
//! (2014) for all algorithms, which is why the gap to the collision-
//! detection world is a real model separation and not an algorithmic
//! artifact.

use mac_sim::{Action, ChannelId, Feedback, Protocol, RoundContext, Status};
use rand::rngs::SmallRng;
use rand::Rng;

use crate::phase::{impl_terminal_phase, PhaseMeter};

/// The decay-cycle protocol. Nodes never learn the outcome (they have no
/// collision detector and transmitters are blind), so runs should use
/// [`mac_sim::StopWhen::Solved`]: the executor detects the solving round
/// even though the protocol itself cannot.
///
/// ```
/// use contention::baselines::Decay;
/// use mac_sim::{CdMode, Engine, SimConfig};
///
/// # fn main() -> Result<(), mac_sim::SimError> {
/// let cfg = SimConfig::new(1).seed(3).cd_mode(CdMode::None);
/// let mut exec = Engine::new(cfg);
/// for _ in 0..50 {
///     exec.add_node(Decay::new(1 << 10));
/// }
/// assert!(exec.run()?.is_solved());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Decay {
    /// Cycle length `⌈lg n⌉`.
    cycle: u32,
    /// Rounds participated in so far (drives the cycle position).
    round: u64,
    /// Knocked out by hearing another node's lone transmission (possible
    /// even without collision detection).
    status: Status,
    transmitted: bool,
    meter: PhaseMeter,
}

impl Decay {
    /// Creates a decay node for `n` possible nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    #[must_use]
    pub fn new(n: u64) -> Self {
        assert!(n >= 2, "the model requires n >= 2, got {n}");
        Decay {
            cycle: (n as f64).log2().ceil() as u32,
            round: 0,
            status: Status::Active,
            transmitted: false,
            meter: PhaseMeter::default(),
        }
    }

    /// The transmit probability used in round `r` (0-based): `2^{-j}` with
    /// `j = (r mod cycle) + 1`.
    #[must_use]
    pub fn probability_at(&self, round: u64) -> f64 {
        let j = (round % u64::from(self.cycle)) + 1;
        0.5f64.powi(j as i32)
    }
}

impl Protocol for Decay {
    type Msg = u32;

    fn act(&mut self, _ctx: &RoundContext, rng: &mut SmallRng) -> Action<u32> {
        let p = self.probability_at(self.round);
        self.round += 1;
        self.transmitted = rng.gen_bool(p);
        if self.transmitted {
            Action::transmit(ChannelId::PRIMARY, 0)
        } else {
            Action::listen(ChannelId::PRIMARY)
        }
    }

    fn observe(&mut self, _ctx: &RoundContext, feedback: Feedback<u32>, _rng: &mut SmallRng) {
        // Even without collision detection, a listener that receives a lone
        // message knows someone won and can retire.
        if !self.transmitted && feedback.message().is_some() {
            self.status = Status::Inactive;
        }
    }

    fn status(&self) -> Status {
        self.status
    }

    fn phase(&self) -> &'static str {
        "decay"
    }
}

impl_terminal_phase!(Decay, "decay");

#[cfg(test)]
mod tests {
    use super::*;
    use mac_sim::{CdMode, Engine, SimConfig};

    fn rounds_to_solve(n: u64, active: usize, seed: u64) -> u64 {
        let cfg = SimConfig::new(1)
            .seed(seed)
            .cd_mode(CdMode::None)
            .max_rounds(1_000_000);
        let mut exec = Engine::new(cfg);
        for _ in 0..active {
            exec.add_node(Decay::new(n));
        }
        exec.run().expect("run succeeds").rounds_to_solve().unwrap()
    }

    #[test]
    fn solves_for_various_densities() {
        for active in [1usize, 2, 10, 100, 1000] {
            let r = rounds_to_solve(1 << 10, active, 7);
            assert!(r < 10_000, "active={active}: {r} rounds");
        }
    }

    #[test]
    fn rounds_scale_like_log_squared() {
        // Budget: 12 * lg(n)^2 + 50 over a handful of seeds.
        for n_pow in [6u32, 10, 14] {
            let n = 1u64 << n_pow;
            let budget = 12 * u64::from(n_pow) * u64::from(n_pow) + 50;
            for seed in 0..5 {
                let r = rounds_to_solve(n, (n / 2) as usize, seed);
                assert!(r <= budget, "n=2^{n_pow} seed={seed}: {r} > {budget}");
            }
        }
    }

    #[test]
    fn probability_cycle_wraps() {
        let d = Decay::new(16); // cycle = 4
        assert_eq!(d.probability_at(0), 0.5);
        assert_eq!(d.probability_at(3), 1.0 / 16.0);
        assert_eq!(d.probability_at(4), 0.5);
    }

    #[test]
    #[should_panic(expected = "n >= 2")]
    fn rejects_tiny_n() {
        let _ = Decay::new(1);
    }
}
