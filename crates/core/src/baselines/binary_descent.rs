//! The classic single-channel collision-detection algorithm: binary descent
//! over the id space `[n]` to find the smallest active id.
//!
//! All active nodes maintain the same candidate range (initially `[0, n)`).
//! Each round, the actives whose id lies in the *left half* transmit on the
//! primary channel while the rest listen. Anything but silence means the
//! left half is occupied (the right half gives up); silence means it is
//! empty (descend right). After `⌈lg n⌉` halvings one id remains and its
//! owner transmits alone.
//!
//! This solves contention resolution in `O(log n)` rounds *with probability
//! 1*, and was the best known upper bound for multiple channels with
//! collision detection before this paper (§2) — making it the headline
//! baseline of experiment E9. It is also optimal for the single-channel
//! case \[Newport 2014\].

use mac_sim::{Action, ChannelId, Feedback, Protocol, RoundContext, Status};
use rand::rngs::SmallRng;

use crate::phase::{impl_terminal_phase, PhaseMeter};

/// The deterministic descent protocol. Requires each node to know a unique
/// id in `[0, n)` — an assumption the paper's own algorithms avoid, but
/// which its lower bounds permit (they hold even with ids).
///
/// ```
/// use contention::baselines::BinaryDescent;
/// use mac_sim::{Engine, SimConfig};
///
/// # fn main() -> Result<(), mac_sim::SimError> {
/// let n = 1u64 << 10;
/// let mut exec = Engine::new(SimConfig::new(1));
/// for id in [17u64, 400, 900] {
///     exec.add_node(BinaryDescent::new(id, n));
/// }
/// let report = exec.run()?;
/// // The smallest active id always wins.
/// assert!(report.rounds_to_solve().unwrap() <= 11);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BinaryDescent {
    id: u64,
    lo: u64,
    hi: u64,
    transmitted: bool,
    status: Status,
    rounds: u64,
    meter: PhaseMeter,
}

impl BinaryDescent {
    /// Creates a node with unique id `id` out of `n` possible ids.
    ///
    /// # Panics
    ///
    /// Panics unless `id < n` and `n >= 1`.
    #[must_use]
    pub fn new(id: u64, n: u64) -> Self {
        assert!(n >= 1, "n must be at least 1");
        assert!(id < n, "id {id} out of range 0..{n}");
        BinaryDescent {
            id,
            lo: 0,
            hi: n,
            transmitted: false,
            status: Status::Active,
            rounds: 0,
            meter: PhaseMeter::default(),
        }
    }

    /// Rounds participated in.
    #[must_use]
    pub fn rounds_run(&self) -> u64 {
        self.rounds
    }

    /// The current candidate range `[lo, hi)`.
    #[must_use]
    pub fn range(&self) -> (u64, u64) {
        (self.lo, self.hi)
    }
}

impl Protocol for BinaryDescent {
    type Msg = u32;

    fn act(&mut self, _ctx: &RoundContext, _rng: &mut SmallRng) -> Action<u32> {
        self.rounds += 1;
        if self.hi - self.lo == 1 {
            // Only this node's id remains: claim victory.
            debug_assert_eq!(self.id, self.lo);
            self.transmitted = true;
            return Action::transmit(ChannelId::PRIMARY, 0);
        }
        let mid = self.lo + (self.hi - self.lo) / 2;
        self.transmitted = self.id < mid;
        if self.transmitted {
            Action::transmit(ChannelId::PRIMARY, 0)
        } else {
            Action::listen(ChannelId::PRIMARY)
        }
    }

    fn observe(&mut self, _ctx: &RoundContext, feedback: Feedback<u32>, _rng: &mut SmallRng) {
        if self.hi - self.lo == 1 {
            debug_assert!(
                feedback.message().is_some(),
                "final claim collided; duplicate ids?"
            );
            self.status = Status::Leader;
            return;
        }
        let mid = self.lo + (self.hi - self.lo) / 2;
        if feedback.is_silence() {
            // Left half empty: the winner is on the right.
            self.lo = mid;
        } else if self.transmitted {
            // Left half occupied and we are in it: descend left.
            self.hi = mid;
        } else {
            // Left half occupied and we are not in it: we cannot win.
            self.status = Status::Inactive;
        }
    }

    fn status(&self) -> Status {
        self.status
    }

    fn phase(&self) -> &'static str {
        "binary-descent"
    }
}

impl_terminal_phase!(BinaryDescent, "binary-descent");

#[cfg(test)]
mod tests {
    use super::*;
    use mac_sim::{Engine, SimConfig, StopWhen};

    fn run(n: u64, ids: &[u64]) -> mac_sim::RunReport {
        let cfg = SimConfig::new(1)
            .stop_when(StopWhen::AllTerminated)
            .max_rounds(10_000);
        let mut exec = Engine::new(cfg);
        for &id in ids {
            exec.add_node(BinaryDescent::new(id, n));
        }
        exec.run().expect("run succeeds")
    }

    #[test]
    fn smallest_id_wins_always() {
        let report = run(16, &[3, 7, 12, 15]);
        assert_eq!(report.leaders.len(), 1);
        // Node order matches insertion order; id 3 is node 0.
        assert_eq!(report.leaders[0].0, 0);
    }

    #[test]
    fn exhaustive_small_universe() {
        // Every nonempty activation pattern over n = 8 elects the minimum.
        for mask in 1u32..(1 << 8) {
            let ids: Vec<u64> = (0..8).filter(|b| mask & (1 << b) != 0).collect();
            let report = run(8, &ids);
            assert_eq!(report.leaders.len(), 1, "ids {ids:?}");
            assert_eq!(
                report.leaders[0].0, 0,
                "ids {ids:?} (min is inserted first)"
            );
            assert!(report.is_solved(), "ids {ids:?}");
        }
    }

    #[test]
    fn rounds_bounded_by_lg_n_plus_one() {
        for n_pow in [4u32, 8, 12] {
            let n = 1u64 << n_pow;
            let ids = [n - 1, n - 2, n / 2, 1];
            let report = run(n, &ids);
            assert!(
                report.rounds_executed <= u64::from(n_pow) + 1,
                "n=2^{n_pow}: took {} rounds",
                report.rounds_executed
            );
        }
    }

    #[test]
    fn lone_node_solves_fast() {
        // A lone transmitter on the primary channel solves the problem the
        // first time its half is probed.
        let report = run(1 << 20, &[0]);
        assert!(report.rounds_to_solve().unwrap() <= 1);
    }

    #[test]
    fn deterministic_rounds() {
        let a = run(1 << 10, &[100, 900]).rounds_executed;
        let b = run(1 << 10, &[100, 900]).rounds_executed;
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_id() {
        let _ = BinaryDescent::new(8, 8);
    }
}
