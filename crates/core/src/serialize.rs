//! Serializing *all* contenders — repeated contention resolution.
//!
//! The one-shot problem ends at the first lone transmission, but the
//! original conflict-resolution literature (Komlós–Greenberg, reference
//! \[13\] of the paper) wants more: every contender eventually delivers its
//! packet. This module lifts any single-shot election into a full
//! serializer by interleaving:
//!
//! * **even rounds** — an embedded election protocol runs among the nodes
//!   that have not yet been served;
//! * **odd rounds** — an *ack* slot on the primary channel: once a node's
//!   embedded election declares it leader, it transmits its payload in the
//!   next ack slot (alone — there is at most one new leader), every other
//!   node hears it, the served node retires, and the survivors restart a
//!   fresh election synchronously.
//!
//! With the paper's pipeline embedded, serving all `k` contenders costs
//! `≈ 2·k·T(n, C)` rounds where `T` is Theorem 4's bound — each delivery
//! inherits the paper's speed-up.

use mac_sim::{Action, ChannelId, Feedback, Protocol, RoundContext, Status};
use rand::rngs::SmallRng;

/// Builds fresh instances of the embedded election protocol. A plain `Fn`
/// so restarts can mint as many instances as needed.
pub trait ElectionFactory {
    /// The election protocol type produced.
    type Election: Protocol<Msg = u32>;
    /// Creates a fresh, unstarted election instance.
    fn fresh(&self) -> Self::Election;
}

impl<F, P> ElectionFactory for F
where
    F: Fn() -> P,
    P: Protocol<Msg = u32>,
{
    type Election = P;
    fn fresh(&self) -> P {
        self()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Still contending: run the embedded election in even rounds.
    Electing,
    /// Declared leader by the embedded election; will ack next odd round.
    PendingAck,
    /// Knocked out of the current election; waiting for an ack to restart.
    Waiting,
    /// Served (acked); retired.
    Served,
}

/// A node of the all-contenders serializer.
///
/// ```
/// use contention::serialize::SerializeAll;
/// use contention::{FullAlgorithm, Params};
/// use mac_sim::{Engine, SimConfig, StopWhen};
///
/// # fn main() -> Result<(), mac_sim::SimError> {
/// let (c, n, k) = (32u32, 1u64 << 10, 12usize);
/// let cfg = SimConfig::new(c).seed(4).stop_when(StopWhen::AllTerminated);
/// let mut exec = Engine::new(cfg);
/// for payload in 0..k as u32 {
///     let factory = move || FullAlgorithm::new(Params::practical(), c, n);
///     exec.add_node(SerializeAll::new(factory, payload));
/// }
/// exec.run()?;
/// let served: Vec<u32> = exec.iter_nodes().filter_map(|s| s.served_at().map(|_| s.payload())).collect();
/// assert_eq!(served.len(), k, "every contender must be served");
/// # Ok(())
/// # }
/// ```
pub struct SerializeAll<F: ElectionFactory> {
    factory: F,
    election: F::Election,
    payload: u32,
    mode: Mode,
    /// Local round counter; even = election slot, odd = ack slot.
    step: u64,
    /// The ack slot (local step) in which this node delivered its payload.
    served_at: Option<u64>,
    /// Payloads heard in ack slots, in delivery order.
    deliveries: Vec<u32>,
}

impl<F, P> Clone for SerializeAll<F>
where
    F: ElectionFactory<Election = P> + Clone,
    P: Protocol<Msg = u32> + Clone,
{
    fn clone(&self) -> Self {
        SerializeAll {
            factory: self.factory.clone(),
            election: self.election.clone(),
            payload: self.payload,
            mode: self.mode,
            step: self.step,
            served_at: self.served_at,
            deliveries: self.deliveries.clone(),
        }
    }
}

impl<F: ElectionFactory> SerializeAll<F> {
    /// Creates a contender that will deliver `payload` once it wins an
    /// election epoch. All contenders must use equivalent factories.
    pub fn new(factory: F, payload: u32) -> Self {
        let election = factory.fresh();
        SerializeAll {
            factory,
            election,
            payload,
            mode: Mode::Electing,
            step: 0,
            served_at: None,
            deliveries: Vec::new(),
        }
    }

    /// This node's payload.
    pub fn payload(&self) -> u32 {
        self.payload
    }

    /// The local step at which this node was served, if it was.
    pub fn served_at(&self) -> Option<u64> {
        self.served_at
    }

    /// Every payload this node heard delivered, in order (including its
    /// own). All nodes observe the same delivery order — the serializer
    /// doubles as a total-order broadcast of one message per node.
    pub fn deliveries(&self) -> &[u32] {
        &self.deliveries
    }

    fn restart_election(&mut self) {
        self.election = self.factory.fresh();
        self.mode = Mode::Electing;
    }
}

impl<F: ElectionFactory> Protocol for SerializeAll<F> {
    type Msg = u32;

    fn act(&mut self, ctx: &RoundContext, rng: &mut SmallRng) -> Action<u32> {
        let step = self.step;
        self.step += 1;
        if step % 2 == 1 {
            // Ack slot.
            return match self.mode {
                Mode::PendingAck => Action::transmit(ChannelId::PRIMARY, self.payload),
                _ => Action::listen(ChannelId::PRIMARY),
            };
        }
        // Election slot.
        match self.mode {
            Mode::Electing => {
                let inner_ctx = RoundContext {
                    round: ctx.round,
                    local_round: step / 2,
                    channels: ctx.channels,
                };
                self.election.act(&inner_ctx, rng)
            }
            _ => Action::Sleep,
        }
    }

    fn observe(&mut self, ctx: &RoundContext, feedback: Feedback<u32>, rng: &mut SmallRng) {
        let step = self.step - 1;
        if step % 2 == 1 {
            // Ack slot outcome.
            match self.mode {
                Mode::PendingAck => {
                    debug_assert!(
                        feedback.message().is_some(),
                        "ack collided; two leaders in one epoch?"
                    );
                    self.deliveries.push(self.payload);
                    self.served_at = Some(step);
                    self.mode = Mode::Served;
                }
                Mode::Served => {}
                Mode::Electing | Mode::Waiting => {
                    if let Some(&payload) = feedback.message() {
                        // Someone was served: epoch over, restart.
                        self.deliveries.push(payload);
                        self.restart_election();
                    }
                }
            }
            return;
        }
        // Election slot outcome.
        if self.mode == Mode::Electing {
            let inner_ctx = RoundContext {
                round: ctx.round,
                local_round: step / 2,
                channels: ctx.channels,
            };
            self.election.observe(&inner_ctx, feedback, rng);
            match self.election.status() {
                Status::Leader => self.mode = Mode::PendingAck,
                Status::Inactive => self.mode = Mode::Waiting,
                Status::Active => {}
            }
        }
    }

    fn status(&self) -> Status {
        match self.mode {
            Mode::Served => {
                // Every node retires as soon as it is served; the last
                // served node is this problem's notion of completion.
                Status::Inactive
            }
            _ => Status::Active,
        }
    }

    fn phase(&self) -> &'static str {
        match self.mode {
            Mode::Electing => "serialize-elect",
            Mode::PendingAck => "serialize-ack",
            Mode::Waiting => "serialize-wait",
            Mode::Served => "done",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::CdTournament;
    use crate::{FullAlgorithm, Params};
    use mac_sim::{Engine, SimConfig, StopWhen};

    fn run_serializer(
        c: u32,
        n: u64,
        k: usize,
        seed: u64,
    ) -> Vec<SerializeAll<impl ElectionFactory + Clone>> {
        let cfg = SimConfig::new(c)
            .seed(seed)
            .stop_when(StopWhen::AllTerminated)
            .max_rounds(10_000_000);
        let mut exec = Engine::new(cfg);
        for payload in 0..k as u32 {
            let factory = move || FullAlgorithm::new(Params::practical(), c, n);
            exec.add_node(SerializeAll::new(factory, payload));
        }
        exec.run().expect("serializes");
        exec.iter_nodes().cloned().collect()
    }

    #[test]
    fn every_contender_is_served_exactly_once() {
        for (k, seed) in [(1usize, 0u64), (2, 1), (7, 2), (25, 3)] {
            let nodes = run_serializer(32, 1 << 10, k, seed);
            let mut payloads: Vec<u32> = nodes
                .iter()
                .filter(|s| s.served_at().is_some())
                .map(SerializeAll::payload)
                .collect();
            payloads.sort_unstable();
            let expect: Vec<u32> = (0..k as u32).collect();
            assert_eq!(payloads, expect, "k={k} seed={seed}");
        }
    }

    #[test]
    fn all_nodes_agree_on_delivery_order() {
        let nodes = run_serializer(32, 1 << 10, 10, 5);
        // A node only observes deliveries while still present, so earlier-
        // served nodes have prefixes of the full order. The last-served
        // node's log is the complete order; everyone else must match its
        // prefix up to and including their own delivery.
        let full = nodes
            .iter()
            .max_by_key(|s| s.deliveries().len())
            .expect("nonempty")
            .deliveries()
            .to_vec();
        assert_eq!(full.len(), 10);
        let unique: std::collections::HashSet<u32> = full.iter().copied().collect();
        assert_eq!(unique.len(), 10, "duplicate deliveries: {full:?}");
        for node in &nodes {
            let d = node.deliveries();
            assert_eq!(
                d,
                &full[..d.len()],
                "divergent order at {:?}",
                node.payload()
            );
        }
    }

    #[test]
    fn serialization_cost_scales_with_contenders() {
        let rounds = |k: usize| {
            let cfg = SimConfig::new(32)
                .seed(9)
                .stop_when(StopWhen::AllTerminated)
                .max_rounds(10_000_000);
            let mut exec = Engine::new(cfg);
            for payload in 0..k as u32 {
                let factory = move || FullAlgorithm::new(Params::practical(), 32, 1 << 10);
                exec.add_node(SerializeAll::new(factory, payload));
            }
            exec.run().expect("serializes").rounds_executed
        };
        let few = rounds(4);
        let many = rounds(16);
        assert!(
            many > few,
            "serving 16 ({many}) must cost more than 4 ({few})"
        );
        // Linear-ish in k: 16 contenders shouldn't cost more than ~8x the 4.
        assert!(many < few * 12, "cost blow-up: {few} -> {many}");
    }

    #[test]
    fn works_with_the_tournament_election_too() {
        let cfg = SimConfig::new(4)
            .seed(2)
            .stop_when(StopWhen::AllTerminated)
            .max_rounds(1_000_000);
        let mut exec = Engine::new(cfg);
        for payload in 0..8u32 {
            exec.add_node(SerializeAll::new(CdTournament::new, payload));
        }
        exec.run().expect("serializes");
        let served = exec
            .iter_nodes()
            .filter(|s| s.served_at().is_some())
            .count();
        assert_eq!(served, 8);
    }

    #[test]
    fn lone_contender_served_fast() {
        let nodes = run_serializer(32, 1 << 10, 1, 7);
        assert!(nodes[0].served_at().is_some());
        assert_eq!(nodes[0].deliveries(), &[0]);
    }
}
