//! White-box driving of the §3 wake-up transform: listen-window length,
//! beacon parity, retirement, and inner-protocol scheduling, all checked
//! against hand-fed feedback.

use contention::baselines::CdTournament;
use contention::wakeup::{StaggeredStart, LISTEN_ROUNDS};
use mac_sim::{Action, Feedback, Protocol, RoundContext, Status};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn ctx() -> RoundContext {
    RoundContext {
        round: 0,
        local_round: 0,
        channels: 8,
    }
}

/// A minimal inner protocol that records how many rounds it was given.
#[derive(Clone)]
struct Probe {
    acts: u64,
    observes: u64,
}

impl Protocol for Probe {
    type Msg = u32;
    fn act(&mut self, _ctx: &RoundContext, _rng: &mut SmallRng) -> Action<u32> {
        self.acts += 1;
        Action::listen(mac_sim::ChannelId::new(2))
    }
    fn observe(&mut self, _ctx: &RoundContext, _fb: Feedback<u32>, _rng: &mut SmallRng) {
        self.observes += 1;
    }
    fn status(&self) -> Status {
        Status::Active
    }
}

#[test]
fn silent_window_promotes_to_runner_with_beacon_first() {
    let mut node = StaggeredStart::new(Probe {
        acts: 0,
        observes: 0,
    });
    let mut rng = SmallRng::seed_from_u64(0);
    // The listen window: exactly LISTEN_ROUNDS listens on the primary.
    for _ in 0..LISTEN_ROUNDS {
        let action = node.act(&ctx(), &mut rng);
        assert!(matches!(action, Action::Listen { channel } if channel.is_primary()));
        node.observe(&ctx(), Feedback::Silence, &mut rng);
    }
    // First runner round: a beacon on the primary channel.
    let action = node.act(&ctx(), &mut rng);
    assert!(
        matches!(action, Action::Transmit { channel, .. } if channel.is_primary()),
        "first runner round must beacon"
    );
    assert_eq!(node.inner_rounds(), 0, "inner must not have run yet");
    // Colliding beacon (other runners exist): keep going.
    node.observe(&ctx(), Feedback::Collision, &mut rng);
    // Second runner round: the inner protocol's round 0.
    let _ = node.act(&ctx(), &mut rng);
    assert_eq!(node.inner_rounds(), 1);
    node.observe(&ctx(), Feedback::Silence, &mut rng);
    // Beacons and inner rounds alternate strictly.
    for expect_inner in [false, true, false, true] {
        let before = node.inner_rounds();
        let action = node.act(&ctx(), &mut rng);
        if expect_inner {
            assert_eq!(node.inner_rounds(), before + 1);
        } else {
            assert!(matches!(action, Action::Transmit { channel, .. } if channel.is_primary()));
            assert_eq!(node.inner_rounds(), before);
        }
        node.observe(&ctx(), Feedback::Collision, &mut rng);
    }
}

#[test]
fn any_signal_in_window_retires_the_node() {
    for (when, fb) in [
        (0, Feedback::Message(5)),
        (1, Feedback::Collision),
        (LISTEN_ROUNDS - 1, Feedback::Message(0)),
    ] {
        let mut node = StaggeredStart::new(Probe {
            acts: 0,
            observes: 0,
        });
        let mut rng = SmallRng::seed_from_u64(1);
        for i in 0..=when {
            let _ = node.act(&ctx(), &mut rng);
            let feedback = if i == when {
                fb.clone()
            } else {
                Feedback::Silence
            };
            node.observe(&ctx(), feedback, &mut rng);
        }
        assert_eq!(node.status(), Status::Inactive, "window round {when}");
        assert!(node.retired_early());
        assert_eq!(node.inner_rounds(), 0);
    }
}

#[test]
fn lone_beacon_wins_immediately() {
    let mut node = StaggeredStart::new(CdTournament::new());
    let mut rng = SmallRng::seed_from_u64(2);
    for _ in 0..LISTEN_ROUNDS {
        let _ = node.act(&ctx(), &mut rng);
        node.observe(&ctx(), Feedback::Silence, &mut rng);
    }
    let _ = node.act(&ctx(), &mut rng); // beacon
    node.observe(&ctx(), Feedback::Message(0), &mut rng); // alone!
    assert_eq!(node.status(), Status::Leader);
}

#[test]
fn inner_termination_propagates() {
    // An inner protocol that instantly leads ends the wrapper too.
    #[derive(Clone)]
    struct InstantLeader;
    impl Protocol for InstantLeader {
        type Msg = u32;
        fn act(&mut self, _: &RoundContext, _: &mut SmallRng) -> Action<u32> {
            Action::transmit(mac_sim::ChannelId::PRIMARY, 0)
        }
        fn observe(&mut self, _: &RoundContext, _: Feedback<u32>, _: &mut SmallRng) {}
        fn status(&self) -> Status {
            Status::Leader
        }
    }
    let mut node = StaggeredStart::new(InstantLeader);
    let mut rng = SmallRng::seed_from_u64(3);
    for _ in 0..LISTEN_ROUNDS {
        let _ = node.act(&ctx(), &mut rng);
        node.observe(&ctx(), Feedback::Silence, &mut rng);
    }
    let _ = node.act(&ctx(), &mut rng); // beacon round
    node.observe(&ctx(), Feedback::Collision, &mut rng);
    let _ = node.act(&ctx(), &mut rng); // inner round
    node.observe(&ctx(), Feedback::Collision, &mut rng);
    assert_eq!(node.status(), Status::Leader);
}

#[test]
fn inner_accessor_exposes_wrapped_state() {
    let node = StaggeredStart::new(Probe {
        acts: 0,
        observes: 0,
    });
    assert_eq!(node.inner().acts, 0);
    assert_eq!(node.phase(), "wakeup-listen");
}
