//! Trace equivalence between the distributed `SplitSearch` and the CREW
//! PRAM search it simulates.
//!
//! The paper's central claim about coalescing cohorts is that they let the
//! distributed system *simulate* Snir's parallel search. This test makes
//! the simulation claim literal: step a `LeafElection` execution round by
//! round, record the sequence of level intervals its search visits, and
//! check that the interval-shrinking schedule is exactly the one
//! `crew_pram::search::split_points` prescribes for the same `(interval,
//! cohort size)` — i.e. every visited interval is a valid subrange of its
//! predecessor's `(p+1)`-ary subdivision, and the number of iterations
//! matches the PRAM iteration count for the found boundary.

use contention::LeafElection;
use crew_pram::search::split_points;
use mac_sim::{Engine, Protocol as _, SimConfig, Status, StepStatus, StopWhen};

/// Steps an election and collects, for each distinct search the lowest-id
/// surviving node performs, the sequence of `(l_min, l_max, c_size)`.
fn interval_traces(c: u32, ids: &[u32]) -> Vec<Vec<(u32, u32, u32)>> {
    let cfg = SimConfig::new(c)
        .seed(0)
        .stop_when(StopWhen::AllTerminated)
        .max_rounds(100_000);
    let mut exec = Engine::new(cfg);
    for &id in ids {
        exec.add_node(LeafElection::new(c, id));
    }
    let mut searches: Vec<Vec<(u32, u32, u32)>> = Vec::new();
    let mut last: Option<(u32, u32, u32)> = None;
    loop {
        let status = exec.step().expect("steps");
        let probe = exec
            .iter_nodes()
            .find(|n| n.status() == Status::Active)
            .and_then(|n| {
                n.search_interval()
                    .map(|(lo, hi)| (lo, hi, n.cohort_size()))
            });
        if probe != last {
            if let Some(interval) = probe {
                let starts_new = last.is_none()
                    || matches!(last, Some((lo, hi, _)) if interval.0 < lo || interval.1 > hi);
                if starts_new {
                    searches.push(vec![interval]);
                } else {
                    searches.last_mut().expect("in a search").push(interval);
                }
            }
            last = probe;
        }
        if status == StepStatus::Finished {
            break;
        }
    }
    searches
}

/// Every consecutive interval pair must be one of the `(p+1)`-ary
/// subranges `split_points` defines — the exact PRAM schedule.
fn assert_pram_schedule(search: &[(u32, u32, u32)]) {
    for pair in search.windows(2) {
        let (lo, hi, p) = pair[0];
        let (nlo, nhi, np) = pair[1];
        assert_eq!(p, np, "cohort size changed mid-search");
        let (seg, k) = split_points(lo as usize, hi as usize, p as usize);
        let level = |j: usize| -> u32 {
            if j >= k {
                hi
            } else {
                lo + (j * seg) as u32
            }
        };
        let valid = (0..k).any(|i| nlo == level(i) && nhi == level(i + 1));
        assert!(
            valid,
            "({nlo}, {nhi}] is not a (p+1)-ary subrange of ({lo}, {hi}] with p = {p}"
        );
    }
    // Iteration count: each recorded interval after the first is one
    // iteration; the total must not exceed the PRAM worst case.
    let (lo0, hi0, p) = search[0];
    let ideal = crew_pram::search::ideal_iterations((hi0 - lo0) as usize, p as usize);
    assert!(
        search.len() - 1 <= ideal,
        "{} iterations > PRAM worst case {ideal}",
        search.len() - 1
    );
}

#[test]
fn split_search_follows_the_pram_schedule_densely() {
    let traces = interval_traces(256, &(1..=128).collect::<Vec<u32>>());
    assert!(!traces.is_empty(), "no searches recorded");
    for search in &traces {
        assert_pram_schedule(search);
    }
    // Dense occupancy coalesces: later searches must run at larger p.
    let first_p = traces.first().expect("nonempty")[0].2;
    let last_p = traces.last().expect("nonempty")[0].2;
    assert!(
        last_p > first_p,
        "cohorts never grew: {first_p} -> {last_p}"
    );
}

#[test]
fn split_search_follows_the_pram_schedule_sparsely() {
    let traces = interval_traces(512, &[3, 9, 77, 130, 200, 250, 14, 95]);
    assert!(!traces.is_empty());
    for search in &traces {
        assert_pram_schedule(search);
    }
}

#[test]
fn two_node_search_is_plain_binary() {
    // With singleton cohorts (p = 1), the PRAM schedule is binary search.
    let traces = interval_traces(128, &[5, 50]);
    let first = &traces[0];
    for pair in first.windows(2) {
        let (lo, hi, _) = pair[0];
        let (nlo, nhi, _) = pair[1];
        let mid = lo + (hi - lo).div_ceil(2);
        assert!(
            (nlo, nhi) == (lo, mid) || (nlo, nhi) == (mid, hi),
            "binary step ({lo},{hi}] -> ({nlo},{nhi}] is not a halving"
        );
    }
}
