//! Crash-stop fault injection against the paper's algorithms.
//!
//! The paper's model has **no crash faults**, so none of its algorithms
//! promise crash tolerance — but a real deployment wants to know the blast
//! radius. These tests measure it with the `mac_sim::fault` subsystem
//! (`CrashStop` layered over the clean strong-CD channel):
//!
//! * crashes *before a node matters* (it would have been knocked out
//!   anyway) are harmless — the overwhelmingly common case, since the
//!   pipeline's first step eliminates all but `O(log n)` nodes;
//! * mass crashes are harmless as long as at least one node survives
//!   (survivors simply hear more silence, which the knock-out logic reads
//!   correctly);
//! * crashing a node that holds a *structural role* (a cohort member in
//!   `LeafElection`) can wedge the cohort protocol — the honest negative
//!   result, measured here as a timeout rather than a wrong answer.
//!
//! A small `CrashAt` regression subset at the bottom keeps the legacy
//! protocol-wrapper path (crash modelled *inside* the node rather than in
//! the feedback stack) covered, since both styles remain public API.

use contention::{FullAlgorithm, Params};
use mac_sim::adversary::CrashAt;
use mac_sim::fault::{CrashStop, Layered};
use mac_sim::trials::run_trials;
use mac_sim::{CdMode, Engine, NodeId, SimConfig, SimError, StopWhen};

const C: u32 = 64;
const N: u64 = 1 << 12;

fn engine_with_crashes(
    active: usize,
    crashes: Vec<(NodeId, u64)>,
    seed: u64,
    cap: u64,
) -> Engine<FullAlgorithm, Layered<CrashStop, CdMode>> {
    let cfg = SimConfig::new(C)
        .seed(seed)
        .stop_when(StopWhen::Solved)
        .max_rounds(cap);
    let fault = Layered::new(CrashStop::schedule(crashes), CdMode::Strong);
    let mut engine = Engine::with_feedback(cfg, fault);
    for _ in 0..active {
        engine.add_node(FullAlgorithm::new(Params::practical(), C, N));
    }
    engine
}

#[test]
fn early_crashes_of_most_nodes_are_harmless() {
    // 80% of nodes crash in round 2 — statistically all of them were going
    // to lose anyway; the rest solve. Fanned out over 10 seeds via the
    // trials helper, which panics (with the seed) on any failure.
    let crashes: Vec<_> = (0..500)
        .filter(|idx| idx % 5 != 0)
        .map(|idx| (NodeId(idx), 2))
        .collect();
    let reports = run_trials(10, 0, |seed| {
        engine_with_crashes(500, crashes.clone(), seed, 100_000)
    });
    for (seed, report) in reports.iter().enumerate() {
        assert!(report.is_solved(), "seed {seed}");
    }
}

#[test]
fn all_but_one_crashing_leaves_a_winner() {
    let crashes: Vec<_> = (0..100)
        .filter(|&idx| idx != 37)
        .map(|idx| (NodeId(idx), 0))
        .collect();
    let report = engine_with_crashes(100, crashes, 3, 100_000)
        .run()
        .expect("lone survivor solves");
    assert!(report.is_solved());
    assert_eq!(report.solver, Some(NodeId(37)));
}

#[test]
fn random_crash_waves_leave_survivors_that_solve() {
    // The seeded random-victim mode: a third of the fleet is dead on
    // arrival (window 1 ⇒ every victim crashes in round 0), different
    // victims per master seed. Survivors must still solve — a node that
    // never transmits is indistinguishable from a smaller population.
    // (Crashes *during* the pipeline can legitimately wedge the cohort
    // election; that regime is covered by the staggered-wave and
    // wedge tests below.)
    let reports = run_trials(10, 100, |seed| {
        let cfg = SimConfig::new(C)
            .seed(seed)
            .stop_when(StopWhen::Solved)
            .max_rounds(100_000);
        let fault = Layered::new(CrashStop::random(100, 300, 1), CdMode::Strong);
        let mut engine = Engine::with_feedback(cfg, fault);
        for _ in 0..300 {
            engine.add_node(FullAlgorithm::new(Params::practical(), C, N));
        }
        engine
    });
    for (i, report) in reports.iter().enumerate() {
        assert!(report.is_solved(), "seed {}", 100 + i);
    }
}

#[test]
fn staggered_crash_wave_during_reduce_is_tolerated() {
    // Crashes spread over the Reduce step (rounds 1..=8): knocked-out-to-be
    // nodes disappearing early only *reduces* contention.
    for seed in 0..10 {
        let crashes: Vec<_> = (0..400)
            .map(|idx| (NodeId(idx), 1 + (idx as u64 % 8)))
            .collect();
        let report = engine_with_crashes(400, crashes, seed, 100_000).run();
        // The entire population crashes within 8 rounds; a solve only
        // happens if some lone transmission landed first. Either outcome
        // (solve, or a clean everyone-terminated end) is acceptable — what
        // must not happen is a simulation error other than timeout.
        match report {
            Ok(_) => {}
            Err(SimError::Timeout { .. }) => {}
            Err(e) => panic!("seed {seed}: unexpected error {e}"),
        }
    }
}

#[test]
fn crashing_every_cohort_coordinator_wedges_leaf_election() {
    // The honest negative result: LeafElection's cohorts assume their
    // members stay; crash-stop faults inside the election can silence a
    // round the protocol's search interprets as "no collision", wedging
    // progress. We crash every node at round 30 (typically mid-election for
    // this configuration) and expect a timeout, not a wrong answer:
    // split-brain (two leaders) must never occur even under crashes.
    let result = std::panic::catch_unwind(|| {
        let crashes: Vec<_> = (0..300).map(|idx| (NodeId(idx), 30)).collect();
        let cfg = SimConfig::new(256)
            .seed(5)
            .stop_when(StopWhen::Solved)
            .max_rounds(2_000);
        let fault = Layered::new(CrashStop::schedule(crashes), CdMode::Strong);
        let mut engine = Engine::with_feedback(cfg, fault);
        for _ in 0..300 {
            engine.add_node(FullAlgorithm::new(Params::practical(), 256, N));
        }
        engine.run()
    });
    match result {
        Ok(Ok(report)) => {
            // Solved before the crash wave hit, or survivors limped through.
            assert!(report.leaders.len() <= 1, "split brain under crashes");
        }
        Ok(Err(SimError::Timeout { .. })) => {} // wedged: expected
        Ok(Err(e)) => panic!("unexpected error: {e}"),
        // Debug builds may trip protocol assertions (e.g. a cohort hearing
        // silence where the paper's model guarantees a broadcast) — that is
        // the fault being *detected*, which is also acceptable.
        Err(_) => {}
    }
}

#[test]
fn an_assassin_only_delays_the_pipeline() {
    // The adaptive adversary: kill the first two would-be solvers the
    // instant they would win. The solve-validity rail means neither corpse
    // is reported as a solver; a third node eventually gets through, or the
    // run ends cleanly without a winner — never a crashed winner.
    for seed in 0..5 {
        let cfg = SimConfig::new(C)
            .seed(seed)
            .stop_when(StopWhen::Solved)
            .max_rounds(100_000);
        let fault = Layered::new(CrashStop::assassin(2), CdMode::Strong);
        let mut engine = Engine::with_feedback(cfg, fault);
        for _ in 0..50 {
            engine.add_node(FullAlgorithm::new(Params::practical(), C, N));
        }
        match engine.run() {
            Ok(report) => {
                if let Some(solver) = report.solver {
                    assert!(
                        !engine.feedback().layer().crashed(solver),
                        "seed {seed}: a crashed node was reported as solver"
                    );
                    assert_eq!(engine.feedback().layer().crash_count(), 2, "seed {seed}");
                }
            }
            Err(SimError::Timeout { .. }) => {} // all survivors knocked out: acceptable
            Err(e) => panic!("seed {seed}: unexpected error {e}"),
        }
    }
}

// --- CrashAt regression subset -----------------------------------------
//
// The protocol-wrapper crash model predates `fault::CrashStop` and remains
// public API; keep its core behaviours pinned.

#[test]
fn crash_at_wrapper_still_solves_with_survivors() {
    let cfg = SimConfig::new(C)
        .seed(7)
        .stop_when(StopWhen::Solved)
        .max_rounds(100_000);
    let mut engine = Engine::new(cfg);
    for idx in 0..100 {
        let crash_after = if idx == 37 { u64::MAX } else { 0 };
        engine.add_node(CrashAt::new(
            FullAlgorithm::new(Params::practical(), C, N),
            crash_after,
        ));
    }
    let report = engine.run().expect("lone survivor solves");
    assert!(report.is_solved());
    assert_eq!(report.solver, Some(NodeId(37)));
}

#[test]
fn crash_at_wrapper_tolerates_early_mass_crashes() {
    for seed in 0..3 {
        let cfg = SimConfig::new(C)
            .seed(seed)
            .stop_when(StopWhen::Solved)
            .max_rounds(100_000);
        let mut engine = Engine::new(cfg);
        for idx in 0..500 {
            let crash_after = if idx % 5 == 0 { u64::MAX } else { 2 };
            engine.add_node(CrashAt::new(
                FullAlgorithm::new(Params::practical(), C, N),
                crash_after,
            ));
        }
        let report = engine.run().expect("survivors solve");
        assert!(report.is_solved(), "seed {seed}");
    }
}
