//! Crash-stop fault injection against the paper's algorithms.
//!
//! The paper's model has **no crash faults**, so none of its algorithms
//! promise crash tolerance — but a real deployment wants to know the blast
//! radius. These tests measure it:
//!
//! * crashes *before a node matters* (it would have been knocked out
//!   anyway) are harmless — the overwhelmingly common case, since the
//!   pipeline's first step eliminates all but `O(log n)` nodes;
//! * mass crashes are harmless as long as at least one node survives
//!   (survivors simply hear more silence, which the knock-out logic reads
//!   correctly);
//! * crashing a node that holds a *structural role* (a cohort member in
//!   `LeafElection`) can wedge the cohort protocol — the honest negative
//!   result, measured here as a timeout rather than a wrong answer.

use contention::{FullAlgorithm, Params};
use mac_sim::adversary::CrashAt;
use mac_sim::{Engine, SimConfig, SimError, StopWhen};

fn run_with_crashes(
    c: u32,
    n: u64,
    active: usize,
    crash: impl Fn(usize) -> u64,
    seed: u64,
    cap: u64,
) -> Result<mac_sim::RunReport, SimError> {
    let cfg = SimConfig::new(c)
        .seed(seed)
        .stop_when(StopWhen::Solved)
        .max_rounds(cap);
    let mut exec = Engine::new(cfg);
    for idx in 0..active {
        exec.add_node(CrashAt::new(
            FullAlgorithm::new(Params::practical(), c, n),
            crash(idx),
        ));
    }
    exec.run()
}

#[test]
fn early_crashes_of_most_nodes_are_harmless() {
    // 80% of nodes crash within their first two rounds — statistically all
    // of them were going to lose anyway; the rest solve.
    for seed in 0..10 {
        let report = run_with_crashes(
            64,
            1 << 12,
            500,
            |idx| if idx % 5 == 0 { u64::MAX } else { 2 },
            seed,
            100_000,
        )
        .expect("survivors solve");
        assert!(report.is_solved(), "seed {seed}");
    }
}

#[test]
fn all_but_one_crashing_leaves_a_winner() {
    let report = run_with_crashes(
        64,
        1 << 12,
        100,
        |idx| if idx == 37 { u64::MAX } else { 0 },
        3,
        100_000,
    )
    .expect("lone survivor solves");
    assert!(report.is_solved());
    assert_eq!(report.solver.map(|s| s.0), Some(37));
}

#[test]
fn staggered_crash_wave_during_reduce_is_tolerated() {
    // Crashes spread over the Reduce step (rounds 1..=8): knocked-out-to-be
    // nodes disappearing early only *reduces* contention.
    for seed in 0..10 {
        let report = run_with_crashes(64, 1 << 12, 400, |idx| 1 + (idx as u64 % 8), seed, 100_000);
        // The entire population crashes within 8 rounds; a solve only
        // happens if some lone transmission landed first. Either outcome
        // (solve, or a clean everyone-terminated end) is acceptable — what
        // must not happen is a simulation error other than timeout.
        match report {
            Ok(_) => {}
            Err(SimError::Timeout { .. }) => {}
            Err(e) => panic!("seed {seed}: unexpected error {e}"),
        }
    }
}

#[test]
fn crashing_every_cohort_coordinator_wedges_leaf_election() {
    // The honest negative result: LeafElection's cohorts assume their
    // members stay; crash-stop faults inside the election can silence a
    // round the protocol's search interprets as "no collision", wedging
    // progress. We crash every node at round 30 (typically mid-election for
    // this configuration) and expect a timeout, not a wrong answer:
    // split-brain (two leaders) must never occur even under crashes.
    let result = std::panic::catch_unwind(|| run_with_crashes(256, 1 << 12, 300, |_| 30, 5, 2_000));
    match result {
        Ok(Ok(report)) => {
            // Solved before the crash wave hit, or survivors limped through.
            assert!(report.leaders.len() <= 1, "split brain under crashes");
        }
        Ok(Err(SimError::Timeout { .. })) => {} // wedged: expected
        Ok(Err(e)) => panic!("unexpected error: {e}"),
        // Debug builds may trip protocol assertions (e.g. a cohort hearing
        // silence where the paper's model guarantees a broadcast) — that is
        // the fault being *detected*, which is also acceptable.
        Err(_) => {}
    }
}
