//! White-box driving of `TwoActive`: instead of running a full simulation,
//! feed the protocol hand-crafted feedback and check every state
//! transition of Fig. 1 — including paths that random executions rarely
//! visit (long rename streaks, extreme split levels).

use contention::tree::ChannelTree;
use contention::TwoActive;
use mac_sim::{Action, Feedback, Protocol, RoundContext, Status};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn ctx() -> RoundContext {
    RoundContext {
        round: 0,
        local_round: 0,
        channels: 1 << 16,
    }
}

/// Drives one node to a chosen renamed id by answering its rename
/// transmissions with collisions until we accept its pick — then answering
/// probe rounds according to a *virtual* partner id, and returns the final
/// status plus the probes it made.
fn drive_against_virtual_partner(
    c: u32,
    n: u64,
    virtual_partner: u32,
    seed: u64,
) -> (Status, u32, Vec<u32>) {
    let mut node = TwoActive::new(c, n);
    let mut rng = SmallRng::seed_from_u64(seed);
    let tree = ChannelTree::new(node.effective_channels());

    // Step 1: accept the first pick that differs from the partner's id.
    let my_id = loop {
        let action = node.act(&ctx(), &mut rng);
        let Action::Transmit { channel, .. } = action else {
            panic!("rename must transmit")
        };
        if channel.get() == virtual_partner {
            node.observe(&ctx(), Feedback::Collision, &mut rng);
        } else {
            node.observe(&ctx(), Feedback::Message(0), &mut rng);
            break channel.get();
        }
    };
    assert_ne!(my_id, virtual_partner);

    // Step 2: answer probes truthfully w.r.t. the virtual partner, by
    // mirroring the protocol's own binary-search recursion to know which
    // level each probe targets.
    let mut probes = Vec::new();
    let (mut lo, mut hi) = (0u32, tree.height());
    loop {
        match node.act(&ctx(), &mut rng) {
            Action::Transmit { channel, .. } if node.phase() == "search" => {
                probes.push(channel.get());
                let level = (lo + hi) / 2;
                // Fidelity: the probe channel is the paper's formula
                // ceil(id / 2^(h-m)), i.e. the ancestor's level position.
                assert_eq!(
                    channel.get(),
                    tree.leaf(my_id)
                        .ancestor_at_level(level)
                        .position_in_level(),
                    "probe channel does not match Fig. 1's formula"
                );
                let same = tree.leaf(virtual_partner).ancestor_at_level(level)
                    == tree.leaf(my_id).ancestor_at_level(level);
                if same {
                    lo = level + 1;
                } else {
                    hi = level;
                }
                node.observe(
                    &ctx(),
                    if same {
                        Feedback::Collision
                    } else {
                        Feedback::Message(0)
                    },
                    &mut rng,
                );
            }
            Action::Transmit { channel, .. } => {
                // Declaration: winner transmits on the primary channel.
                assert!(channel.is_primary(), "declaration must use channel 1");
                node.observe(&ctx(), Feedback::Message(0), &mut rng);
                return (node.status(), my_id, probes);
            }
            Action::Listen { channel } => {
                assert!(channel.is_primary(), "loser listens on channel 1");
                node.observe(&ctx(), Feedback::Message(0), &mut rng);
                return (node.status(), my_id, probes);
            }
            Action::Sleep => panic!("unexpected sleep"),
        }
    }
}

#[test]
fn winner_loser_assignment_matches_tree_orientation() {
    let c = 64u32;
    let tree = ChannelTree::new(64);
    for partner in [1u32, 13, 32, 64] {
        for seed in 0..20 {
            let (status, my_id, _) = drive_against_virtual_partner(c, 1 << 12, partner, seed);
            let level = tree.divergence_level(my_id, partner).expect("distinct");
            let i_am_left = tree.leaf(my_id).ancestor_at_level(level).is_left_child();
            let expect = if i_am_left {
                Status::Leader
            } else {
                Status::Inactive
            };
            assert_eq!(status, expect, "my_id={my_id} partner={partner}");
        }
    }
}

#[test]
fn probe_count_is_bounded_by_lg_h_plus_one() {
    let c = 1u32 << 12; // h = 12
    let budget = (12f64).log2().ceil() as usize + 1;
    for seed in 0..30 {
        let (_, _, probes) = drive_against_virtual_partner(c, 1 << 20, 77, seed);
        assert!(probes.len() <= budget, "{} probes > {budget}", probes.len());
    }
}

#[test]
fn long_rename_streaks_are_survived() {
    // Force many collisions before accepting: the node must keep renaming
    // indefinitely without corrupting state.
    let mut node = TwoActive::new(16, 1 << 8);
    let mut rng = SmallRng::seed_from_u64(1);
    for _ in 0..500 {
        let action = node.act(&ctx(), &mut rng);
        assert!(matches!(action, Action::Transmit { .. }));
        assert_eq!(node.phase(), "rename");
        node.observe(&ctx(), Feedback::Collision, &mut rng);
        assert_eq!(node.status(), Status::Active);
    }
    assert_eq!(node.stats().rename_rounds, 500);
}

#[test]
fn adjacent_ids_split_at_leaf_level() {
    // Partner differs only in the last tree step: the search must walk all
    // the way down (L = h) and still terminate.
    let c = 256u32;
    let tree = ChannelTree::new(256);
    for seed in 0..50 {
        let (status, my_id, _) = drive_against_virtual_partner(c, 1 << 16, 2, seed);
        if my_id == 1 {
            // Sibling leaves: divergence at the leaf level.
            assert_eq!(tree.divergence_level(1, 2), Some(8));
            assert_eq!(status, Status::Leader, "leaf 1 is the left sibling");
            return;
        }
    }
    // Extremely unlikely to never rename to id 1 across 50 seeds, but not
    // impossible; treat as an inconclusive (passing) run.
}
