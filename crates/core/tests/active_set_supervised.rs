//! Active-set ↔ dense-reference equivalence for the *supervised* paper
//! stack: the full algorithm wrapped in [`contention::Supervised`]
//! restart-with-backoff, run under fault layers that actually trigger
//! restarts (jamming, crash-stop).
//!
//! This is the top-of-stack leg of the equivalence suite
//! (`crates/mac-sim/tests/active_set_equivalence.rs` covers the engine in
//! isolation): [`PhaseProtocol`]'s settled-status cache, the supervision
//! wrapper's restart counters, and the engine's retirement transitions all
//! interact here, and the scheduler swap must not change a single bit of
//! the outcome.

use contention::{supervised_paper_node, Params, RestartPolicy};
use mac_sim::dense::DenseEngine;
use mac_sim::fault::{CrashStop, JamBudget, Layered};
use mac_sim::{CdMode, FeedbackModel, Metrics, NodeId, Protocol, RunReport, SimConfig, Status};
use proptest::prelude::*;

type Fingerprint = (
    Option<u64>,
    Option<NodeId>,
    u64,
    Vec<NodeId>,
    Vec<NodeId>,
    Metrics,
    Vec<Status>,
);

fn config(seed: u64, channels: u32) -> SimConfig {
    SimConfig::new(channels).seed(seed).max_rounds(5_000_000)
}

const N_NAMESPACE: u64 = 1 << 16;

/// Builds the same supervised fleet on either engine and fingerprints the
/// run: full report plus every node's final status (read back through the
/// engine, which exercises retired-slot state access).
fn run_fleet(seed: u64, channels: u32, active: usize, dense: bool, fault: Fault) -> Fingerprint {
    fn drive<F: FeedbackModel>(
        seed: u64,
        channels: u32,
        active: usize,
        dense: bool,
        feedback: F,
    ) -> Fingerprint {
        let policy = RestartPolicy::new(2_500_000, 4);
        let node =
            |_: usize| supervised_paper_node(Params::practical(), channels, N_NAMESPACE, policy);
        let (report, statuses): (RunReport, Vec<Status>) = if dense {
            let mut eng = DenseEngine::with_feedback(config(seed, channels), feedback);
            for i in 0..active {
                eng.add_node(node(i));
            }
            let report = eng.run().expect("supervised fleet solves");
            let statuses = (0..active).map(|i| eng.node(NodeId(i)).status()).collect();
            (report, statuses)
        } else {
            let mut eng = mac_sim::Engine::with_feedback(config(seed, channels), feedback);
            for i in 0..active {
                eng.add_node(node(i));
            }
            let report = eng.run().expect("supervised fleet solves");
            let statuses = (0..active).map(|i| eng.node(NodeId(i)).status()).collect();
            (report, statuses)
        };
        (
            report.solved_round,
            report.solver,
            report.rounds_executed,
            report.leaders,
            report.active_remaining,
            report.metrics,
            statuses,
        )
    }

    match fault {
        Fault::Jam(budget) => drive(
            seed,
            channels,
            active,
            dense,
            JamBudget::new(CdMode::Strong, budget),
        ),
        Fault::Crash(f, window) => drive(
            seed,
            channels,
            active,
            dense,
            Layered::new(
                CrashStop::random(f.min(active), active, window),
                CdMode::Strong,
            ),
        ),
    }
}

#[derive(Debug, Clone, Copy)]
enum Fault {
    Jam(u64),
    Crash(usize, u64),
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Supervised fleets under reactive jamming: the jam vetoes would-be
    /// solves, forcing extra rounds (and potentially restarts), and both
    /// schedulers must agree bit for bit.
    #[test]
    fn supervised_jammed_fleet_matches_dense(
        seed in 1u64..1_000_000,
        budget in 1u64..3,
        active in 2usize..6,
    ) {
        let fault = Fault::Jam(budget);
        prop_assert_eq!(
            run_fleet(seed, 8, active, false, fault),
            run_fleet(seed, 8, active, true, fault)
        );
    }

    /// Supervised fleets losing nodes to crash-stop: retirement through the
    /// fault path must commute with supervision on both schedulers.
    #[test]
    fn supervised_crashed_fleet_matches_dense(
        seed in 1u64..1_000_000,
        f in 1usize..2,
        active in 3usize..6,
    ) {
        let fault = Fault::Crash(f, 64);
        prop_assert_eq!(
            run_fleet(seed, 8, active, false, fault),
            run_fleet(seed, 8, active, true, fault)
        );
    }
}
