//! Stage-boundary round accounting for the composed pipeline.
//!
//! `FullStats::reduce_rounds` / `id_reduction_rounds` / `election_rounds`
//! are views over the per-phase telemetry spine, and phase handoffs happen
//! at observe/act round boundaries with no round lost or double-counted —
//! so for the node that solves the run (it participates in *every* round up
//! to the solving one), the per-stage counters must sum to exactly the
//! engine's reported rounds-to-solve. This holds on the pipeline path and,
//! via the spine's `cd-tournament` record, on the small-`C` fallback path.

use contention::phase::PhaseTelemetry;
use contention::{FullAlgorithm, Params};
use mac_sim::{Engine, NodeId, SimConfig, StopWhen};

fn solve(c: u32, n: u64, active: usize, seed: u64) -> (u64, NodeId, Engine<FullAlgorithm>) {
    let cfg = SimConfig::new(c)
        .seed(seed)
        .stop_when(StopWhen::Solved)
        .max_rounds(1_000_000);
    let mut exec = Engine::new(cfg);
    for _ in 0..active {
        exec.add_node(FullAlgorithm::new(Params::practical(), c, n));
    }
    let report = exec.run().expect("run solves");
    let rounds = report.rounds_to_solve().expect("solved");
    let solver = report.solver.expect("solved runs name a solver");
    (rounds, solver, exec)
}

#[test]
fn stage_counters_sum_to_total_rounds_on_the_pipeline_path() {
    // C = 64 is above the fallback threshold: the stack is the 3-step
    // pipeline, and the three FullStats counters must account for every
    // engine round of the solver's run.
    for seed in 0..10u64 {
        let (rounds, solver, exec) = solve(64, 1 << 12, 400, seed);
        let stats = exec.node(solver).stats();
        assert!(!stats.used_fallback);
        assert_eq!(
            stats.reduce_rounds + stats.id_reduction_rounds + stats.election_rounds,
            rounds,
            "seed {seed}: stage counters must sum to rounds-to-solve {rounds} (stats {stats:?})"
        );
    }
}

#[test]
fn stage_counters_sum_to_total_rounds_on_the_fallback_path() {
    // C = 2 is below the fallback threshold: the whole run is the
    // single-channel tournament. The three pipeline counters stay zero and
    // the spine's cd-tournament record carries the full round count.
    for seed in 0..10u64 {
        let (rounds, solver, exec) = solve(2, 1 << 12, 100, seed);
        let node = exec.node(solver);
        let stats = node.stats();
        assert!(stats.used_fallback);
        assert_eq!(
            stats.reduce_rounds + stats.id_reduction_rounds + stats.election_rounds,
            0,
            "seed {seed}: pipeline counters must stay zero under fallback"
        );
        let spine = node.phase_stats();
        assert_eq!(spine.len(), 1, "fallback spine is a single record");
        assert_eq!(spine[0].name, "cd-tournament");
        assert_eq!(
            spine[0].rounds, rounds,
            "seed {seed}: the tournament record must account for every round"
        );
    }
}

#[test]
fn every_node_spine_is_bounded_by_the_run_and_ordered() {
    // Non-solver nodes may retire early; their spines still may not exceed
    // the run length, and records appear in pipeline order.
    let (rounds, _, exec) = solve(64, 1 << 12, 400, 42);
    let order = ["reduce", "id-reduction", "leaf-election"];
    for node in exec.iter_nodes() {
        let spine = node.phase_stats();
        let total: u64 = spine.iter().map(|r| r.rounds).sum();
        assert!(total <= rounds);
        let positions: Vec<usize> = spine
            .iter()
            .map(|r| {
                order
                    .iter()
                    .position(|o| *o == r.name)
                    .expect("known phase")
            })
            .collect();
        assert!(
            positions.windows(2).all(|w| w[0] < w[1]),
            "spine out of pipeline order: {spine:?}"
        );
        // The stats view agrees with the spine it is derived from.
        let stats = node.stats();
        assert_eq!(
            stats.reduce_rounds + stats.id_reduction_rounds + stats.election_rounds,
            total
        );
    }
}
