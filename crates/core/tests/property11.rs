//! Mid-execution verification of Property 11 (the cohort invariant that
//! Lemma 14 proves inductively).
//!
//! The paper's correctness argument rests on four structural facts holding
//! at the start of every phase; in this implementation the cohort fields
//! `(cSize, cID, cNode)` are updated atomically at pairing instants, so the
//! invariant must in fact hold at **every round boundary**. The simulator's
//! stepping API makes that directly checkable: advance one round, audit the
//! survivors, repeat.
//!
//! 1. every active node belongs to a cohort (has consistent fields);
//! 2. all active cohorts have the same size `cSize`;
//! 3. within a cohort, `cID`s are exactly `{1, …, cSize}`;
//! 4. all cohort nodes are distinct tree nodes at the same level.

use contention::LeafElection;
use mac_sim::{Engine, Protocol as _, SimConfig, Status, StepStatus, StopWhen};
use std::collections::HashMap;

/// Audits Property 11 over the active nodes of an execution.
fn audit(nodes: &[&LeafElection], round: u64) {
    if nodes.is_empty() {
        return;
    }
    let c_size = nodes[0].cohort_size();
    let level = nodes[0].cohort_node().level();
    let mut cohorts: HashMap<u32, Vec<u32>> = HashMap::new();
    for node in nodes {
        assert_eq!(
            node.cohort_size(),
            c_size,
            "round {round}: cohort sizes diverged"
        );
        assert_eq!(
            node.cohort_node().level(),
            level,
            "round {round}: cohort nodes at different levels"
        );
        cohorts
            .entry(node.cohort_node().heap_index())
            .or_default()
            .push(node.cohort_id());
    }
    for (c_node, mut cids) in cohorts {
        cids.sort_unstable();
        let expect: Vec<u32> = (1..=c_size).collect();
        assert_eq!(
            cids, expect,
            "round {round}: cohort at tree node {c_node} has cIDs != [1..={c_size}]"
        );
    }
}

/// Steps an election to completion, auditing after every round.
fn stepped_audit(c: u32, ids: &[u32], seed: u64) {
    let cfg = SimConfig::new(c)
        .seed(seed)
        .stop_when(StopWhen::AllTerminated)
        .max_rounds(10_000);
    let mut exec = Engine::new(cfg);
    for &id in ids {
        exec.add_node(LeafElection::new(c, id));
    }
    let mut rounds = 0u64;
    loop {
        let status = exec.step().expect("steps");
        rounds += 1;
        assert!(rounds < 10_000, "election did not terminate");
        let active: Vec<&LeafElection> = exec
            .iter_nodes()
            .filter(|n| n.status() == Status::Active)
            .collect();
        audit(&active, exec.current_round());
        // Cohort sizes are powers of two throughout.
        for node in &active {
            assert!(node.cohort_size().is_power_of_two());
            assert!(node.cohort_id() >= 1 && node.cohort_id() <= node.cohort_size());
        }
        if status == StepStatus::Finished {
            break;
        }
    }
    let report = exec.report();
    assert_eq!(report.leaders.len(), 1, "exactly one leader at the end");
}

#[test]
fn property_11_holds_at_every_round_boundary_dense() {
    let ids: Vec<u32> = (1..=32).collect();
    stepped_audit(64, &ids, 0);
}

#[test]
fn property_11_holds_at_every_round_boundary_sparse() {
    let ids = [3u32, 9, 17, 21, 60, 77, 100, 128, 2, 90];
    stepped_audit(256, &ids, 0);
}

#[test]
fn property_11_holds_for_sibling_pairs() {
    // Adjacent leaves merge in phase one; the invariant must survive the
    // very first pairings.
    let ids = [1u32, 2, 5, 6, 9, 10, 13, 14];
    stepped_audit(64, &ids, 0);
}

#[test]
fn property_11_holds_across_many_shapes() {
    for (c, ids) in [
        (16u32, vec![1u32, 8]),
        (16, (1..=8).collect::<Vec<u32>>()),
        (128, vec![1, 2, 3, 4, 33, 34, 35, 36]),
        (512, vec![5, 250, 13, 77, 200, 199]),
        (1024, (1..=64).collect()),
    ] {
        stepped_audit(c, &ids, 3);
    }
}

#[test]
fn binary_search_ablation_preserves_property_11() {
    // The E13 ablation variant must keep the same invariants.
    let cfg = SimConfig::new(256)
        .seed(1)
        .stop_when(StopWhen::AllTerminated)
        .max_rounds(10_000);
    let mut exec = Engine::new(cfg);
    for id in 1..=64u32 {
        exec.add_node(LeafElection::with_binary_search(256, id));
    }
    loop {
        let status = exec.step().expect("steps");
        let active: Vec<&LeafElection> = exec
            .iter_nodes()
            .filter(|n| n.status() == Status::Active)
            .collect();
        audit(&active, exec.current_round());
        if status == StepStatus::Finished {
            break;
        }
    }
    assert_eq!(exec.report().leaders.len(), 1);
}
