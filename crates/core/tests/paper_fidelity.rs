//! Pseudocode-fidelity tests: the executed round/channel schedules match
//! the paper's figures, checked against recorded channel traces.

use contention::{IdReduction, LeafElection, Params, Reduce, TwoActive};
use mac_sim::{Engine, SimConfig, StopWhen, TraceLevel};

/// Fig. 2: `Reduce` runs exactly `2·⌈lg lg n⌉` rounds when no leader
/// emerges, all of them on the primary channel only.
#[test]
fn reduce_round_schedule_matches_figure_2() {
    let n = 1u64 << 32; // lg lg n = 5 -> 10 rounds
    let mut saw_full_schedule = false;
    for seed in 0..40 {
        let cfg = SimConfig::new(8)
            .seed(seed)
            .stop_when(StopWhen::AllTerminated)
            .trace_level(TraceLevel::Channels)
            .max_rounds(100);
        let mut exec = Engine::new(cfg);
        exec.add_node(Reduce::new(n));
        exec.add_node(Reduce::new(n));
        let report = exec.run().expect("terminates");
        // A run ends early only because a lone broadcast elected a leader;
        // otherwise it runs the exact 2·⌈lg lg n⌉ schedule.
        assert!(report.rounds_executed <= 10, "seed {seed}");
        if report.leaders.is_empty() {
            assert_eq!(report.rounds_executed, 10, "seed {seed}");
            saw_full_schedule = true;
        } else {
            assert!(report.is_solved(), "seed {seed}: leader without solve");
        }
        for rt in report.trace.rounds() {
            for oc in &rt.outcomes {
                assert!(oc.channel.is_primary(), "Reduce strayed to {}", oc.channel);
            }
        }
    }
    assert!(saw_full_schedule, "no seed exercised the full schedule");
}

/// §5.2: `IdReduction`'s schedule is (rename, report, reduce, …): rename
/// rounds use channels `1..=C/2`, report and reduction rounds use only the
/// primary channel.
#[test]
fn id_reduction_schedule_matches_section_5_2() {
    let c = 64u32;
    let cfg = SimConfig::new(c)
        .seed(3)
        .stop_when(StopWhen::AllTerminated)
        .trace_level(TraceLevel::Channels)
        .max_rounds(10_000);
    let mut exec = Engine::new(cfg);
    for _ in 0..40 {
        exec.add_node(IdReduction::new(Params::practical(), c));
    }
    let report = exec.run().expect("terminates");
    for rt in report.trace.rounds() {
        match rt.round % 3 {
            0 => {
                // Rename round: any channel in [C/2]; everyone transmits.
                for oc in &rt.outcomes {
                    assert!(
                        oc.channel.get() <= c / 2,
                        "round {}: rename used {}",
                        rt.round,
                        oc.channel
                    );
                }
            }
            _ => {
                // Report / reduction rounds live on the primary channel.
                for oc in &rt.outcomes {
                    assert!(
                        oc.channel.is_primary(),
                        "round {}: {} used off the primary channel",
                        rt.round,
                        oc.channel
                    );
                }
            }
        }
    }
}

/// §4: in every rename round of `TwoActive`, both nodes transmit (the
/// trace never shows a rename round with fewer than two transmitters
/// before the search begins), and the search's probes use channels that
/// are level positions, i.e. `≤ C`.
#[test]
fn two_active_everyone_transmits_until_renamed() {
    let c = 8u32;
    let cfg = SimConfig::new(c)
        .seed(5)
        .stop_when(StopWhen::AllTerminated)
        .trace_level(TraceLevel::Channels)
        .max_rounds(10_000);
    let mut exec = Engine::new(cfg);
    exec.add_node(TwoActive::new(c, 1 << 10));
    exec.add_node(TwoActive::new(c, 1 << 10));
    let report = exec.run().expect("terminates");
    for rt in report.trace.rounds() {
        let tx: usize = rt.outcomes.iter().map(|oc| oc.transmitters).sum();
        // Every round of TwoActive has both nodes transmitting, except the
        // final declaration round (1 transmitter + 1 listener).
        assert!(
            tx == 2 || (tx == 1 && rt.round + 1 == report.rounds_executed),
            "round {}: {tx} transmitters",
            rt.round
        );
    }
}

/// Fig. 3 / Lemma 16: every `SplitSearch` iteration costs exactly 5 rounds,
/// so per-phase search rounds are always multiples of 5.
#[test]
fn split_search_iterations_cost_exactly_five_rounds() {
    let c = 1u32 << 10;
    let cfg = SimConfig::new(c)
        .seed(7)
        .stop_when(StopWhen::AllTerminated)
        .max_rounds(100_000);
    let mut exec = Engine::new(cfg);
    for id in 1..=64u32 {
        exec.add_node(LeafElection::new(c, id));
    }
    let report = exec.run().expect("elects");
    assert_eq!(report.leaders.len(), 1);
    for node in exec.iter_nodes() {
        for (phase, rounds) in node.stats().search_rounds_by_phase.iter().enumerate() {
            assert_eq!(
                rounds % 5,
                0,
                "phase {}: {rounds} search rounds not a multiple of 5",
                phase + 1
            );
        }
    }
}

/// §3 transform: runners beacon on the primary channel in their odd local
/// rounds — verified from the trace of a lone runner (its beacons are the
/// only primary-channel activity).
#[test]
fn staggered_start_beacons_on_odd_local_rounds() {
    use contention::baselines::Decay;
    use contention::wakeup::{StaggeredStart, LISTEN_ROUNDS};

    // A lone wrapped node: listens LISTEN_ROUNDS rounds, then beacons on
    // odd steps. Its very first beacon solves the problem (lone on ch1).
    let cfg = SimConfig::new(4)
        .seed(2)
        .trace_level(TraceLevel::Channels)
        .max_rounds(100);
    let mut exec = Engine::new(cfg);
    exec.add_node(StaggeredStart::new(Decay::new(16)));
    let report = exec.run().expect("solves");
    assert_eq!(report.solved_round, Some(LISTEN_ROUNDS));
}

/// The full pipeline transitions between steps without skipping or
/// overlapping rounds: phase round counts sum to the execution length.
#[test]
fn full_pipeline_phase_accounting_is_complete() {
    use contention::FullAlgorithm;
    let cfg = SimConfig::new(64)
        .seed(11)
        .stop_when(StopWhen::AllTerminated)
        .max_rounds(100_000);
    let mut exec = Engine::new(cfg);
    for _ in 0..200 {
        exec.add_node(FullAlgorithm::new(Params::practical(), 64, 1 << 12));
    }
    let report = exec.run().expect("solves");
    assert_eq!(report.metrics.phases.total(), report.rounds_executed);
}

/// Budgets from `contention::theory` hold on live executions.
#[test]
fn theory_budgets_hold_end_to_end() {
    use contention::theory;
    // TwoActive.
    for (c, ne) in [(4u32, 12u32), (64, 16), (1024, 20)] {
        let n = 1u64 << ne;
        for seed in 0..10 {
            let cfg = SimConfig::new(c)
                .seed(seed)
                .stop_when(StopWhen::AllTerminated)
                .max_rounds(100_000);
            let mut exec = Engine::new(cfg);
            exec.add_node(TwoActive::new(c, n));
            exec.add_node(TwoActive::new(c, n));
            let report = exec.run().expect("solves");
            let budget = theory::two_active_budget(n, c);
            assert!(
                (report.rounds_executed as f64) <= budget,
                "C={c} n=2^{ne} seed={seed}: {} > {budget}",
                report.rounds_executed
            );
        }
    }
    // LeafElection, dense occupancy (worst case).
    for (c, x) in [(64u32, 32u32), (1024, 128)] {
        let cfg = SimConfig::new(c)
            .seed(3)
            .stop_when(StopWhen::AllTerminated)
            .max_rounds(100_000);
        let mut exec = Engine::new(cfg);
        for id in 1..=x {
            exec.add_node(LeafElection::new(c, id));
        }
        let report = exec.run().expect("elects");
        let h = (c / 2).trailing_zeros();
        let budget = theory::leaf_election_budget(h, x);
        assert!(
            (report.rounds_executed as f64) <= budget,
            "C={c} x={x}: {} > {budget}",
            report.rounds_executed
        );
    }
}
