//! White-box driving of `IdReduction`: hand-crafted feedback exercises
//! every branch of the three-round schedule deterministically.

use contention::{IdReduction, IdReductionOutcome, Params};
use mac_sim::{Action, Feedback, Protocol, RoundContext, Status};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn ctx() -> RoundContext {
    RoundContext {
        round: 0,
        local_round: 0,
        channels: 1 << 16,
    }
}

fn new_node(c: u32) -> (IdReduction, SmallRng) {
    (
        IdReduction::new(Params::practical(), c),
        SmallRng::seed_from_u64(7),
    )
}

#[test]
fn rename_alone_then_lone_report_terminates_renamed() {
    let (mut node, mut rng) = new_node(64);
    // Rename round: transmits on some channel in [1, 32].
    let action = node.act(&ctx(), &mut rng);
    let Action::Transmit { channel, .. } = action else {
        panic!("rename transmits")
    };
    assert!(channel.get() <= 32);
    // Alone: hears its own message.
    node.observe(&ctx(), Feedback::Message(0), &mut rng);
    // Report round: adopters transmit on the primary channel.
    let action = node.act(&ctx(), &mut rng);
    let Action::Transmit {
        channel: report_ch, ..
    } = action
    else {
        panic!("adopter reports")
    };
    assert!(report_ch.is_primary());
    // Lone reporter: message delivered; outcome Renamed(picked channel).
    node.observe(&ctx(), Feedback::Message(0), &mut rng);
    assert_eq!(
        node.outcome(),
        Some(IdReductionOutcome::Renamed(channel.get()))
    );
    assert_eq!(node.status(), Status::Inactive); // standalone semantics
}

#[test]
fn rename_alone_but_crowded_report_still_renames() {
    let (mut node, mut rng) = new_node(64);
    node.act(&ctx(), &mut rng);
    node.observe(&ctx(), Feedback::Message(0), &mut rng); // alone -> candidate
    node.act(&ctx(), &mut rng);
    // Multiple adopters: the report round collides — still a success.
    node.observe(&ctx(), Feedback::Collision, &mut rng);
    assert!(matches!(
        node.outcome(),
        Some(IdReductionOutcome::Renamed(_))
    ));
}

#[test]
fn rename_collision_then_silent_report_continues_to_reduction() {
    let (mut node, mut rng) = new_node(64);
    node.act(&ctx(), &mut rng);
    node.observe(&ctx(), Feedback::Collision, &mut rng); // not alone
                                                         // Report round: non-adopters listen.
    let action = node.act(&ctx(), &mut rng);
    assert!(matches!(action, Action::Listen { channel } if channel.is_primary()));
    node.observe(&ctx(), Feedback::Silence, &mut rng); // nobody renamed
    assert_eq!(node.outcome(), None);
    assert_eq!(node.phase(), "id-reduce");
}

#[test]
fn hearing_a_report_while_unrenamed_eliminates() {
    let (mut node, mut rng) = new_node(64);
    node.act(&ctx(), &mut rng);
    node.observe(&ctx(), Feedback::Collision, &mut rng);
    node.act(&ctx(), &mut rng);
    // Someone else renamed (lone or crowd — either signal ends the step).
    node.observe(&ctx(), Feedback::Message(0), &mut rng);
    assert_eq!(node.outcome(), Some(IdReductionOutcome::Eliminated));
}

#[test]
fn reduction_round_knocks_listeners_who_hear_traffic() {
    let (mut node, mut rng) = new_node(64);
    // Walk to the reduction round with no renaming anywhere.
    node.act(&ctx(), &mut rng);
    node.observe(&ctx(), Feedback::Collision, &mut rng);
    node.act(&ctx(), &mut rng);
    node.observe(&ctx(), Feedback::Silence, &mut rng);
    // Reduction round: transmit or listen (seeded: deterministic).
    let action = node.act(&ctx(), &mut rng);
    match action {
        Action::Listen { channel } => {
            assert!(channel.is_primary());
            node.observe(&ctx(), Feedback::Collision, &mut rng);
            assert_eq!(node.outcome(), Some(IdReductionOutcome::Eliminated));
        }
        Action::Transmit { channel, .. } => {
            // A transmitter survives the reduction round regardless.
            assert!(channel.is_primary());
            node.observe(&ctx(), Feedback::Collision, &mut rng);
            assert_eq!(node.outcome(), None);
            assert_eq!(node.phase(), "id-rename"); // schedule wrapped
        }
        Action::Sleep => panic!("reduction round never sleeps"),
    }
}

#[test]
fn silent_reduction_round_changes_nothing() {
    let (mut node, mut rng) = new_node(64);
    node.act(&ctx(), &mut rng);
    node.observe(&ctx(), Feedback::Collision, &mut rng);
    node.act(&ctx(), &mut rng);
    node.observe(&ctx(), Feedback::Silence, &mut rng);
    let action = node.act(&ctx(), &mut rng);
    if matches!(action, Action::Listen { .. }) {
        node.observe(&ctx(), Feedback::Silence, &mut rng);
        assert_eq!(node.outcome(), None, "silence must not eliminate");
    } else {
        node.observe(&ctx(), Feedback::Message(0), &mut rng);
        assert_eq!(node.outcome(), None, "a lone reducer survives");
    }
    assert_eq!(node.phase(), "id-rename");
}

#[test]
fn schedule_cycles_rename_report_reduce() {
    let (mut node, mut rng) = new_node(64);
    let phases: Vec<&'static str> = (0..6)
        .map(|i| {
            let phase = node.phase();
            let action = node.act(&ctx(), &mut rng);
            // Answer so that nothing terminates: collisions in rename,
            // silence in report, and silence for reduce listeners / message
            // for a lone reduce transmitter (its own).
            let fb = match i % 3 {
                0 => Feedback::Collision,
                1 => Feedback::Silence,
                _ => match action {
                    Action::Transmit { .. } => Feedback::Message(0),
                    _ => Feedback::Silence,
                },
            };
            node.observe(&ctx(), fb, &mut rng);
            phase
        })
        .collect();
    assert_eq!(
        phases,
        vec![
            "id-rename",
            "id-report",
            "id-reduce",
            "id-rename",
            "id-report",
            "id-reduce"
        ]
    );
    assert_eq!(node.stats().rename_rounds, 2);
    assert_eq!(node.stats().reduction_rounds, 2);
    assert_eq!(node.stats().total_rounds, 6);
}
