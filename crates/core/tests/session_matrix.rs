//! Exhaustive facade matrix: every algorithm × a grid of configurations,
//! through the `Session` API, with uniform invariants.

use contention::session::{Algorithm, Session, SessionError};
use contention::Params;

fn all_algorithms() -> Vec<Algorithm> {
    vec![
        Algorithm::Paper(Params::practical()),
        Algorithm::Paper(Params::paper()),
        Algorithm::CdTournament,
        Algorithm::BinaryDescent,
        Algorithm::TreeSplit,
        Algorithm::Willard,
        Algorithm::Decay,
        Algorithm::MultiChannelNoCd,
        Algorithm::ExpectedConstant,
    ]
}

#[test]
fn matrix_of_configurations_all_resolve() {
    for algo in all_algorithms() {
        for &(c, n, active) in &[
            (2u32, 1u64 << 6, 5usize),
            (16, 1 << 10, 100),
            (128, 1 << 12, 1000),
        ] {
            if c < algo.min_channels() {
                continue;
            }
            let res = Session::new(c, n)
                .algorithm(algo)
                .seed(7)
                .run(active)
                .unwrap_or_else(|e| panic!("{} C={c} n={n} |A|={active}: {e}", algo.name()));
            assert!(
                res.rounds().is_some(),
                "{} C={c} n={n} |A|={active}: unsolved",
                algo.name()
            );
        }
    }
}

#[test]
fn completion_mode_has_no_stragglers_for_terminating_algorithms() {
    // Algorithms whose nodes all terminate: the CD family.
    for algo in [
        Algorithm::Paper(Params::practical()),
        Algorithm::CdTournament,
        Algorithm::BinaryDescent,
        Algorithm::TreeSplit,
        Algorithm::Willard,
    ] {
        let res = Session::new(32, 1 << 10)
            .algorithm(algo)
            .seed(3)
            .run_to_completion(true)
            .run(64)
            .unwrap_or_else(|e| panic!("{}: {e}", algo.name()));
        assert!(
            res.report.active_remaining.is_empty(),
            "{}: stragglers {:?}",
            algo.name(),
            res.report.active_remaining
        );
        assert!(res.report.leaders.len() <= 1, "{}", algo.name());
    }
}

#[test]
fn determinism_through_the_facade() {
    for algo in all_algorithms() {
        let run = || {
            Session::new(32, 1 << 10)
                .algorithm(algo)
                .seed(11)
                .run(50)
                .map(|r| r.report.solved_round)
        };
        assert_eq!(run().ok(), run().ok(), "{}", algo.name());
    }
}

#[test]
fn min_channel_constraints_are_per_algorithm() {
    for algo in all_algorithms() {
        let session = Session::new(1, 1 << 8).algorithm(algo);
        let result = session.run(10);
        if algo.min_channels() > 1 {
            assert!(
                matches!(result, Err(SessionError::InvalidConfig(_))),
                "{} should reject C = 1",
                algo.name()
            );
        } else {
            assert!(result.is_ok(), "{} should run at C = 1", algo.name());
        }
    }
}

#[test]
fn names_are_distinct() {
    let mut names: Vec<&str> = all_algorithms().iter().map(|a| a.name()).collect();
    names.dedup(); // Paper appears twice (two constant sets), same name.
    let set: std::collections::HashSet<&str> = names.iter().copied().collect();
    assert_eq!(set.len(), names.len());
}
