//! Regression test for the `PhaseBreakdown` single-representative blind
//! spot under staggered wake-ups (the §3 transform).
//!
//! The engine's per-round phase label is the phase of the lowest-indexed
//! awake, active node. For the paper's globally synchronized algorithms
//! that single representative is exact — but under staggered wake-ups it
//! is not: a *low-indexed late waker* becomes the representative the
//! moment it wakes, and its `"wakeup-listen"` window relabels rounds the
//! actual runners spend mid-protocol. `mac_sim::obs::RunRecorder` closes
//! the blind spot: it labels every transmission/listen with the acting
//! node's own phase, so its spans overlap where phases genuinely ran
//! concurrently and its `phase_node_rounds` accounting stays exact.

use contention::wakeup::{StaggeredStart, LISTEN_ROUNDS};
use contention::{FullAlgorithm, Params};
use mac_sim::obs::{RunRecord, RunRecorder};
use mac_sim::{Engine, RunReport, SimConfig, StopWhen};

const C: u32 = 32;
const N: u64 = 1 << 10;
const FIRST_WAVE: u64 = 10;
const LATE_OFFSET: u64 = 6;

/// Node 0 wakes *late* while nodes 1..=10 wake at round 0. Low index +
/// late wake is exactly the adversarial shape for representative-based
/// accounting: from round `LATE_OFFSET` until it retires, node 0 is the
/// lowest-indexed active node and stamps every round `"wakeup-listen"`.
fn staggered_run(seed: u64) -> (RunReport, RunRecord) {
    let cfg = SimConfig::new(C)
        .seed(seed)
        .stop_when(StopWhen::Solved)
        .max_rounds(100_000);
    let mut exec = Engine::new(cfg);
    let node = |c, n| StaggeredStart::new(FullAlgorithm::new(Params::practical(), c, n));
    exec.add_node_at(node(C, N), LATE_OFFSET);
    for _ in 0..FIRST_WAVE {
        exec.add_node_at(node(C, N), 0);
    }
    let mut recorder = RunRecorder::new();
    let report = exec.run_observed(&mut recorder).expect("run solves");
    (report, recorder.into_record(seed))
}

/// A seed whose run lasts long enough for the late waker to actually wake,
/// listen, and retire while the first wave is still mid-protocol.
fn interesting_run() -> (RunReport, RunRecord) {
    for seed in 0..50u64 {
        let (report, record) = staggered_run(seed);
        let solved = report.solved_round.expect("solved");
        if solved > LATE_OFFSET + LISTEN_ROUNDS {
            return (report, record);
        }
    }
    panic!("no seed in 0..50 yields a long-enough staggered run");
}

#[test]
fn breakdown_mislabels_the_late_wakers_listen_window() {
    let (report, record) = interesting_run();

    // The blind spot itself: the representative breakdown books more than
    // one listen window's worth of rounds to "wakeup-listen" — the first
    // wave's 3 rounds plus every round node 0 spent listening, even though
    // the runners were mid-protocol during the latter.
    let breakdown = &report.metrics.phases;
    assert!(
        breakdown.rounds_in("wakeup-listen") > LISTEN_ROUNDS,
        "representative accounting should overcount wakeup-listen: {breakdown}"
    );

    // The recorder sees the same run as *two* wakeup-listen spans: the
    // first wave's window at rounds 0..3, and node 0's own window opening
    // at its wake round.
    let listen_spans: Vec<_> = record
        .spans
        .iter()
        .filter(|s| s.label == "wakeup-listen")
        .collect();
    assert_eq!(
        listen_spans.len(),
        2,
        "expected the first wave's window and the late waker's: {:?}",
        record.spans
    );
    assert_eq!(listen_spans[0].start_round, 0);
    assert_eq!(listen_spans[0].rounds, LISTEN_ROUNDS);
    let late_span = listen_spans[1];
    assert_eq!(late_span.start_round, LATE_OFFSET);

    // Spans overlap where phases genuinely ran concurrently: while node 0
    // listened, the runners were in some *other* phase.
    let concurrent = record.spans.iter().any(|s| {
        s.label != "wakeup-listen"
            && s.start_round <= late_span.end_round
            && late_span.start_round <= s.end_round
    });
    assert!(
        concurrent,
        "runner activity should overlap the late listen window: {:?}",
        record.spans
    );

    // Exact accounting: each first-wave node listens for exactly
    // LISTEN_ROUNDS; the late span's listen tally is node 0's alone.
    assert_eq!(
        record.node_rounds("wakeup-listen"),
        FIRST_WAVE * LISTEN_ROUNDS + late_span.listens,
        "phase_node_rounds must attribute every listen to its own phase"
    );
}

#[test]
fn beacon_rounds_are_pure_transmissions() {
    let (_, record) = interesting_run();
    // Every wakeup-beacon node-round is a transmission on the primary
    // channel — per-phase node-rounds and per-phase transmissions agree.
    let beacon_rounds = record.node_rounds("wakeup-beacon");
    assert!(beacon_rounds > 0, "runners must have beaconed");
    assert_eq!(beacon_rounds, record.phase_tx("wakeup-beacon"));
}

#[test]
fn recorder_accounting_is_conservative() {
    for seed in [3u64, 17, 29] {
        let (report, record) = staggered_run(seed);
        // Every action is attributed to exactly one phase: node-rounds sum
        // to transmissions + listens, per-phase transmissions sum to the
        // engine's total.
        let node_rounds: u64 = record.phase_node_rounds.iter().map(|(_, v)| v).sum();
        assert_eq!(node_rounds, record.transmissions + record.listens);
        let phase_tx: u64 = record.phase_transmissions.iter().map(|(_, v)| v).sum();
        assert_eq!(phase_tx, record.transmissions);
        // And the recorder's totals agree with the engine's own metrics.
        assert_eq!(record.transmissions, report.metrics.transmissions);
        assert_eq!(record.listens, report.metrics.listens);
        assert_eq!(record.rounds, report.rounds_executed);
    }
}
