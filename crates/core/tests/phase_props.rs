//! Property-based tests (proptest) over the phase combinators.
//!
//! Two families of invariants, referenced from the `contention::phase`
//! module docs:
//!
//! * **`Pass` is the identity for `and_then`** — splicing the no-op phase
//!   into a stack (as a prefix, a suffix, or between two real phases)
//!   leaves the engine-observable run bit-identical: same solve round,
//!   same executed rounds, same per-node transmissions, same telemetry
//!   spine. This is what makes the combinators algebra and not just
//!   plumbing: handoffs cost no rounds and consume no RNG.
//! * **`staggered()` costs at most ×2 + constant** — wrapping an arbitrary
//!   composed stack in the §3 wake-up transform solves within
//!   `2·T + 2·LISTEN_ROUNDS + 2` rounds of the unwrapped stack's `T`, for
//!   arbitrary seeds and populations, not just the hand-picked unit case.

use contention::baselines::CdTournament;
use contention::phase::{Pass, Phase, PhaseProtocol, PhaseStats, PhaseTelemetry};
use contention::wakeup::LISTEN_ROUNDS;
use contention::{Params, Reduce};
use mac_sim::{CdMode, Engine, Protocol, SimConfig, SimError, Status};
use proptest::prelude::*;

const N: u64 = 1 << 10;
const MODES: [CdMode; 3] = [CdMode::Strong, CdMode::ReceiverOnly, CdMode::None];

/// Everything the engine lets us observe about a run: the report's solve
/// fingerprint plus each node's terminal status and telemetry spine.
type Fingerprint = (Option<u64>, u64, Vec<u64>, Vec<(Status, Vec<PhaseStats>)>);

fn fingerprint<P>(
    c: u32,
    seed: u64,
    mode: CdMode,
    count: usize,
    build: impl Fn() -> P,
) -> Fingerprint
where
    P: Phase,
    PhaseProtocol<P>: Protocol + PhaseTelemetry,
{
    let cfg = SimConfig::new(c).seed(seed).cd_mode(mode).max_rounds(3_000);
    let mut exec = Engine::new(cfg);
    for _ in 0..count {
        exec.add_node(PhaseProtocol::new(build()));
    }
    let report = match exec.run() {
        Ok(report) => report,
        // Weak CD modes may time out by design; the partial run is still a
        // deterministic fingerprint the identity must preserve.
        Err(SimError::Timeout { .. }) => exec.report(),
        Err(e) => panic!("unexpected simulation error: {e}"),
    };
    let nodes = exec
        .iter_nodes()
        .map(|node| (node.status(), node.phase_stats()))
        .collect();
    (
        report.solved_round,
        report.rounds_executed,
        report.metrics.transmissions_per_node.clone(),
        nodes,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Prefix identity: `Pass.and_then(stack)` runs the stack unchanged —
    /// the instant handoff happens before the first `act`, costing no
    /// round and no RNG draw, under every CD mode.
    #[test]
    fn pass_prefix_is_identity(
        seed in any::<u64>(),
        count in 2usize..30,
        c in 1u32..8,
        mode_idx in 0usize..3,
    ) {
        let mode = MODES[mode_idx];
        let bare = fingerprint(c, seed, mode, count, CdTournament::new);
        let spliced = fingerprint(c, seed, mode, count, || {
            Pass::new(()).and_then(|()| CdTournament::new())
        });
        prop_assert_eq!(bare, spliced);
    }

    /// Suffix identity: a trailing `Pass` completes in the same `observe`
    /// that completes the real phase, so the composition terminates in the
    /// same round with the same spine.
    #[test]
    fn pass_suffix_is_identity(
        seed in any::<u64>(),
        count in 2usize..30,
        c_idx in 0usize..3,
    ) {
        let c = [8u32, 16, 32][c_idx];
        let params = Params::practical();
        let bare = fingerprint(c, seed, CdMode::Strong, count, || {
            Reduce::with_params(params, N)
        });
        let spliced = fingerprint(c, seed, CdMode::Strong, count, || {
            Reduce::with_params(params, N).and_then(|()| Pass::new(()))
        });
        prop_assert_eq!(bare, spliced);
    }

    /// Infix identity: splicing `Pass` *between* two real phases leaves the
    /// hybrid `Reduce -> CdTournament` stack round-for-round identical —
    /// the barrier handoff is exactly one handoff even with the no-op in
    /// the middle.
    #[test]
    fn pass_between_phases_is_identity(
        seed in any::<u64>(),
        count in 2usize..30,
        c_idx in 0usize..3,
    ) {
        let c = [8u32, 16, 32][c_idx];
        let params = Params::practical();
        let bare = fingerprint(c, seed, CdMode::Strong, count, || {
            Reduce::with_params(params, N).and_then(|()| CdTournament::new())
        });
        let spliced = fingerprint(c, seed, CdMode::Strong, count, || {
            Reduce::with_params(params, N)
                .and_then(|()| Pass::new(()))
                .and_then(|()| CdTournament::new())
        });
        prop_assert_eq!(bare, spliced);
    }
}

/// Measures an arbitrary stack bare and under `staggered()` (simultaneous
/// wake, so the ×2 simulation is the only overhead). Returns `None` when
/// the bare stack does not solve within the budget — the bound is about
/// overhead, so it only speaks when there is a baseline.
fn bare_and_staggered<P, F>(c: u32, seed: u64, count: usize, mut build: F) -> Option<(u64, u64)>
where
    P: Phase,
    F: FnMut() -> P,
{
    let base = {
        let mut exec = Engine::new(SimConfig::new(c).seed(seed).max_rounds(20_000));
        for _ in 0..count {
            exec.add_node(PhaseProtocol::new(build()));
        }
        exec.run().ok()?.rounds_to_solve()?
    };
    let wrapped = {
        let mut exec = Engine::new(SimConfig::new(c).seed(seed).max_rounds(60_000));
        for _ in 0..count {
            exec.add_node_at(build().staggered(), 0);
        }
        exec.run().ok()?.rounds_to_solve()?
    };
    Some((base, wrapped))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The §3 wake-up transform's overhead bound, for arbitrary composed
    /// stacks: `staggered()` solves within `2·T + 2·LISTEN_ROUNDS + 2`
    /// rounds of the unwrapped stack's `T` — the listen prefix plus the
    /// two-rounds-per-simulated-round slowdown, and nothing else.
    #[test]
    fn staggered_overhead_is_at_most_double_plus_constant(
        seed in any::<u64>(),
        count in 2usize..25,
        c_idx in 0usize..3,
        stack_idx in 0usize..3,
    ) {
        let c = [8u32, 16, 32][c_idx];
        let params = Params::practical();
        let measured = match stack_idx {
            0 => bare_and_staggered(c, seed, count, CdTournament::new),
            1 => bare_and_staggered(c, seed, count, || {
                Reduce::with_params(params, N).and_then(|()| CdTournament::new())
            }),
            _ => bare_and_staggered(c, seed, count, || {
                Reduce::with_params(params, N)
                    .and_then(|()| CdTournament::new())
                    .bounded(10_000)
            }),
        };
        if let Some((base, wrapped)) = measured {
            prop_assert!(
                wrapped <= 2 * base + 2 * LISTEN_ROUNDS + 2,
                "stack {}: wrapped {} vs base {}", stack_idx, wrapped, base
            );
        }
    }
}
