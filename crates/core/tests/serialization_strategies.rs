//! Comparing the two ways this crate can serve *all* contenders:
//! the generic [`contention::serialize::SerializeAll`] wrapper (repeat any
//! election) and the classic Capetanakis [`TreeSplit`] protocol.

use contention::baselines::TreeSplit;
use contention::serialize::SerializeAll;
use contention::{FullAlgorithm, Params};
use mac_sim::{Engine, SimConfig, StopWhen};

fn tree_split_drain(n: u64, ids: &[u64]) -> u64 {
    let cfg = SimConfig::new(1)
        .stop_when(StopWhen::AllTerminated)
        .max_rounds(10_000_000);
    let mut exec = Engine::new(cfg);
    for &id in ids {
        exec.add_node(TreeSplit::new(id, n));
    }
    let report = exec.run().expect("drains");
    assert!(exec.iter_nodes().all(|t| t.served_at().is_some()));
    report.rounds_executed
}

fn serializer_drain(c: u32, n: u64, k: usize, seed: u64) -> u64 {
    let cfg = SimConfig::new(c)
        .seed(seed)
        .stop_when(StopWhen::AllTerminated)
        .max_rounds(10_000_000);
    let mut exec = Engine::new(cfg);
    for payload in 0..k as u32 {
        let factory = move || FullAlgorithm::new(Params::practical(), c, n);
        exec.add_node(SerializeAll::new(factory, payload));
    }
    let report = exec.run().expect("drains");
    assert!(exec.iter_nodes().all(|s| s.served_at().is_some()));
    report.rounds_executed
}

/// Both strategies serve everyone; correctness parity on identical bursts.
#[test]
fn both_strategies_serve_everyone() {
    let n = 1u64 << 10;
    let k = 32usize;
    let ids: Vec<u64> = (0..k as u64).map(|i| i * (n / k as u64)).collect();
    let tree = tree_split_drain(n, &ids);
    let serial = serializer_drain(16, n, k, 3);
    assert!(tree > 0 && serial > 0);
}

/// For sparse bursts the deterministic tree algorithm is extremely
/// efficient (O(k·log(n/k))) — the reference point the generic serializer
/// pays a constant-factor premium against for its generality.
#[test]
fn tree_split_is_the_efficiency_reference_for_sparse_bursts() {
    let n = 1u64 << 14;
    let k = 16usize;
    let ids: Vec<u64> = (0..k as u64).map(|i| i * (n / k as u64) + 3).collect();
    let tree = tree_split_drain(n, &ids);
    let serial = serializer_drain(16, n, k, 5);
    assert!(
        tree < serial,
        "tree splitting ({tree}) should beat the generic serializer ({serial}) on sparse bursts"
    );
}

/// Per-contender service cost: the tree algorithm amortizes to O(log(n/k))
/// rounds per packet; check a generous constant across scales.
#[test]
fn per_packet_cost_scales_with_log_density() {
    for (n, k) in [(1u64 << 10, 8usize), (1 << 14, 64), (1 << 16, 16)] {
        let ids: Vec<u64> = (0..k as u64).map(|i| i * (n / k as u64)).collect();
        let rounds = tree_split_drain(n, &ids);
        let per = rounds as f64 / k as f64;
        let bound = 3.0 * ((n as f64 / k as f64).log2() + 2.0);
        assert!(
            per <= bound,
            "n={n} k={k}: {per:.1} rounds/packet > {bound:.1}"
        );
    }
}
