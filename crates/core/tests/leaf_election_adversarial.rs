//! Adversarial occupancy patterns for `LeafElection`: the activation
//! choices that stress specific parts of Fig. 3's logic.

use contention::tree::ChannelTree;
use contention::LeafElection;
use mac_sim::adversary::ActivationPattern;
use mac_sim::{Engine, RunReport, SimConfig, StopWhen};

fn run(c: u32, ids: &[u32]) -> (RunReport, Vec<LeafElection>) {
    let cfg = SimConfig::new(c)
        .stop_when(StopWhen::AllTerminated)
        .max_rounds(100_000);
    let mut exec = Engine::new(cfg);
    for &id in ids {
        exec.add_node(LeafElection::new(c, id));
    }
    let report = exec.run().expect("elects");
    let nodes = exec.iter_nodes().cloned().collect();
    (report, nodes)
}

/// Comb occupancy with stride ≥ 2: no two actives are siblings, so *every*
/// first-phase pairing attempt fails except where the comb aliases at a
/// higher level — maximal early retirement. The election must still finish
/// with exactly one leader.
#[test]
fn comb_occupancy_maximizes_retirement() {
    let c = 256u32; // 128 leaves
    for stride in [2u64, 4, 8] {
        let ids: Vec<u32> = ActivationPattern::Comb {
            k: (128 / stride) as usize,
            stride,
        }
        .materialize(128)
        .into_iter()
        .map(|x| x as u32 + 1)
        .collect();
        let (report, nodes) = run(c, &ids);
        assert_eq!(report.leaders.len(), 1, "stride {stride}");
        // With stride >= 2 the comb is self-similar one level up: the
        // surviving structure still coalesces. Verify the winner exists and
        // cohort invariants held to the end (winner has valid state).
        let winner = &nodes[report.leaders[0].0];
        assert!(winner.cohort_size().is_power_of_two());
    }
}

/// Two far-apart actives: the search interval starts at the leaf level and
/// must find divergence level 1 (they split immediately below the root) in
/// `O(lg h)` rounds.
#[test]
fn antipodal_pair_splits_at_level_one() {
    let c = 1u32 << 12; // 2048 leaves
    let tree = ChannelTree::new(2048);
    let (a, b) = (1u32, 2048u32);
    assert_eq!(tree.divergence_level(a, b), Some(1));
    let (report, _) = run(c, &[a, b]);
    assert_eq!(report.leaders.len(), 1);
    // One root check + one binary search over (0, 11] + pairing + final
    // root check; generous cap:
    assert!(report.rounds_executed <= 1 + 5 * 4 + 1 + 1 + 5 * 4 + 2);
}

/// Sibling-pair chains: actives arranged so pairings cascade — after phase
/// one the merged cohorts are again siblings one level up, and so on. The
/// maximally-coalescing pattern: every node survives to the final cohort.
#[test]
fn cascading_siblings_coalesce_completely() {
    let c = 64u32; // 32 leaves
    let ids: Vec<u32> = (1..=32).collect();
    let (report, nodes) = run(c, &ids);
    assert_eq!(report.leaders.len(), 1);
    let winner = &nodes[report.leaders[0].0];
    assert_eq!(winner.cohort_size(), 32, "full coalescence expected");
    // Everyone is in the final cohort: nobody retired.
    let in_final = nodes
        .iter()
        .filter(|n| n.cohort_size() == 32 && n.cohort_node() == winner.cohort_node())
        .count();
    assert_eq!(in_final, 32);
}

/// Half-dense, half-empty: actives pack the left subtree only. The first
/// divergence is found inside the left half; the right half's channels
/// never carry traffic.
#[test]
fn one_sided_occupancy() {
    let c = 256u32; // 128 leaves
    let ids: Vec<u32> = (1..=64).collect(); // entire left subtree
    let cfg = SimConfig::new(c)
        .stop_when(StopWhen::AllTerminated)
        .trace_level(mac_sim::TraceLevel::Channels)
        .max_rounds(100_000);
    let mut exec = Engine::new(cfg);
    for &id in &ids {
        exec.add_node(LeafElection::new(c, id));
    }
    let report = exec.run().expect("elects");
    assert_eq!(report.leaders.len(), 1);
    // Tree nodes fully inside the right half of the tree (heap indices
    // whose path starts 1->3) must never be transmitted on, except row
    // channels (leftmost per level, always in the left half) and the root.
    for rt in report.trace.rounds() {
        for oc in &rt.outcomes {
            if oc.transmitters == 0 {
                continue;
            }
            let mut v = oc.channel.get();
            // Walk up to find the depth-1 ancestor.
            while v > 3 {
                v >>= 1;
            }
            assert_ne!(
                v, 3,
                "round {}: traffic on {} inside the empty right subtree",
                rt.round, oc.channel
            );
        }
    }
}

/// The degenerate two-leaf tree (C = 4): still a correct election for both
/// occupancy patterns.
#[test]
fn smallest_tree_edge_cases() {
    for ids in [vec![1u32], vec![2], vec![1, 2]] {
        let (report, _) = run(4, &ids);
        assert_eq!(report.leaders.len(), 1, "ids {ids:?}");
        assert!(report.is_solved());
    }
}
