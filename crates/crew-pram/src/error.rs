//! PRAM simulation errors.

use std::error::Error;
use std::fmt;

/// Errors produced by [`crate::Machine::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PramError {
    /// Two or more processors wrote the same memory cell in the same step —
    /// forbidden by the Exclusive-Write rule of the CREW model.
    WriteConflict {
        /// The contended memory address.
        addr: usize,
        /// The step in which the conflict occurred.
        step: usize,
        /// Ids of (the first two) conflicting processors.
        processors: (usize, usize),
    },
    /// A processor read or wrote outside the allocated shared memory.
    AddressOutOfBounds {
        /// The offending address.
        addr: usize,
        /// The memory size.
        memory: usize,
    },
    /// The program did not halt within the step cap.
    StepLimit {
        /// The configured cap that was hit.
        max_steps: usize,
    },
    /// The machine was started with no processors.
    NoProcessors,
}

impl fmt::Display for PramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PramError::WriteConflict {
                addr,
                step,
                processors,
            } => write!(
                f,
                "CREW violation: processors {} and {} both wrote cell {addr} in step {step}",
                processors.0, processors.1
            ),
            PramError::AddressOutOfBounds { addr, memory } => {
                write!(
                    f,
                    "address {addr} out of bounds for memory of {memory} cells"
                )
            }
            PramError::StepLimit { max_steps } => {
                write!(f, "program did not halt within {max_steps} steps")
            }
            PramError::NoProcessors => f.write_str("machine started with no processors"),
        }
    }
}

impl Error for PramError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = PramError::WriteConflict {
            addr: 4,
            step: 9,
            processors: (1, 2),
        };
        let s = e.to_string();
        assert!(s.contains("cell 4"));
        assert!(s.contains("step 9"));
        assert!(PramError::NoProcessors
            .to_string()
            .contains("no processors"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PramError>();
    }
}
