//! Parallel prefix sums (scan): `p` processors compute all prefixes of `p`
//! values in `⌈lg p⌉` CREW steps — the Hillis–Steele scan.
//!
//! Included as a third reference PRAM program (alongside Snir's search and
//! the max tournament) backing the paper's conclusion that cohort structure
//! can host classic parallel algorithms. In step `k`, processor `i` with
//! `i ≥ 2^k` adds the value at `i − 2^k` to its own cell; concurrent reads
//! are CREW-legal and every processor writes only its own cell.

use crate::error::PramError;
use crate::machine::{Machine, MemView, Processor, StepOutcome, Word, Write};

struct Scanner {
    pid: usize,
    p: usize,
}

impl Processor for Scanner {
    fn step(&mut self, step: usize, mem: &MemView<'_>) -> StepOutcome {
        let stride = 1usize << step;
        if stride >= self.p {
            return StepOutcome::done();
        }
        if self.pid < stride {
            return StepOutcome::idle();
        }
        let sum = mem.read(self.pid) + mem.read(self.pid - stride);
        StepOutcome::Continue(vec![Write::new(self.pid, sum)])
    }
}

/// Report of a scan run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanReport {
    /// Inclusive prefix sums of the input.
    pub prefixes: Vec<Word>,
    /// PRAM steps executed.
    pub steps: usize,
}

/// Computes inclusive prefix sums of `values` with one processor per value.
///
/// # Panics
///
/// Panics if `values` is empty.
///
/// # Errors
///
/// Propagates [`PramError`] from the machine.
pub fn prefix_sums(values: &[Word]) -> Result<ScanReport, PramError> {
    assert!(!values.is_empty(), "need at least one value");
    let p = values.len();
    let mut machine = Machine::new(p);
    for (i, &v) in values.iter().enumerate() {
        machine.store(i, v);
    }
    let mut procs: Vec<Box<dyn Processor>> = (0..p)
        .map(|pid| Box::new(Scanner { pid, p }) as Box<dyn Processor>)
        .collect();
    let max_steps = (usize::BITS - p.leading_zeros()) as usize + 2;
    let steps = machine.run(&mut procs, max_steps)?;
    Ok(ScanReport {
        prefixes: machine.memory().to_vec(),
        steps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_scan(values: &[Word]) -> Vec<Word> {
        values
            .iter()
            .scan(0, |acc, &v| {
                *acc += v;
                Some(*acc)
            })
            .collect()
    }

    #[test]
    fn matches_sequential_scan() {
        for p in 1..=64usize {
            let values: Vec<Word> = (0..p as Word).map(|i| (i * 7) % 13 - 5).collect();
            let report = prefix_sums(&values).expect("runs");
            assert_eq!(report.prefixes, reference_scan(&values), "p={p}");
            let budget = (p as f64).log2().ceil() as usize + 1;
            assert!(report.steps <= budget, "p={p}");
        }
    }

    #[test]
    fn single_element() {
        let report = prefix_sums(&[9]).expect("runs");
        assert_eq!(report.prefixes, vec![9]);
    }

    #[test]
    fn all_zeros() {
        let report = prefix_sums(&[0, 0, 0, 0]).expect("runs");
        assert_eq!(report.prefixes, vec![0, 0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "at least one value")]
    fn empty_input_panics() {
        let _ = prefix_sums(&[]);
    }
}
