//! Snir's `(p+1)`-ary parallel search, as a CREW PRAM program.
//!
//! Snir \[SIAM J. Comput. 1985\] showed that `p` CREW processors can locate
//! the boundary of a monotone predicate over `N` positions in
//! `Θ(log N / log(p+1))` iterations: each iteration splits the remaining
//! interval into `p+1` subranges, one processor probes each interior split
//! point, and (because the predicate is monotone) exactly one subrange
//! survives.
//!
//! `SplitSearch` in the paper's `LeafElection` (Fig. 3) is a
//! round-for-round *distributed simulation* of this program, with cohort
//! members standing in for processors and collision detection standing in
//! for the predicate probe. The `contention` crate's property tests check
//! that the two implementations visit identical intervals and return
//! identical answers.
//!
//! The search here maintains the same invariant as `SplitSearch`: over a
//! monotone 0→1 bit array `f` indexed `0..=m` with `f(lo) = 0` and
//! `f(hi) = 1` known, find `min { j : f(j) = 1 }` in `(lo, hi]`.

use crate::error::PramError;
use crate::machine::{Machine, MemView, Processor, StepOutcome, Word, Write};

/// Memory cell holding the interval's lower bound `lo`.
const CELL_LO: usize = 0;
/// Memory cell holding the interval's upper bound `hi`.
const CELL_HI: usize = 1;
/// First of `p` probe-result cells (one per processor).
const CELL_PROBES: usize = 2;

/// Result of a completed parallel search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchReport {
    /// The answer: the smallest index at which the predicate is 1 (for
    /// [`snir_boundary`]), or the lower-bound insertion index (for
    /// [`snir_lower_bound`]).
    pub index: usize,
    /// Number of `(p+1)`-ary iterations executed.
    pub iterations: usize,
    /// Number of raw PRAM steps executed (2 per iteration).
    pub steps: usize,
}

/// The split points `q_1 < q_2 < … < q_{k-1}` (interior) and `q_k = hi`
/// of one iteration over `(lo, hi]` with `p` processors; returns
/// `(seg, k)` where `q_i = lo + i·seg` for `i < k`.
///
/// `seg = ⌈(hi−lo)/(p+1)⌉` — the *p+1* here is the pseudocode repair
/// documented in DESIGN.md: Fig. 3 divides by `cSize`, which fails to
/// shrink the interval when `cSize = 1`; the prose ("subdivided into p+1
/// subranges") pins down the intended divisor.
#[must_use]
pub fn split_points(lo: usize, hi: usize, p: usize) -> (usize, usize) {
    debug_assert!(hi > lo);
    let range = hi - lo;
    let seg = range.div_ceil(p + 1);
    // k = smallest value with lo + k*seg >= hi.
    let k = range.div_ceil(seg);
    (seg, k)
}

/// One processor of the Snir search program.
struct Searcher {
    /// This processor's id in `0..p`.
    pid: usize,
    /// Total processor count `p`.
    p: usize,
    /// Memory offset such that `f(j)` lives at `pred_base + j` for `j ≥ 1`
    /// (`f(0) = 0` is virtual and never probed).
    pred_base: usize,
    /// Whether the next step is a probe step (A) or a decide step (B).
    probing: bool,
}

impl Searcher {
    /// Probe index handled by this processor: `j = pid + 1`.
    fn probe_index(&self) -> usize {
        self.pid + 1
    }
}

impl Processor for Searcher {
    fn step(&mut self, _step: usize, mem: &MemView<'_>) -> StepOutcome {
        let lo = mem.read(CELL_LO) as usize;
        let hi = mem.read(CELL_HI) as usize;

        if self.probing {
            // Step A: halt if the interval is resolved, otherwise probe.
            if hi - lo <= 1 {
                return StepOutcome::done();
            }
            self.probing = false;
            let (seg, k) = split_points(lo, hi, self.p);
            let j = self.probe_index();
            let result: Word = if j < k {
                let q = lo + j * seg;
                mem.read(self.pred_base + q)
            } else {
                -1 // this processor has no split point this iteration
            };
            StepOutcome::Continue(vec![Write::new(CELL_PROBES + self.pid, result)])
        } else {
            // Step B: everyone recomputes the surviving subrange locally
            // (concurrent reads are free in CREW); processor 0 writes it.
            self.probing = true;
            let (seg, k) = split_points(lo, hi, self.p);
            // Find the smallest j in 1..=k with f(q_j) = 1; f(q_k)=f(hi)=1.
            let mut j_star = k;
            for j in 1..k {
                if mem.read(CELL_PROBES + j - 1) == 1 {
                    j_star = j;
                    break;
                }
            }
            let new_lo = lo + (j_star - 1) * seg;
            let new_hi = if j_star == k { hi } else { lo + j_star * seg };
            if self.pid == 0 {
                StepOutcome::Continue(vec![
                    Write::new(CELL_LO, new_lo as Word),
                    Write::new(CELL_HI, new_hi as Word),
                ])
            } else {
                StepOutcome::idle()
            }
        }
    }
}

/// Finds the boundary of a monotone predicate with `p` PRAM processors.
///
/// `bits` is interpreted as `f(1), f(2), …, f(m)` with an implicit
/// `f(0) = 0`; it must be monotone non-decreasing and end in `1`. Returns
/// the smallest `j ≥ 1` with `f(j) = 1`, together with iteration counts.
///
/// # Panics
///
/// Panics if `p == 0`, if `bits` is empty, if `bits` is not monotone, or if
/// its last entry is not `1` (the invariant `f(hi) = 1` must hold).
///
/// # Errors
///
/// Propagates [`PramError`] from the underlying machine (a conflict or step
/// overrun would indicate a bug in the program itself).
pub fn snir_boundary(bits: &[bool], p: usize) -> Result<SearchReport, PramError> {
    assert!(p >= 1, "at least one processor is required");
    assert!(
        !bits.is_empty(),
        "the predicate must have at least one position"
    );
    assert!(
        bits.windows(2).all(|w| w[0] <= w[1]),
        "the predicate must be monotone 0 -> 1"
    );
    assert!(*bits.last().expect("nonempty"), "f(hi) = 1 must hold");

    let m = bits.len();
    let pred_base = CELL_PROBES + p;
    let mut machine = Machine::new(pred_base + m + 1);
    machine.store(CELL_LO, 0);
    machine.store(CELL_HI, m as Word);
    for (j, &b) in bits.iter().enumerate() {
        machine.store(pred_base + j + 1, Word::from(b));
    }

    let mut procs: Vec<Box<dyn Processor>> = (0..p)
        .map(|pid| {
            Box::new(Searcher {
                pid,
                p,
                pred_base,
                probing: true,
            }) as Box<dyn Processor>
        })
        .collect();

    // Each iteration is 2 steps and shrinks the interval to at most
    // ceil(range/(p+1)) positions, so 4·log2(m)+8 steps is generous.
    let max_steps = 4 * (usize::BITS - m.leading_zeros()) as usize + 8;
    let steps = machine.run(&mut procs, max_steps)?;

    let lo = machine.load(CELL_LO) as usize;
    let hi = machine.load(CELL_HI) as usize;
    debug_assert!(hi - lo <= 1);
    Ok(SearchReport {
        index: hi,
        iterations: steps / 2,
        steps,
    })
}

/// Parallel lower bound: the smallest index `i` with `sorted[i] >= target`
/// (or `sorted.len()` if no such element), found by [`snir_boundary`] with
/// `p` processors.
///
/// # Panics
///
/// Panics if `p == 0` or if `sorted` is not sorted in non-decreasing order.
///
/// # Errors
///
/// Propagates [`PramError`] from the underlying machine.
pub fn snir_lower_bound(
    sorted: &[Word],
    target: Word,
    p: usize,
) -> Result<SearchReport, PramError> {
    assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "input must be sorted non-decreasing"
    );
    // f(j) for j in 1..=N+1 means "the answer is < j", i.e. sorted[j-1] >= target
    // for j <= N, and f(N+1) = 1 unconditionally.
    let bits: Vec<bool> = (1..=sorted.len() + 1)
        .map(|j| j > sorted.len() || sorted[j - 1] >= target)
        .collect();
    let report = snir_boundary(&bits, p)?;
    Ok(SearchReport {
        index: report.index - 1,
        ..report
    })
}

/// The worst-case number of `(p+1)`-ary iterations needed to resolve a
/// search over `range` positions — the closed-form counterpart of
/// Lemma 16's `O(log_{p+1} h)` bound, computed by simulating the interval
/// shrink (`range → ⌈range/(p+1)⌉`).
#[must_use]
pub fn ideal_iterations(mut range: usize, p: usize) -> usize {
    assert!(p >= 1, "at least one processor is required");
    let mut iterations = 0;
    while range > 1 {
        range = range.div_ceil(p + 1);
        iterations += 1;
    }
    iterations
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_boundary(bits: &[bool]) -> usize {
        bits.iter().position(|&b| b).expect("has a 1") + 1
    }

    #[test]
    fn boundary_on_tiny_inputs() {
        assert_eq!(snir_boundary(&[true], 1).unwrap().index, 1);
        assert_eq!(snir_boundary(&[false, true], 1).unwrap().index, 2);
        assert_eq!(snir_boundary(&[true, true], 3).unwrap().index, 1);
    }

    #[test]
    fn boundary_matches_reference_for_all_positions() {
        for m in 1..=40 {
            for ans in 1..=m {
                let bits: Vec<bool> = (1..=m).map(|j| j >= ans).collect();
                for p in [1, 2, 3, 7, 16] {
                    let got = snir_boundary(&bits, p).unwrap();
                    assert_eq!(
                        got.index,
                        reference_boundary(&bits),
                        "m={m} ans={ans} p={p}"
                    );
                }
            }
        }
    }

    #[test]
    fn iterations_match_the_snir_bound() {
        // For p processors, iterations must be <= ideal (worst case) and the
        // ideal must track ceil(log_{p+1} m).
        for m in [4usize, 16, 64, 256, 1024] {
            for p in [1usize, 3, 7, 15] {
                let bits: Vec<bool> = (1..=m).map(|j| j > m / 2).collect();
                let got = snir_boundary(&bits, p).unwrap();
                let ideal = ideal_iterations(m, p);
                assert!(
                    got.iterations <= ideal,
                    "m={m} p={p}: {} > ideal {ideal}",
                    got.iterations
                );
                let log = (m as f64).ln() / ((p + 1) as f64).ln();
                assert!(
                    (ideal as f64) <= log.ceil() + 1.0,
                    "ideal {ideal} too far above log_(p+1)(m) = {log}"
                );
            }
        }
    }

    #[test]
    fn more_processors_never_slow_the_search() {
        let m = 512;
        let bits: Vec<bool> = (1..=m).map(|j| j >= 300).collect();
        let mut last = usize::MAX;
        for p in [1, 2, 4, 8, 16, 32] {
            let it = snir_boundary(&bits, p).unwrap().iterations;
            assert!(it <= last, "p={p} regressed: {it} > {last}");
            last = it;
        }
    }

    #[test]
    fn lower_bound_agrees_with_partition_point() {
        let sorted: Vec<Word> = vec![-5, -5, 0, 3, 3, 3, 9, 120];
        for target in [-10, -5, -1, 0, 1, 3, 4, 9, 120, 121] {
            for p in [1, 2, 5] {
                let got = snir_lower_bound(&sorted, target, p).unwrap().index;
                let want = sorted.partition_point(|&x| x < target);
                assert_eq!(got, want, "target={target} p={p}");
            }
        }
    }

    #[test]
    fn lower_bound_on_empty_slice() {
        assert_eq!(snir_lower_bound(&[], 5, 2).unwrap().index, 0);
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn non_monotone_predicate_panics() {
        let _ = snir_boundary(&[true, false, true], 1);
    }

    #[test]
    #[should_panic(expected = "f(hi) = 1")]
    fn all_zero_predicate_panics() {
        let _ = snir_boundary(&[false, false], 1);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_input_panics() {
        let _ = snir_lower_bound(&[3, 1], 2, 1);
    }

    #[test]
    fn split_points_shrink_interval() {
        // Every (lo, hi, p) must produce segments that strictly shrink.
        for range in 2..200 {
            for p in 1..10 {
                let (seg, k) = split_points(100, 100 + range, p);
                assert!(seg >= 1);
                assert!(k >= 1 && k <= p + 1, "range={range} p={p} k={k}");
                assert!(100 + (k - 1) * seg < 100 + range);
                assert!(100 + k * seg >= 100 + range);
                assert!(seg < range || range == 1 || k == 1);
            }
        }
    }

    #[test]
    fn ideal_iterations_small_cases() {
        assert_eq!(ideal_iterations(1, 1), 0);
        assert_eq!(ideal_iterations(2, 1), 1);
        assert_eq!(ideal_iterations(4, 1), 2);
        assert_eq!(ideal_iterations(4, 3), 1);
        assert_eq!(ideal_iterations(16, 3), 2);
    }
}
