//! Bitonic sort: `p` processors sort `p` values in `O(log² p)` CREW steps.
//!
//! The fourth reference program of this substrate (after search, max, and
//! prefix sums). Batcher's bitonic network is the classic synchronous
//! sorting algorithm: a fixed schedule of compare-exchange stages, each of
//! which touches disjoint pairs — so under CREW each pair's *lower-indexed*
//! processor reads both cells and writes both back with no write conflicts
//! (the partner idles that step).
//!
//! Requires a power-of-two input length (the standard bitonic restriction;
//! callers pad with sentinels if needed).

use crate::error::PramError;
use crate::machine::{Machine, MemView, Processor, StepOutcome, Word, Write};

/// The compare-exchange schedule of the bitonic network for `p = 2^k`
/// elements: a list of steps, each a list of `(i, j, ascending)` pairs with
/// `i < j`. Exposed for tests and for distributed simulations of the
/// network.
#[must_use]
pub fn bitonic_schedule(p: usize) -> Vec<Vec<(usize, usize, bool)>> {
    assert!(
        p.is_power_of_two(),
        "bitonic sort needs a power-of-two size"
    );
    let mut steps = Vec::new();
    let mut k = 2;
    while k <= p {
        let mut j = k / 2;
        while j >= 1 {
            let mut stage = Vec::new();
            for i in 0..p {
                let partner = i ^ j;
                if partner > i {
                    let ascending = i & k == 0;
                    stage.push((i, partner, ascending));
                }
            }
            steps.push(stage);
            j /= 2;
        }
        k *= 2;
    }
    steps
}

/// One processor of the bitonic sorter: processor `i` owns cell `i` and
/// performs the compare-exchange whenever it is the lower index of a pair.
struct BitonicProc {
    pid: usize,
    schedule: Vec<Vec<(usize, usize, bool)>>,
}

impl Processor for BitonicProc {
    fn step(&mut self, step: usize, mem: &MemView<'_>) -> StepOutcome {
        let Some(stage) = self.schedule.get(step) else {
            return StepOutcome::done();
        };
        // Find this processor's pair (it is the writer iff it leads one).
        let mine = stage.iter().find(|&&(i, _, _)| i == self.pid);
        let writes = match mine {
            None => Vec::new(),
            Some(&(i, j, ascending)) => {
                let (a, b) = (mem.read(i), mem.read(j));
                let out_of_order = if ascending { a > b } else { a < b };
                if out_of_order {
                    vec![Write::new(i, b), Write::new(j, a)]
                } else {
                    Vec::new()
                }
            }
        };
        if step + 1 == self.schedule.len() {
            StepOutcome::Halt(writes)
        } else {
            StepOutcome::Continue(writes)
        }
    }
}

/// Report of a sort run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SortReport {
    /// The sorted values, ascending.
    pub sorted: Vec<Word>,
    /// PRAM steps executed (`lg p · (lg p + 1) / 2`).
    pub steps: usize,
}

/// Sorts `values` ascending with one processor per value.
///
/// # Panics
///
/// Panics if `values` is empty or its length is not a power of two.
///
/// # Errors
///
/// Propagates [`PramError`] from the machine.
pub fn bitonic_sort(values: &[Word]) -> Result<SortReport, PramError> {
    assert!(!values.is_empty(), "need at least one value");
    let p = values.len();
    let schedule = bitonic_schedule(p);
    let mut machine = Machine::new(p);
    for (i, &v) in values.iter().enumerate() {
        machine.store(i, v);
    }
    if schedule.is_empty() {
        // p == 1: already sorted.
        return Ok(SortReport {
            sorted: values.to_vec(),
            steps: 0,
        });
    }
    let mut procs: Vec<Box<dyn Processor>> = (0..p)
        .map(|pid| {
            Box::new(BitonicProc {
                pid,
                schedule: schedule.clone(),
            }) as Box<dyn Processor>
        })
        .collect();
    let steps = machine.run(&mut procs, schedule.len() + 1)?;
    Ok(SortReport {
        sorted: machine.memory().to_vec(),
        steps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_all_power_of_two_sizes() {
        for k in 0..=7u32 {
            let p = 1usize << k;
            let values: Vec<Word> = (0..p as Word).map(|i| (i * 131) % 251 - 100).collect();
            let report = bitonic_sort(&values).expect("sorts");
            let mut want = values.clone();
            want.sort_unstable();
            assert_eq!(report.sorted, want, "p={p}");
        }
    }

    #[test]
    fn step_count_is_lg_squared() {
        let p = 64usize;
        let values: Vec<Word> = (0..p as Word).rev().collect();
        let report = bitonic_sort(&values).expect("sorts");
        let lg = 6;
        assert_eq!(report.steps, lg * (lg + 1) / 2);
    }

    #[test]
    fn schedule_pairs_are_disjoint_per_stage() {
        for stage in bitonic_schedule(32) {
            let mut seen = std::collections::HashSet::new();
            for (i, j, _) in stage {
                assert!(i < j);
                assert!(seen.insert(i), "index {i} in two pairs");
                assert!(seen.insert(j), "index {j} in two pairs");
            }
        }
    }

    #[test]
    fn duplicates_and_negatives() {
        let report = bitonic_sort(&[3, -1, 3, -1]).expect("sorts");
        assert_eq!(report.sorted, vec![-1, -1, 3, 3]);
    }

    #[test]
    fn singleton_is_trivial() {
        let report = bitonic_sort(&[9]).expect("sorts");
        assert_eq!(report.sorted, vec![9]);
        assert_eq!(report.steps, 0);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_power_of_two_panics() {
        let _ = bitonic_sort(&[1, 2, 3]);
    }
}
