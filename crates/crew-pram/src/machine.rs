//! The CREW PRAM machine: shared memory + lock-step processors.

use crate::error::PramError;

/// The machine word: every shared-memory cell holds one.
pub type Word = i64;

/// A single write request emitted by a processor at the end of a step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Write {
    /// Target memory address.
    pub addr: usize,
    /// Value to store.
    pub value: Word,
}

impl Write {
    /// Creates a write of `value` to `addr`.
    #[must_use]
    pub fn new(addr: usize, value: Word) -> Self {
        Write { addr, value }
    }
}

/// What a processor does in one step: the writes it emits, and whether it
/// halts afterwards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepOutcome {
    /// Keep running; apply these writes at the end of the step.
    Continue(Vec<Write>),
    /// Apply these writes, then halt permanently.
    Halt(Vec<Write>),
}

impl StepOutcome {
    /// A step that writes nothing and keeps running.
    #[must_use]
    pub fn idle() -> Self {
        StepOutcome::Continue(Vec::new())
    }

    /// A step that writes nothing and halts.
    #[must_use]
    pub fn done() -> Self {
        StepOutcome::Halt(Vec::new())
    }

    fn writes(&self) -> &[Write] {
        match self {
            StepOutcome::Continue(w) | StepOutcome::Halt(w) => w,
        }
    }

    fn halts(&self) -> bool {
        matches!(self, StepOutcome::Halt(_))
    }
}

/// Read-only view of shared memory handed to processors during a step.
///
/// Reads are concurrent — any number of processors may read any cell in the
/// same step (the *CR* in CREW).
#[derive(Debug)]
pub struct MemView<'a> {
    cells: &'a [Word],
}

impl MemView<'_> {
    /// Reads cell `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of bounds. (The machine validates program
    /// *writes* gracefully, but a read out of bounds is a program bug, not
    /// a data-dependent hazard, so it panics like slice indexing does.)
    #[must_use]
    pub fn read(&self, addr: usize) -> Word {
        self.cells[addr]
    }

    /// Number of cells in shared memory.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Returns `true` if the memory has no cells.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

/// A PRAM processor: a state machine advanced once per synchronous step.
pub trait Processor {
    /// Executes step `step` (0-based): read shared memory through `mem`,
    /// update local state, and emit writes. All processors observe the
    /// memory state from *before* any of this step's writes.
    fn step(&mut self, step: usize, mem: &MemView<'_>) -> StepOutcome;
}

/// A synchronous CREW PRAM.
///
/// ```
/// use crew_pram::{Machine, MemView, Processor, StepOutcome, Write};
///
/// /// Doubles cell 0 once, then halts.
/// struct Doubler;
/// impl Processor for Doubler {
///     fn step(&mut self, _step: usize, mem: &MemView<'_>) -> StepOutcome {
///         StepOutcome::Halt(vec![Write::new(0, mem.read(0) * 2)])
///     }
/// }
///
/// # fn main() -> Result<(), crew_pram::PramError> {
/// let mut machine = Machine::new(1);
/// machine.store(0, 21);
/// let steps = machine.run(&mut [Box::new(Doubler)], 10)?;
/// assert_eq!(steps, 1);
/// assert_eq!(machine.load(0), 42);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Machine {
    cells: Vec<Word>,
}

impl Machine {
    /// Creates a machine with `memory` zeroed cells.
    #[must_use]
    pub fn new(memory: usize) -> Self {
        Machine {
            cells: vec![0; memory],
        }
    }

    /// Stores `value` at `addr` before (or between) runs.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of bounds.
    pub fn store(&mut self, addr: usize, value: Word) {
        self.cells[addr] = value;
    }

    /// Loads the value at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of bounds.
    #[must_use]
    pub fn load(&self, addr: usize) -> Word {
        self.cells[addr]
    }

    /// The full memory contents.
    #[must_use]
    pub fn memory(&self) -> &[Word] {
        &self.cells
    }

    /// Runs `processors` in lock-step until all halt. Returns the number of
    /// steps executed.
    ///
    /// Each step has classic PRAM semantics: every still-running processor
    /// reads the pre-step memory, then all emitted writes are applied
    /// simultaneously. Two writes to the same cell in one step — even of the
    /// same value — violate Exclusive Write and abort the run.
    ///
    /// # Errors
    ///
    /// * [`PramError::NoProcessors`] if `processors` is empty;
    /// * [`PramError::WriteConflict`] on an exclusive-write violation;
    /// * [`PramError::AddressOutOfBounds`] if a write targets a missing cell;
    /// * [`PramError::StepLimit`] if not all processors halt in `max_steps`.
    pub fn run(
        &mut self,
        processors: &mut [Box<dyn Processor + '_>],
        max_steps: usize,
    ) -> Result<usize, PramError> {
        if processors.is_empty() {
            return Err(PramError::NoProcessors);
        }
        let mut running: Vec<bool> = vec![true; processors.len()];
        let mut writer_of: Vec<Option<usize>> = vec![None; self.cells.len()];
        let mut touched: Vec<usize> = Vec::new();
        let mut pending: Vec<Write> = Vec::new();

        for step in 0..max_steps {
            if running.iter().all(|r| !r) {
                return Ok(step);
            }
            pending.clear();
            for &t in &touched {
                writer_of[t] = None;
            }
            touched.clear();

            let view = MemView { cells: &self.cells };
            let mut outcomes: Vec<(usize, StepOutcome)> = Vec::new();
            for (pid, proc_) in processors.iter_mut().enumerate() {
                if !running[pid] {
                    continue;
                }
                outcomes.push((pid, proc_.step(step, &view)));
            }

            for (pid, outcome) in &outcomes {
                for w in outcome.writes() {
                    if w.addr >= self.cells.len() {
                        return Err(PramError::AddressOutOfBounds {
                            addr: w.addr,
                            memory: self.cells.len(),
                        });
                    }
                    if let Some(prev) = writer_of[w.addr] {
                        return Err(PramError::WriteConflict {
                            addr: w.addr,
                            step,
                            processors: (prev, *pid),
                        });
                    }
                    writer_of[w.addr] = Some(*pid);
                    touched.push(w.addr);
                    pending.push(*w);
                }
                if outcome.halts() {
                    running[*pid] = false;
                }
            }

            for w in &pending {
                self.cells[w.addr] = w.value;
            }
        }

        if running.iter().all(|r| !r) {
            Ok(max_steps)
        } else {
            Err(PramError::StepLimit { max_steps })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Writes `value` to `addr` at step `when`, halts at `halt_at`.
    struct Poker {
        addr: usize,
        value: Word,
        when: usize,
        halt_at: usize,
    }

    impl Processor for Poker {
        fn step(&mut self, step: usize, _mem: &MemView<'_>) -> StepOutcome {
            let writes = if step == self.when {
                vec![Write::new(self.addr, self.value)]
            } else {
                Vec::new()
            };
            if step >= self.halt_at {
                StepOutcome::Halt(writes)
            } else {
                StepOutcome::Continue(writes)
            }
        }
    }

    #[test]
    fn concurrent_reads_are_allowed() {
        /// Every processor reads cell 0 and accumulates it locally.
        struct Reader {
            sum: Word,
        }
        impl Processor for Reader {
            fn step(&mut self, _step: usize, mem: &MemView<'_>) -> StepOutcome {
                self.sum += mem.read(0);
                StepOutcome::done()
            }
        }
        let mut m = Machine::new(1);
        m.store(0, 5);
        let mut procs: Vec<Box<dyn Processor>> =
            (0..8).map(|_| Box::new(Reader { sum: 0 }) as _).collect();
        let steps = m.run(&mut procs, 10).unwrap();
        assert_eq!(steps, 1);
    }

    #[test]
    fn exclusive_write_violation_is_detected() {
        let mut m = Machine::new(2);
        let mut procs: Vec<Box<dyn Processor>> = vec![
            Box::new(Poker {
                addr: 1,
                value: 1,
                when: 0,
                halt_at: 0,
            }),
            Box::new(Poker {
                addr: 1,
                value: 1, // same value still conflicts: EW is strict
                when: 0,
                halt_at: 0,
            }),
        ];
        let err = m.run(&mut procs, 10).unwrap_err();
        assert_eq!(
            err,
            PramError::WriteConflict {
                addr: 1,
                step: 0,
                processors: (0, 1)
            }
        );
    }

    #[test]
    fn disjoint_writes_in_one_step_are_fine() {
        let mut m = Machine::new(4);
        let mut procs: Vec<Box<dyn Processor>> = (0..4)
            .map(|i| {
                Box::new(Poker {
                    addr: i,
                    value: i as Word * 10,
                    when: 0,
                    halt_at: 0,
                }) as _
            })
            .collect();
        m.run(&mut procs, 10).unwrap();
        assert_eq!(m.memory(), &[0, 10, 20, 30]);
    }

    #[test]
    fn writes_in_different_steps_do_not_conflict() {
        let mut m = Machine::new(1);
        let mut procs: Vec<Box<dyn Processor>> = vec![
            Box::new(Poker {
                addr: 0,
                value: 1,
                when: 0,
                halt_at: 1,
            }),
            Box::new(Poker {
                addr: 0,
                value: 2,
                when: 1,
                halt_at: 1,
            }),
        ];
        m.run(&mut procs, 10).unwrap();
        assert_eq!(m.load(0), 2);
    }

    #[test]
    fn reads_see_pre_step_memory() {
        /// Swaps cells 0 and 1 in a single step using two processors —
        /// only correct if both read the pre-step values.
        struct Swapper {
            from: usize,
            to: usize,
        }
        impl Processor for Swapper {
            fn step(&mut self, _step: usize, mem: &MemView<'_>) -> StepOutcome {
                StepOutcome::Halt(vec![Write::new(self.to, mem.read(self.from))])
            }
        }
        let mut m = Machine::new(2);
        m.store(0, 7);
        m.store(1, 9);
        let mut procs: Vec<Box<dyn Processor>> = vec![
            Box::new(Swapper { from: 0, to: 1 }),
            Box::new(Swapper { from: 1, to: 0 }),
        ];
        m.run(&mut procs, 10).unwrap();
        assert_eq!(m.memory(), &[9, 7]);
    }

    #[test]
    fn out_of_bounds_write_is_an_error() {
        let mut m = Machine::new(1);
        let mut procs: Vec<Box<dyn Processor>> = vec![Box::new(Poker {
            addr: 5,
            value: 1,
            when: 0,
            halt_at: 0,
        })];
        let err = m.run(&mut procs, 10).unwrap_err();
        assert_eq!(err, PramError::AddressOutOfBounds { addr: 5, memory: 1 });
    }

    #[test]
    fn step_limit_is_an_error() {
        struct Forever;
        impl Processor for Forever {
            fn step(&mut self, _step: usize, _mem: &MemView<'_>) -> StepOutcome {
                StepOutcome::idle()
            }
        }
        let mut m = Machine::new(1);
        let mut procs: Vec<Box<dyn Processor>> = vec![Box::new(Forever)];
        let err = m.run(&mut procs, 3).unwrap_err();
        assert_eq!(err, PramError::StepLimit { max_steps: 3 });
    }

    #[test]
    fn no_processors_is_an_error() {
        let mut m = Machine::new(1);
        let err = m.run(&mut [], 3).unwrap_err();
        assert_eq!(err, PramError::NoProcessors);
    }

    #[test]
    fn halted_processors_stop_stepping() {
        struct CountSteps {
            steps: usize,
            halt_after: usize,
        }
        impl Processor for CountSteps {
            fn step(&mut self, _step: usize, _mem: &MemView<'_>) -> StepOutcome {
                self.steps += 1;
                if self.steps > self.halt_after {
                    StepOutcome::done()
                } else {
                    StepOutcome::idle()
                }
            }
        }
        let mut m = Machine::new(1);
        let mut procs: Vec<Box<dyn Processor>> = vec![
            Box::new(CountSteps {
                steps: 0,
                halt_after: 0,
            }),
            Box::new(CountSteps {
                steps: 0,
                halt_after: 3,
            }),
        ];
        let steps = m.run(&mut procs, 100).unwrap();
        assert_eq!(steps, 4);
    }
}
