//! Parallel maximum by binary tournament: `p` processors find the max of
//! `p` values in `⌈lg p⌉` CREW steps.
//!
//! The paper's conclusion conjectures that coalescing cohorts can simulate
//! "a variety of well-known parallel algorithms" beyond Snir's search. This
//! module provides the second such reference program (the `contention`
//! crate's `cohort_compute` module is its distributed simulation): a
//! standard tournament where in step `k` processor `i` (0-based, with
//! `i mod 2^{k+1} == 0`) combines its value with processor `i + 2^k`'s.

use crate::error::PramError;
use crate::machine::{Machine, MemView, Processor, StepOutcome, Word, Write};

/// One tournament processor.
struct MaxPlayer {
    pid: usize,
    p: usize,
}

impl Processor for MaxPlayer {
    fn step(&mut self, step: usize, mem: &MemView<'_>) -> StepOutcome {
        let stride = 1usize << step;
        if stride >= self.p {
            return StepOutcome::done();
        }
        // Active combiners this step: pid divisible by 2^(step+1).
        if !self.pid.is_multiple_of(stride * 2) {
            return StepOutcome::idle();
        }
        let partner = self.pid + stride;
        if partner >= self.p {
            return StepOutcome::idle();
        }
        let mine = mem.read(self.pid);
        let theirs = mem.read(partner);
        if theirs > mine {
            StepOutcome::Continue(vec![Write::new(self.pid, theirs)])
        } else {
            StepOutcome::idle()
        }
    }
}

/// Report of a tournament run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaxReport {
    /// The maximum value.
    pub max: Word,
    /// PRAM steps executed (`⌈lg p⌉ + 1` including the halt step).
    pub steps: usize,
}

/// Computes the maximum of `values` with one processor per value.
///
/// # Panics
///
/// Panics if `values` is empty.
///
/// # Errors
///
/// Propagates [`PramError`] from the machine (cannot occur for well-formed
/// input; exposed for API uniformity).
pub fn tournament_max(values: &[Word]) -> Result<MaxReport, PramError> {
    assert!(!values.is_empty(), "need at least one value");
    let p = values.len();
    let mut machine = Machine::new(p);
    for (i, &v) in values.iter().enumerate() {
        machine.store(i, v);
    }
    let mut procs: Vec<Box<dyn Processor>> = (0..p)
        .map(|pid| Box::new(MaxPlayer { pid, p }) as Box<dyn Processor>)
        .collect();
    let max_steps = (usize::BITS - p.leading_zeros()) as usize + 2;
    let steps = machine.run(&mut procs, max_steps)?;
    Ok(MaxReport {
        max: machine.load(0),
        steps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_the_max_in_log_steps() {
        for p in 1..=64usize {
            let values: Vec<Word> = (0..p as Word).map(|i| (i * 37) % 101).collect();
            let report = tournament_max(&values).expect("runs");
            assert_eq!(report.max, *values.iter().max().expect("nonempty"), "p={p}");
            let budget = (p as f64).log2().ceil() as usize + 1;
            assert!(
                report.steps <= budget,
                "p={p}: {} steps > {budget}",
                report.steps
            );
        }
    }

    #[test]
    fn handles_duplicates_and_negatives() {
        let report = tournament_max(&[-5, -5, -2, -9]).expect("runs");
        assert_eq!(report.max, -2);
    }

    #[test]
    fn single_value_is_instant() {
        let report = tournament_max(&[42]).expect("runs");
        assert_eq!(report.max, 42);
        assert!(report.steps <= 1);
    }

    #[test]
    #[should_panic(expected = "at least one value")]
    fn empty_input_panics() {
        let _ = tournament_max(&[]);
    }
}
