//! # crew-pram — a CREW PRAM simulator and Snir's parallel search
//!
//! The third step of the paper's general algorithm (`LeafElection`, §5.3)
//! accelerates its level searches by *simulating a CREW PRAM parallel search
//! algorithm* — Snir's classic `(p+1)`-ary search (SIAM J. Comput., 1985,
//! reference \[16\] of the paper) — with the members of a *coalescing cohort*
//! playing the role of the `p` processors.
//!
//! This crate builds that substrate for real:
//!
//! * [`Machine`] — a synchronous **C**oncurrent-**R**ead
//!   **E**xclusive-**W**rite PRAM: shared memory of integer words, a set of
//!   [`Processor`] state machines stepping in lock-step, and *runtime
//!   enforcement* of the exclusive-write rule (two writes to one cell in one
//!   step abort the run with [`PramError::WriteConflict`]).
//! * [`search`] — Snir's `(p+1)`-ary search implemented as a PRAM program,
//!   which finds the boundary of a monotone predicate over `N` positions in
//!   `Θ(log N / log(p+1))` iterations. The distributed `SplitSearch` of the
//!   paper is a round-for-round simulation of this program, and the property
//!   tests in the `contention` crate cross-check the two against each other.
//!
//! ## Example: parallel lower bound
//!
//! ```
//! use crew_pram::search::{snir_lower_bound, SearchReport};
//!
//! # fn main() -> Result<(), crew_pram::PramError> {
//! let sorted = vec![1, 3, 3, 7, 20, 41];
//! let SearchReport { index, iterations, .. } = snir_lower_bound(&sorted, 7, 3)?;
//! assert_eq!(index, 3);          // first position with value >= 7
//! assert!(iterations <= 2);      // 4-ary search over 7 boundary slots
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod machine;
pub mod max;
pub mod prefix;
pub mod search;
pub mod sort;

pub use error::PramError;
pub use machine::{Machine, MemView, Processor, StepOutcome, Word, Write};
