//! Property-based and cross-program tests for the CREW PRAM substrate.

use crew_pram::max::tournament_max;
use crew_pram::prefix::prefix_sums;
use crew_pram::search::{ideal_iterations, snir_boundary, snir_lower_bound};
use crew_pram::{Machine, MemView, Processor, StepOutcome, Word, Write};
use proptest::collection::vec;
use proptest::prelude::*;

proptest! {
    #[test]
    fn tournament_max_matches_iterator_max(values in vec(-1000i64..1000, 1..200)) {
        let report = tournament_max(&values).expect("runs");
        prop_assert_eq!(report.max, *values.iter().max().expect("nonempty"));
    }

    #[test]
    fn prefix_sums_match_running_total(values in vec(-1000i64..1000, 1..200)) {
        let report = prefix_sums(&values).expect("runs");
        let mut acc = 0;
        for (i, &v) in values.iter().enumerate() {
            acc += v;
            prop_assert_eq!(report.prefixes[i], acc, "index {}", i);
        }
    }

    #[test]
    fn lower_bound_matches_partition_point(
        mut sorted in vec(-500i64..500, 0..150),
        target in -600i64..600,
        p in 1usize..16,
    ) {
        sorted.sort_unstable();
        let got = snir_lower_bound(&sorted, target, p).expect("runs").index;
        prop_assert_eq!(got, sorted.partition_point(|&x| x < target));
    }

    #[test]
    fn worst_case_iterations_shrink_with_processors(
        range in 1usize..10_000,
        p_small in 1usize..8,
        p_extra in 1usize..32,
    ) {
        // Per-instance counts can wobble by one with probe-grid alignment,
        // but the worst case over the range is monotone in p.
        let small = ideal_iterations(range, p_small);
        let large = ideal_iterations(range, p_small + p_extra);
        prop_assert!(large <= small, "p={} {} vs p={} {}", p_small, small, p_small + p_extra, large);
    }

    #[test]
    fn ideal_iterations_upper_bounds_reality(zeros in 0usize..200, p in 1usize..32) {
        let mut bits = vec![false; zeros];
        bits.push(true);
        let real = snir_boundary(&bits, p).expect("runs").iterations;
        prop_assert!(real <= ideal_iterations(bits.len(), p));
    }
}

/// A composed workload: run max and prefix programs back-to-back on the
/// same machine memory, checking that `Machine` state carries over cleanly
/// between `run` calls.
#[test]
fn machine_reuse_across_programs() {
    struct Doubler {
        cell: usize,
    }
    impl Processor for Doubler {
        fn step(&mut self, _step: usize, mem: &MemView<'_>) -> StepOutcome {
            StepOutcome::Halt(vec![Write::new(self.cell, mem.read(self.cell) * 2)])
        }
    }

    let mut machine = Machine::new(4);
    for i in 0..4 {
        machine.store(i, i as Word + 1); // [1, 2, 3, 4]
    }
    let mut procs: Vec<Box<dyn Processor>> =
        (0..4).map(|cell| Box::new(Doubler { cell }) as _).collect();
    machine.run(&mut procs, 5).expect("first program");
    assert_eq!(machine.memory(), &[2, 4, 6, 8]);

    // Second program on the same memory.
    let mut procs: Vec<Box<dyn Processor>> =
        (0..4).map(|cell| Box::new(Doubler { cell }) as _).collect();
    machine.run(&mut procs, 5).expect("second program");
    assert_eq!(machine.memory(), &[4, 8, 12, 16]);
}

/// The searched interval of `snir_boundary` shrinks monotonically — checked
/// indirectly: iteration counts for nested predicates are consistent.
#[test]
fn search_cost_is_boundary_independent_up_to_one() {
    // For fixed m and p, the iteration count may vary by at most 1 across
    // boundary positions (ceil effects), never more.
    let (m, p) = (257usize, 5usize);
    let mut counts = std::collections::BTreeSet::new();
    for ans in 1..=m {
        let bits: Vec<bool> = (1..=m).map(|j| j >= ans).collect();
        counts.insert(snir_boundary(&bits, p).expect("runs").iterations);
    }
    assert!(
        counts.len() <= 2,
        "iteration counts vary too much: {counts:?}"
    );
}
