//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors a
//! minimal wall-clock benchmarking harness exposing the `criterion` API
//! subset its benches use: [`Criterion`], [`BenchmarkGroup`],
//! [`BenchmarkId`], [`Throughput`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model: each benchmark warms up briefly, then runs enough
//! iterations to fill a fixed measurement window and reports the mean
//! nanoseconds per iteration (plus derived throughput when configured).
//! There is no statistical analysis, HTML report, or baseline comparison.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One completed benchmark measurement, as recorded by the driver.
///
/// Real criterion persists these under `target/criterion/`; this stand-in
/// collects them in-process so a bench's `main` can export machine-readable
/// results (see `benches/bench_round_engine.rs`, which writes
/// `BENCH_round_engine.json`).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Full benchmark name (`group/function`).
    pub name: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub mean_ns: f64,
    /// Number of measured iterations.
    pub iters: u64,
}

static RESULTS: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());

/// Drains every measurement recorded since the last call, in run order.
#[must_use]
pub fn take_results() -> Vec<BenchResult> {
    std::mem::take(&mut RESULTS.lock().expect("results lock poisoned"))
}

/// Prevents the optimizer from deleting a computation whose result is unused.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// An identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id made of a parameter only.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Throughput of one benchmark iteration, used to derive rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The timing loop handed to each benchmark closure.
pub struct Bencher {
    total: Duration,
    iters: u64,
    measurement_time: Duration,
}

impl Bencher {
    /// Calls `routine` repeatedly, timing the calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: time single calls until ~5 ms elapse.
        let calib_start = Instant::now();
        let mut calib_iters: u64 = 0;
        while calib_start.elapsed() < Duration::from_millis(5) {
            black_box(routine());
            calib_iters += 1;
        }
        let per_iter = calib_start.elapsed().as_secs_f64() / calib_iters as f64;

        // Measurement: as many iterations as fit the measurement window.
        let target = (self.measurement_time.as_secs_f64() / per_iter.max(1e-9)).ceil();
        let iters = (target as u64).clamp(1, 10_000_000);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.total = start.elapsed();
        self.iters = iters;
    }
}

/// Settings shared by a group's benchmarks.
#[derive(Debug, Clone)]
struct Settings {
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            measurement_time: Duration::from_millis(200),
            throughput: None,
        }
    }
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            settings: Settings::default(),
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(None, &id.into(), &Settings::default(), f);
        self
    }
}

/// A named group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    settings: Settings,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used to derive rates.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.settings.throughput = Some(throughput);
        self
    }

    /// Sets the measurement window.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement_time = d;
        self
    }

    /// Accepted for API compatibility; sampling is time-based here.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(Some(&self.name), &id.into(), &self.settings, f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(Some(&self.name), &id.into(), &self.settings, |b| {
            f(b, input);
        });
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    group: Option<&str>,
    id: &BenchmarkId,
    settings: &Settings,
    mut f: F,
) {
    let mut bencher = Bencher {
        total: Duration::ZERO,
        iters: 0,
        measurement_time: settings.measurement_time,
    };
    f(&mut bencher);
    let full_name = match group {
        Some(g) => format!("{g}/{}", id.id),
        None => id.id.clone(),
    };
    if bencher.iters == 0 {
        println!("{full_name:<60} (no iterations)");
        return;
    }
    let ns = bencher.total.as_secs_f64() * 1e9 / bencher.iters as f64;
    RESULTS
        .lock()
        .expect("results lock poisoned")
        .push(BenchResult {
            name: full_name.clone(),
            mean_ns: ns,
            iters: bencher.iters,
        });
    let rate = settings.throughput.map(|t| match t {
        Throughput::Elements(n) => format!("  {:>12.0} elem/s", n as f64 / (ns / 1e9)),
        Throughput::Bytes(n) => format!("  {:>12.0} B/s", n as f64 / (ns / 1e9)),
    });
    println!(
        "{full_name:<60} {:>14} ns/iter ({} iters){}",
        format!("{ns:.1}"),
        bencher.iters,
        rate.unwrap_or_default()
    );
}

/// Bundles benchmark functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(settings: &mut Settings) {
        settings.measurement_time = Duration::from_millis(5);
    }

    #[test]
    fn bench_function_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("test");
        quick(&mut group.settings);
        let mut ran = false;
        group.bench_function(BenchmarkId::from_parameter("x"), |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("test");
        quick(&mut group.settings);
        group.throughput(Throughput::Elements(4));
        let mut seen = 0;
        group.bench_with_input(BenchmarkId::new("f", 4), &4u64, |b, &n| {
            seen = n;
            b.iter(|| black_box(n * 2));
        });
        group.finish();
        assert_eq!(seen, 4);
    }

    #[test]
    fn results_are_collected_and_drained() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("collect");
        quick(&mut group.settings);
        group.bench_function("one", |b| b.iter(|| black_box(2 + 2)));
        group.finish();
        let results = take_results();
        let ours: Vec<_> = results.iter().filter(|r| r.name == "collect/one").collect();
        assert_eq!(ours.len(), 1, "exactly one measurement for collect/one");
        assert!(ours[0].mean_ns > 0.0);
        assert!(ours[0].iters > 0);
        // Drained: a second take sees nothing of ours.
        assert!(take_results().iter().all(|r| r.name != "collect/one"));
    }

    #[test]
    fn group_macros_compile() {
        fn target(c: &mut Criterion) {
            c.bench_function("standalone", |b| b.iter(|| black_box(0u8)));
        }
        criterion_group!(benches, target);
        benches();
    }
}
