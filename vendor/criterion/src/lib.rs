//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors a
//! minimal wall-clock benchmarking harness exposing the `criterion` API
//! subset its benches use: [`Criterion`], [`BenchmarkGroup`],
//! [`BenchmarkId`], [`Throughput`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model: each benchmark warms up briefly, then runs enough
//! iterations to fill a fixed measurement window and reports the mean
//! nanoseconds per iteration (plus derived throughput when configured).
//! There is no statistical analysis, HTML report, or baseline comparison.
//!
//! Within a [`BenchmarkGroup`], execution is **deferred and interleaved**:
//! `bench_function` registers the closure, and `finish` splits every
//! benchmark's measurement window into [`ROUNDS`] batches executed
//! round-robin across the group. Measuring each benchmark in one
//! contiguous block made group-internal comparisons hostage to CPU
//! frequency/steal drift between blocks — on shared machines the drift
//! exceeds the differences under test, and exported means inverted ("less
//! work measured slower") depending on which block caught a slow period.
//! Interleaving spreads every benchmark across the same wall-clock span,
//! so drift hits all of them alike and within-group ordering is trustworthy.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One completed benchmark measurement, as recorded by the driver.
///
/// Real criterion persists these under `target/criterion/`; this stand-in
/// collects them in-process so a bench's `main` can export machine-readable
/// results (see `benches/bench_round_engine.rs`, which writes
/// `BENCH_round_engine.json`).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Full benchmark name (`group/function`).
    pub name: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub mean_ns: f64,
    /// Number of measured iterations.
    pub iters: u64,
}

static RESULTS: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());

/// Drains every measurement recorded since the last call, in run order.
#[must_use]
pub fn take_results() -> Vec<BenchResult> {
    std::mem::take(&mut RESULTS.lock().expect("results lock poisoned"))
}

/// Prevents the optimizer from deleting a computation whose result is unused.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// An identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id made of a parameter only.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Throughput of one benchmark iteration, used to derive rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Number of interleaved measurement batches each benchmark's window is
/// split into within a group. Higher values decorrelate CPU drift better
/// but amortize the per-batch closure setup less.
pub const ROUNDS: u64 = 8;

/// What a [`Bencher`] does when its benchmark closure calls `iter`.
enum Mode {
    /// Warm up and estimate the per-iteration cost (no recording).
    Calibrate,
    /// Run exactly this many timed iterations and accumulate them.
    Measure {
        /// Iterations to run in this batch.
        iters: u64,
    },
}

/// The timing loop handed to each benchmark closure.
///
/// A benchmark closure is invoked once per batch (`1` calibration pass plus
/// [`ROUNDS`] measurement passes), so any setup it performs before calling
/// [`Bencher::iter`] is repeated per batch and stays outside the timing.
pub struct Bencher {
    mode: Mode,
    total: Duration,
    iters: u64,
    per_iter: f64,
}

impl Bencher {
    /// Calls `routine` repeatedly, timing the calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match self.mode {
            Mode::Calibrate => {
                // Warm-up and calibration: time single calls until ~5 ms elapse.
                let calib_start = Instant::now();
                let mut calib_iters: u64 = 0;
                while calib_start.elapsed() < Duration::from_millis(5) {
                    black_box(routine());
                    calib_iters += 1;
                }
                self.per_iter = calib_start.elapsed().as_secs_f64() / calib_iters as f64;
            }
            Mode::Measure { iters } => {
                let start = Instant::now();
                for _ in 0..iters {
                    black_box(routine());
                }
                self.total += start.elapsed();
                self.iters += iters;
            }
        }
    }
}

/// Settings shared by a group's benchmarks.
#[derive(Debug, Clone)]
struct Settings {
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            measurement_time: Duration::from_millis(200),
            throughput: None,
        }
    }
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            settings: Settings::default(),
            entries: Vec::new(),
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut entries = vec![Entry::new(id.into(), Settings::default(), Box::new(&mut f))];
        run_entries(None, &mut entries);
        self
    }
}

/// One registered benchmark awaiting (or accumulating) measurement.
struct Entry<'a> {
    id: BenchmarkId,
    /// Group settings snapshotted at registration, so later
    /// `throughput`/`measurement_time` calls affect later entries only.
    settings: Settings,
    f: Box<dyn FnMut(&mut Bencher) + 'a>,
    /// Iterations per measurement batch, sized during calibration.
    batch: u64,
    total: Duration,
    iters: u64,
}

impl<'a> Entry<'a> {
    fn new(id: BenchmarkId, settings: Settings, f: Box<dyn FnMut(&mut Bencher) + 'a>) -> Self {
        Entry {
            id,
            settings,
            f,
            batch: 0,
            total: Duration::ZERO,
            iters: 0,
        }
    }
}

/// A named group of benchmarks sharing settings.
///
/// Registration is deferred: benchmarks run when the group is
/// [`finish`](BenchmarkGroup::finish)ed (or dropped), interleaved in
/// [`ROUNDS`] batches so within-group comparisons share wall-clock drift.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    settings: Settings,
    entries: Vec<Entry<'a>>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the per-iteration throughput used to derive rates.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.settings.throughput = Some(throughput);
        self
    }

    /// Sets the measurement window.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement_time = d;
        self
    }

    /// Accepted for API compatibility; sampling is time-based here.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Registers a benchmark in this group; it runs at `finish`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher) + 'a,
    {
        self.entries
            .push(Entry::new(id.into(), self.settings.clone(), Box::new(f)));
        self
    }

    /// Registers a benchmark parameterized by `input`; it runs at `finish`.
    ///
    /// The input is cloned into the deferred closure, since inputs are
    /// commonly loop-scoped at call sites and measurement happens later.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: Clone + 'a,
        F: FnMut(&mut Bencher, &I) + 'a,
    {
        let input = input.clone();
        self.bench_function(id, move |b| f(b, &input))
    }

    /// Ends the group, running every registered benchmark interleaved.
    pub fn finish(self) {
        // Work happens in Drop so that groups which are dropped without an
        // explicit `finish()` still measure.
    }
}

impl Drop for BenchmarkGroup<'_> {
    fn drop(&mut self) {
        let mut entries = std::mem::take(&mut self.entries);
        run_entries(Some(&self.name), &mut entries);
    }
}

/// Measures a set of benchmarks: one calibration pass each, then
/// [`ROUNDS`] rounds of batches executed round-robin, then records and
/// prints each result in registration order.
fn run_entries(group: Option<&str>, entries: &mut [Entry<'_>]) {
    for entry in entries.iter_mut() {
        let mut bencher = Bencher {
            mode: Mode::Calibrate,
            total: Duration::ZERO,
            iters: 0,
            per_iter: 0.0,
        };
        (entry.f)(&mut bencher);
        let window = entry.settings.measurement_time.as_secs_f64();
        let target = (window / bencher.per_iter.max(1e-9)).ceil();
        let total_iters = (target as u64).clamp(1, 10_000_000);
        entry.batch = (total_iters / ROUNDS).max(1);
    }
    for _ in 0..ROUNDS {
        for entry in entries.iter_mut() {
            let mut bencher = Bencher {
                mode: Mode::Measure { iters: entry.batch },
                total: Duration::ZERO,
                iters: 0,
                per_iter: 0.0,
            };
            (entry.f)(&mut bencher);
            entry.total += bencher.total;
            entry.iters += bencher.iters;
        }
    }
    for entry in entries.iter() {
        record_result(group, entry);
    }
}

fn record_result(group: Option<&str>, entry: &Entry<'_>) {
    let full_name = match group {
        Some(g) => format!("{g}/{}", entry.id.id),
        None => entry.id.id.clone(),
    };
    if entry.iters == 0 {
        println!("{full_name:<60} (no iterations)");
        return;
    }
    let ns = entry.total.as_secs_f64() * 1e9 / entry.iters as f64;
    RESULTS
        .lock()
        .expect("results lock poisoned")
        .push(BenchResult {
            name: full_name.clone(),
            mean_ns: ns,
            iters: entry.iters,
        });
    let rate = entry.settings.throughput.map(|t| match t {
        Throughput::Elements(n) => format!("  {:>12.0} elem/s", n as f64 / (ns / 1e9)),
        Throughput::Bytes(n) => format!("  {:>12.0} B/s", n as f64 / (ns / 1e9)),
    });
    println!(
        "{full_name:<60} {:>14} ns/iter ({} iters){}",
        format!("{ns:.1}"),
        entry.iters,
        rate.unwrap_or_default()
    );
}

/// Bundles benchmark functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(settings: &mut Settings) {
        settings.measurement_time = Duration::from_millis(5);
    }

    #[test]
    fn bench_function_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("test");
        quick(&mut group.settings);
        let mut ran = false;
        group.bench_function(BenchmarkId::from_parameter("x"), |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("test");
        quick(&mut group.settings);
        group.throughput(Throughput::Elements(4));
        let mut seen = 0;
        group.bench_with_input(BenchmarkId::new("f", 4), &4u64, |b, &n| {
            seen = n;
            b.iter(|| black_box(n * 2));
        });
        group.finish();
        assert_eq!(seen, 4);
    }

    #[test]
    fn results_are_collected_and_drained() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("collect");
        quick(&mut group.settings);
        group.bench_function("one", |b| b.iter(|| black_box(2 + 2)));
        group.finish();
        let results = take_results();
        let ours: Vec<_> = results.iter().filter(|r| r.name == "collect/one").collect();
        assert_eq!(ours.len(), 1, "exactly one measurement for collect/one");
        assert!(ours[0].mean_ns > 0.0);
        assert!(ours[0].iters > 0);
        // Drained: a second take sees nothing of ours.
        assert!(take_results().iter().all(|r| r.name != "collect/one"));
    }

    #[test]
    fn group_macros_compile() {
        fn target(c: &mut Criterion) {
            c.bench_function("standalone", |b| b.iter(|| black_box(0u8)));
        }
        criterion_group!(benches, target);
        benches();
    }
}
