//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no network access and no crates.io mirror, so
//! the workspace vendors the slice of `rand` it actually uses:
//!
//! * [`rngs::SmallRng`] — the same xoshiro256++ generator `rand 0.8` uses on
//!   64-bit platforms, seeded through the same SplitMix64 expansion, so
//!   sequences are statistically indistinguishable from the real crate;
//! * [`SeedableRng::seed_from_u64`] / [`SeedableRng::from_seed`];
//! * [`Rng::gen_range`] over integer and float ranges (Lemire widening
//!   multiply with rejection — unbiased);
//! * [`Rng::gen_bool`].
//!
//! Only what the workspace needs is implemented; this is not a general
//! replacement for `rand`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The core of a random number generator: raw integer output.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// A generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// The seed type, conventionally a byte array.
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a single `u64`, expanding it with SplitMix64
    /// exactly as `rand 0.8` does.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let x = splitmix64(&mut state);
            let bytes = x.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// The SplitMix64 generator, used for seed expansion.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: distributions::uniform::SampleUniform,
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of [0, 1]");
        if p >= 1.0 {
            return true;
        }
        // 2^64 * p, computed in f64 then truncated: the same fixed-point
        // comparison rand's Bernoulli distribution uses.
        let threshold = (p * (u64::MAX as f64 + 1.0)) as u64;
        self.next_u64() < threshold
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod distributions {
    //! Sampling distributions (uniform ranges only).

    pub mod uniform {
        //! Uniform range sampling for the types the workspace uses.

        use super::super::RngCore;
        use core::ops::{Range, RangeInclusive};

        /// A type that can be sampled uniformly from a range.
        pub trait SampleUniform: Sized + PartialOrd {
            /// Samples uniformly from `[low, high]` (inclusive).
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
        }

        /// A range form accepted by [`crate::Rng::gen_range`].
        pub trait SampleRange<T> {
            /// Samples a single value from the range.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        impl<T: SampleUniformExt + Copy> SampleRange<T> for Range<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                assert!(self.start < self.end, "gen_range: empty range");
                T::sample_exclusive(rng, self.start, self.end)
            }
        }

        impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                let (low, high) = self.into_inner();
                assert!(low <= high, "gen_range: empty range");
                T::sample_inclusive(rng, low, high)
            }
        }

        /// Extension used internally: sampling from a half-open range.
        pub trait SampleUniformExt: SampleUniform {
            /// Samples uniformly from `[low, high)`.
            fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
        }

        macro_rules! uniform_int_impl {
            ($ty:ty, $uty:ty, $wide:ty, $next:ident) => {
                impl SampleUniform for $ty {
                    fn sample_inclusive<R: RngCore + ?Sized>(
                        rng: &mut R,
                        low: Self,
                        high: Self,
                    ) -> Self {
                        let span = (high as $uty).wrapping_sub(low as $uty);
                        if span == <$uty>::MAX {
                            // Full domain: every raw draw is uniform.
                            return rng.$next() as $ty;
                        }
                        let span = span.wrapping_add(1);
                        // Lemire widening-multiply with the zone rejection
                        // rand 0.8 uses for `sample_single`.
                        let zone = (span << span.leading_zeros()).wrapping_sub(1);
                        loop {
                            let v = rng.$next() as $uty;
                            let m = (v as $wide).wrapping_mul(span as $wide);
                            let lo = m as $uty;
                            if lo <= zone {
                                let hi = (m >> <$uty>::BITS) as $uty;
                                return low.wrapping_add(hi as $ty);
                            }
                        }
                    }
                }

                impl SampleUniformExt for $ty {
                    fn sample_exclusive<R: RngCore + ?Sized>(
                        rng: &mut R,
                        low: Self,
                        high: Self,
                    ) -> Self {
                        Self::sample_inclusive(rng, low, high.wrapping_sub(1))
                    }
                }
            };
        }

        uniform_int_impl!(u8, u8, u16, next_u32);
        uniform_int_impl!(u16, u16, u32, next_u32);
        uniform_int_impl!(u32, u32, u64, next_u32);
        uniform_int_impl!(u64, u64, u128, next_u64);
        uniform_int_impl!(usize, usize, u128, next_u64);
        uniform_int_impl!(i8, u8, u16, next_u32);
        uniform_int_impl!(i16, u16, u32, next_u32);
        uniform_int_impl!(i32, u32, u64, next_u32);
        uniform_int_impl!(i64, u64, u128, next_u64);
        uniform_int_impl!(isize, usize, u128, next_u64);

        macro_rules! uniform_float_impl {
            ($ty:ty, $bits:expr) => {
                impl SampleUniform for $ty {
                    fn sample_inclusive<R: RngCore + ?Sized>(
                        rng: &mut R,
                        low: Self,
                        high: Self,
                    ) -> Self {
                        // Floats: inclusive and exclusive coincide up to
                        // measure zero.
                        Self::sample_exclusive(rng, low, high)
                    }
                }

                impl SampleUniformExt for $ty {
                    fn sample_exclusive<R: RngCore + ?Sized>(
                        rng: &mut R,
                        low: Self,
                        high: Self,
                    ) -> Self {
                        // 53 (or 24) random mantissa bits in [0, 1).
                        let unit = (rng.next_u64() >> (64 - $bits)) as $ty / (1u64 << $bits) as $ty;
                        low + (high - low) * unit
                    }
                }
            };
        }

        uniform_float_impl!(f64, 53);
        uniform_float_impl!(f32, 24);
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator: xoshiro256++, the same
    /// algorithm `rand 0.8`'s `SmallRng` uses on 64-bit platforms.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            if s == [0; 4] {
                // The all-zero state is a fixed point; nudge it.
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            SmallRng { s }
        }
    }
}

// Re-exports mirroring rand's prelude-ish layout used by the workspace.
pub use distributions::uniform;

/// Convenience prelude.
pub mod prelude {
    pub use super::rngs::SmallRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(xs[0], c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(1u64..=5);
            assert!((1..=5).contains(&y));
            let z = rng.gen_range(-4i64..9);
            assert!((-4..9).contains(&z));
            let f = rng.gen_range(-2.5f64..7.5);
            assert!((-2.5..7.5).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_small_domains_uniformly() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut counts = [0u32; 6];
        for _ in 0..60_000 {
            counts[rng.gen_range(0usize..6)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "biased bucket: {counts:?}");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!(
            (24_000..26_000).contains(&hits),
            "p=0.25 gave {hits}/100000"
        );
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }

    #[test]
    fn fill_bytes_fills_everything() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn full_domain_range_works() {
        let mut rng = SmallRng::seed_from_u64(4);
        // Must not loop forever or panic.
        let _ = rng.gen_range(u64::MIN..=u64::MAX);
        let _ = rng.gen_range(i64::MIN..=i64::MAX);
    }
}
