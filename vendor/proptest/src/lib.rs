//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors a
//! deterministic property-testing harness exposing the `proptest` API subset
//! its tests use: the [`proptest!`] macro, range / tuple / [`collection::vec`]
//! / [`prelude::Just`] / [`prelude::any`] / `prop_oneof!` / `prop_map`
//! strategies, a character-class string strategy, and the `prop_assert*`
//! macros.
//!
//! Differences from real proptest, by design:
//!
//! * **no shrinking** — a failing case reports the generated inputs via the
//!   panic message of the underlying assertion;
//! * **deterministic seeding** — cases derive from a fixed per-test seed, so
//!   failures always reproduce.

#![forbid(unsafe_code)]

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use rand::rngs::SmallRng;
    use rand::Rng;

    /// A recipe for generating values of a given type.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut SmallRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// A boxed, type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut SmallRng) -> T {
            self.0.generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut SmallRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy that always yields a clone of its value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut SmallRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among boxed strategies (the engine behind
    /// `prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Creates a union over `arms`.
        ///
        /// # Panics
        ///
        /// Panics if `arms` is empty.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut SmallRng) -> T {
            let idx = rng.gen_range(0..self.arms.len());
            self.arms[idx].generate(rng)
        }
    }

    macro_rules! range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for core::ops::Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut SmallRng) -> $ty {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut SmallRng) -> $ty {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);

    /// String strategy from a regex-like pattern.
    ///
    /// Supports the subset the workspace uses: literal characters and
    /// character classes `[a-z0-9]`, each optionally followed by a repetition
    /// `{n}` or `{m,n}`.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut SmallRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    fn generate_from_pattern(pattern: &str, rng: &mut SmallRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            // One atom: a character class or a literal character.
            let class: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed '[' in pattern {pattern:?}"));
                let mut class = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                        assert!(lo <= hi, "bad class range in {pattern:?}");
                        class.extend((lo..=hi).filter_map(char::from_u32));
                        j += 3;
                    } else {
                        class.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                class
            } else {
                let c = chars[i];
                i += 1;
                vec![c]
            };
            assert!(!class.is_empty(), "empty character class in {pattern:?}");

            // Optional repetition.
            let (min, max) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed '{{' in pattern {pattern:?}"));
                let body: String = chars[i + 1..close].iter().collect();
                let parts: Vec<&str> = body.split(',').collect();
                let parse = |s: &str| {
                    s.trim()
                        .parse::<usize>()
                        .unwrap_or_else(|_| panic!("bad repetition in {pattern:?}"))
                };
                let bounds = match parts.as_slice() {
                    [n] => (parse(n), parse(n)),
                    [m, n] => (parse(m), parse(n)),
                    _ => panic!("bad repetition in {pattern:?}"),
                };
                i = close + 1;
                bounds
            } else {
                (1, 1)
            };

            let count = if min == max {
                min
            } else {
                rng.gen_range(min..=max)
            };
            for _ in 0..count {
                out.push(class[rng.gen_range(0..class.len())]);
            }
        }
        out
    }
}

pub mod arbitrary {
    //! The [`any`] strategy for primitive types.

    use super::strategy::Strategy;
    use core::marker::PhantomData;
    use rand::rngs::SmallRng;
    use rand::{Rng, RngCore};

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generates an arbitrary value.
        fn arbitrary(rng: &mut SmallRng) -> Self;
    }

    macro_rules! arb_int {
        ($($ty:ty),*) => {$(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut SmallRng) -> Self {
                    rng.next_u64() as $ty
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut SmallRng) -> Self {
            rng.gen_bool(0.5)
        }
    }

    /// Strategy yielding arbitrary values of `T`.
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut SmallRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The whole-domain strategy for `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// A size specification for [`vec()`]: an exact size or a range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            let (min, max) = r.into_inner();
            assert!(min <= max, "empty size range");
            SizeRange { min, max: max + 1 }
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for vectors whose elements come from `element` and whose
    /// length comes from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod test_runner {
    //! Test configuration and deterministic RNG derivation.

    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Configuration for a `proptest!` block.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Derives a deterministic RNG from a test's full path, so every run
    /// generates the same cases.
    #[must_use]
    pub fn deterministic_rng(test_path: &str) -> SmallRng {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in test_path.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        SmallRng::seed_from_u64(h)
    }
}

/// Defines property tests: each function runs its body for many generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::deterministic_rng(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                { $body }
            }
        }
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniform choice among several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

pub mod prelude {
    //! The glob-import surface: strategies, config, and macros.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::collection::vec;
    use crate::prelude::*;

    #[derive(Debug, Clone, Copy, PartialEq)]
    enum Coin {
        Heads,
        Tails,
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in -5i64..=5, f in 0.0f64..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..=5).contains(&y));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn vecs_have_requested_sizes(v in vec(0u8..10, 2..6), exact in vec(1u32..4, 3)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert_eq!(exact.len(), 3);
        }

        #[test]
        fn strings_match_class_pattern(s in "[a-z0-9]{1,8}") {
            prop_assert!(!s.is_empty() && s.len() <= 8);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }

        #[test]
        fn oneof_and_map_compose(
            c in prop_oneof![Just(Coin::Heads), Just(Coin::Tails)],
            n in (0u8..3).prop_map(|x| x * 2),
            (a, b) in (1u8..5, any::<u8>()),
        ) {
            prop_assert!(c == Coin::Heads || c == Coin::Tails);
            prop_assert!(n == 0 || n == 2 || n == 4);
            prop_assert!((1..5).contains(&a));
            let _ = b;
        }
    }

    #[test]
    fn determinism_across_runs() {
        use crate::strategy::Strategy;
        let s = vec(0u64..1000, 5..10);
        let mut r1 = crate::test_runner::deterministic_rng("x");
        let mut r2 = crate::test_runner::deterministic_rng("x");
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }
}
