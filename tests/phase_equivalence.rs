//! Equivalence oracle for the phase-composition refactor.
//!
//! `contention::FullAlgorithm` used to be a hand-rolled `Stage` enum; it is
//! now the composed phase stack
//! `reduce.and_then(id_reduction).and_then(leaf_election).with_fallback(..)`
//! running through `PhaseProtocol`. This test pins the refactor as a pure
//! restructuring: it carries a verbatim copy of the pre-refactor monolith
//! (below, `MonolithFull`) and replays both implementations over a grid of
//! seeds × collision-detection modes × configurations — including the
//! small-`C` fallback path — demanding **bit-identical** behavior: the same
//! solve round, solver, executed rounds, leader set, per-node transmission
//! counts, and per-node `FullStats` counters.
//!
//! Unlike the fixture-based `engine_oracle` (which pins the *engine*
//! refactor), this oracle needs no recorded file: the monolith itself is the
//! reference, so the comparison stays live — any future change that skews
//! the composed pipeline away from the monolith's round-for-round behavior
//! fails here with the first diverging case.

use contention::baselines::CdTournament;
use contention::phase::PhaseTelemetry;
use contention::{
    FullAlgorithm, FullStats, IdReduction, IdReductionOutcome, LeafElection, Params, Reduce,
    ReduceOutcome,
};
use mac_sim::{
    Action, CdMode, Engine, Feedback, Protocol, RoundContext, RunReport, SimConfig, SimError,
    Status,
};
use rand::rngs::SmallRng;

// ---------------------------------------------------------------------------
// The pre-refactor monolith, copied verbatim (modulo the type name) from
// `crates/core/src/full.rs` as it stood before the phase-composition
// refactor. Do not "improve" it: its value is being frozen history.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Stage {
    Reduce(Reduce),
    IdReduction(IdReduction),
    LeafElection(LeafElection),
    Fallback(CdTournament),
    Done(Status),
}

#[derive(Debug, Clone)]
struct MonolithFull {
    params: Params,
    channels: u32,
    stage: Stage,
    stats: FullStats,
}

impl MonolithFull {
    fn new(params: Params, channels: u32, n: u64) -> Self {
        assert!(channels >= 1, "the model requires C >= 1");
        let (stage, used_fallback) = if channels < params.fallback_below_channels {
            (Stage::Fallback(CdTournament::new()), true)
        } else {
            (Stage::Reduce(Reduce::with_params(params, n)), false)
        };
        MonolithFull {
            params,
            channels,
            stage,
            stats: FullStats {
                used_fallback,
                ..FullStats::default()
            },
        }
    }

    fn stats(&self) -> FullStats {
        self.stats
    }
}

impl Protocol for MonolithFull {
    type Msg = u32;

    fn act(&mut self, ctx: &RoundContext, rng: &mut SmallRng) -> Action<u32> {
        match &mut self.stage {
            Stage::Reduce(inner) => {
                self.stats.reduce_rounds += 1;
                inner.act(ctx, rng)
            }
            Stage::IdReduction(inner) => {
                self.stats.id_reduction_rounds += 1;
                inner.act(ctx, rng)
            }
            Stage::LeafElection(inner) => {
                self.stats.election_rounds += 1;
                inner.act(ctx, rng)
            }
            Stage::Fallback(inner) => inner.act(ctx, rng),
            Stage::Done(_) => Action::Sleep,
        }
    }

    fn observe(&mut self, ctx: &RoundContext, feedback: Feedback<u32>, rng: &mut SmallRng) {
        match &mut self.stage {
            Stage::Reduce(inner) => {
                inner.observe(ctx, feedback, rng);
                match inner.outcome() {
                    None => {}
                    Some(ReduceOutcome::Leader) => self.stage = Stage::Done(Status::Leader),
                    Some(ReduceOutcome::Knocked) => self.stage = Stage::Done(Status::Inactive),
                    Some(ReduceOutcome::Survived) => {
                        self.stage =
                            Stage::IdReduction(IdReduction::new(self.params, self.channels));
                    }
                }
            }
            Stage::IdReduction(inner) => {
                inner.observe(ctx, feedback, rng);
                match inner.outcome() {
                    None => {}
                    Some(IdReductionOutcome::Eliminated) => {
                        self.stage = Stage::Done(Status::Inactive);
                    }
                    Some(IdReductionOutcome::Renamed(id)) => {
                        self.stats.adopted_id = Some(id);
                        self.stage = Stage::LeafElection(LeafElection::new(self.channels, id));
                    }
                }
            }
            Stage::LeafElection(inner) => {
                inner.observe(ctx, feedback, rng);
                if inner.status().is_terminated() {
                    self.stage = Stage::Done(inner.status());
                }
            }
            Stage::Fallback(inner) => {
                inner.observe(ctx, feedback, rng);
                if inner.status().is_terminated() {
                    self.stage = Stage::Done(inner.status());
                }
            }
            Stage::Done(_) => {}
        }
    }

    fn status(&self) -> Status {
        match &self.stage {
            Stage::Done(status) => *status,
            _ => Status::Active,
        }
    }

    fn phase(&self) -> &'static str {
        match &self.stage {
            Stage::Reduce(inner) => inner.phase(),
            Stage::IdReduction(inner) => inner.phase(),
            Stage::LeafElection(inner) => inner.phase(),
            Stage::Fallback(inner) => inner.phase(),
            Stage::Done(_) => "done",
        }
    }
}

// ---------------------------------------------------------------------------
// The grid.
// ---------------------------------------------------------------------------

const MODES: [CdMode; 3] = [CdMode::Strong, CdMode::ReceiverOnly, CdMode::None];

/// One configuration: channel count, universe size, population. The first
/// entry exercises the pipeline (`C` above the fallback threshold), the
/// second the single-channel `CdTournament` fallback (`C` below it).
const CONFIGS: [(u32, u64, usize, &[u64]); 2] = [
    (16, 1 << 10, 60, &[11, 22, 33, 44, 55, 66, 77, 88, 99, 110]),
    (4, 1 << 10, 40, &[7, 14, 21, 28]),
];

/// Everything observable about one run: the report plus each node's
/// terminal status and stats counters.
fn observables<P, S>(
    c: u32,
    seed: u64,
    mode: CdMode,
    build: impl Fn() -> P,
    count: usize,
    stats: impl Fn(&P) -> S,
) -> (RunReport, Vec<(Status, S)>)
where
    P: Protocol,
{
    let cfg = SimConfig::new(c).seed(seed).cd_mode(mode).max_rounds(2_000);
    let mut exec = Engine::new(cfg);
    for _ in 0..count {
        exec.add_node(build());
    }
    let report = match exec.run() {
        Ok(report) => report,
        // Weak CD modes can time out by design; the partial run is still a
        // deterministic fingerprint.
        Err(SimError::Timeout { .. }) => exec.report(),
        Err(e) => panic!("unexpected simulation error: {e}"),
    };
    let nodes = exec
        .iter_nodes()
        .map(|node| (node.status(), stats(node)))
        .collect();
    (report, nodes)
}

fn assert_reports_identical(label: &str, old: &RunReport, new: &RunReport) {
    assert_eq!(old.solved_round, new.solved_round, "{label}: solved_round");
    assert_eq!(old.solver, new.solver, "{label}: solver");
    assert_eq!(
        old.rounds_executed, new.rounds_executed,
        "{label}: rounds_executed"
    );
    assert_eq!(old.leaders, new.leaders, "{label}: leader set");
    assert_eq!(
        old.metrics.transmissions_per_node, new.metrics.transmissions_per_node,
        "{label}: per-node transmissions"
    );
}

#[test]
fn composed_pipeline_is_bit_identical_to_the_monolith() {
    let params = Params::practical();
    let mut cases = 0;
    for (c, n, active, seeds) in CONFIGS {
        for mode in MODES {
            for &seed in seeds {
                let label = format!("C={c} n={n} |A|={active} cd={mode:?} seed={seed}");
                let (old_report, old_nodes) = observables(
                    c,
                    seed,
                    mode,
                    || MonolithFull::new(params, c, n),
                    active,
                    MonolithFull::stats,
                );
                let (new_report, new_nodes) = observables(
                    c,
                    seed,
                    mode,
                    || FullAlgorithm::new(params, c, n),
                    active,
                    FullAlgorithm::stats,
                );
                assert_reports_identical(&label, &old_report, &new_report);
                assert_eq!(old_nodes.len(), new_nodes.len(), "{label}: node count");
                for (i, (old, new)) in old_nodes.iter().zip(&new_nodes).enumerate() {
                    assert_eq!(old, new, "{label}: node {i} (status, FullStats)");
                }
                cases += 1;
            }
        }
    }
    assert!(cases >= 30, "oracle grid too small: {cases} cases");
}

/// The composed pipeline's telemetry spine agrees with the monolith's
/// hand-rolled counters on every node — the stats refactor changed the
/// *source* (a per-phase spine instead of ad-hoc fields), not the numbers.
#[test]
fn spine_reproduces_monolith_counters() {
    let params = Params::practical();
    let (c, n, active) = (16u32, 1u64 << 10, 60usize);
    for seed in [5u64, 15, 25] {
        let (_, old_nodes) = observables(
            c,
            seed,
            CdMode::Strong,
            || MonolithFull::new(params, c, n),
            active,
            MonolithFull::stats,
        );
        let cfg = SimConfig::new(c).seed(seed).max_rounds(2_000);
        let mut exec = Engine::new(cfg);
        for _ in 0..active {
            exec.add_node(FullAlgorithm::new(params, c, n));
        }
        exec.run().expect("strong CD solves");
        for (i, ((_, old_stats), node)) in old_nodes.iter().zip(exec.iter_nodes()).enumerate() {
            let spine = node.phase_stats();
            let rounds = |name: &str| {
                spine
                    .iter()
                    .filter(|r| r.name == name)
                    .map(|r| r.rounds)
                    .sum::<u64>()
            };
            assert_eq!(old_stats.reduce_rounds, rounds("reduce"), "node {i}");
            assert_eq!(
                old_stats.id_reduction_rounds,
                rounds("id-reduction"),
                "node {i}"
            );
            assert_eq!(
                old_stats.election_rounds,
                rounds("leaf-election"),
                "node {i}"
            );
            assert_eq!(
                old_stats.adopted_id,
                spine.iter().find_map(|r| r.adopted_id),
                "node {i}"
            );
        }
    }
}
