//! Golden-run oracle for the round engine.
//!
//! The fixture in `tests/fixtures/engine_oracle.txt` records behavioral
//! fingerprints — solved round, solver, rounds executed, and per-node
//! transmission counts — for a grid of seeds × collision-detection modes,
//! captured from the executor *before* the engine/trials/observation
//! refactor. The test replays the grid and demands bit-identical results,
//! so any change to RNG consumption order, feedback semantics, or solve
//! detection shows up as a diff against pre-refactor behavior.
//!
//! Regenerate (only when a behavior change is intentional) with:
//!
//! ```text
//! ENGINE_ORACLE_REGEN=1 cargo test --test engine_oracle
//! ```

use contention::{FullAlgorithm, Params, TwoActive};
use mac_sim::{CdMode, Engine, SimConfig, SimError, StopWhen};
use std::fmt::Write as _;
use std::path::PathBuf;

const SEEDS: [u64; 5] = [11, 22, 33, 44, 55];
const MODES: [(CdMode, &str); 3] = [
    (CdMode::Strong, "strong"),
    (CdMode::ReceiverOnly, "receiver-only"),
    (CdMode::None, "none"),
];

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures/engine_oracle.txt")
}

/// One grid cell: run to completion (or the round cap, which weaker CD
/// modes hit by design) and serialize everything observable.
fn fingerprint<P, F>(label: &str, seed: u64, mode: CdMode, mode_name: &str, build: F) -> String
where
    P: mac_sim::Protocol,
    F: FnOnce(&mut Engine<P>),
{
    let cfg = SimConfig::new(16)
        .seed(seed)
        .cd_mode(mode)
        .stop_when(StopWhen::Solved)
        .max_rounds(2_000);
    let mut exec = Engine::new(cfg);
    build(&mut exec);
    let report = match exec.run() {
        Ok(report) => report,
        // Timeouts are expected under weak CD; the partial run is still a
        // deterministic fingerprint.
        Err(SimError::Timeout { .. }) => exec.report(),
        Err(e) => panic!("unexpected simulation error: {e}"),
    };
    let mut line = format!(
        "{label} cd={mode_name} seed={seed} solved_round={:?} solver={:?} rounds={} leaders={} tx=[",
        report.solved_round,
        report.solver.map(|id| id.0),
        report.rounds_executed,
        report.leaders.len(),
    );
    for (i, &tx) in report.metrics.transmissions_per_node.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        let _ = write!(line, "{tx}");
    }
    line.push(']');
    line
}

fn current_fingerprints() -> String {
    let (c, n, active) = (16u32, 1u64 << 10, 60usize);
    let mut out = String::new();
    for (mode, mode_name) in MODES {
        for seed in SEEDS {
            let line = fingerprint("full", seed, mode, mode_name, |exec| {
                for _ in 0..active {
                    exec.add_node(FullAlgorithm::new(Params::practical(), c, n));
                }
            });
            out.push_str(&line);
            out.push('\n');
        }
        for seed in SEEDS {
            let line = fingerprint("two-active", seed, mode, mode_name, |exec| {
                exec.add_node(TwoActive::new(c, n));
                exec.add_node(TwoActive::new(c, n));
            });
            out.push_str(&line);
            out.push('\n');
        }
    }
    out
}

#[test]
fn engine_matches_pre_refactor_oracle() {
    let path = fixture_path();
    let current = current_fingerprints();
    if std::env::var_os("ENGINE_ORACLE_REGEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("fixture dir")).expect("mkdir fixtures");
        std::fs::write(&path, &current).expect("write fixture");
        return;
    }
    let recorded = std::fs::read_to_string(&path)
        .expect("fixture missing; run with ENGINE_ORACLE_REGEN=1 to record");
    let recorded_lines: Vec<&str> = recorded.lines().collect();
    let current_lines: Vec<&str> = current.lines().collect();
    assert_eq!(
        recorded_lines.len(),
        current_lines.len(),
        "oracle grid size changed"
    );
    for (old, new) in recorded_lines.iter().zip(&current_lines) {
        assert_eq!(old, new, "engine diverged from pre-refactor behavior");
    }
}
