//! Model-level integration tests: the algorithms really do depend on the
//! model features the paper assumes — strong collision detection and
//! multiple channels — and degrade exactly as predicted without them.

use contention::baselines::{BinaryDescent, Decay};
use contention::{FullAlgorithm, Params, TwoActive};
use mac_sim::{CdMode, Engine, SimConfig, SimError, StopWhen};

/// `TwoActive`'s renaming step has transmitters use their collision
/// detectors to learn they are alone — under receiver-only CD the
/// transmitter learns nothing, so the step can never advance and the run
/// times out. This is the paper's strong-CD assumption made executable.
#[test]
fn two_active_requires_strong_cd() {
    let cfg = SimConfig::new(16)
        .seed(1)
        .cd_mode(CdMode::ReceiverOnly)
        .max_rounds(2_000);
    let mut exec = Engine::new(cfg);
    exec.add_node(TwoActive::new(16, 1 << 10));
    exec.add_node(TwoActive::new(16, 1 << 10));
    match exec.run() {
        Err(SimError::Timeout { .. }) => {}
        Ok(report) => {
            // Both transmit every round; a solve could only be a freak lone
            // transmission on channel 1 while the protocol is stuck — but
            // the protocol itself must never have terminated cleanly.
            assert!(
                !report.leaders.len() > 0,
                "no node can believe it won without transmitter CD"
            );
        }
        Err(e) => panic!("unexpected error: {e}"),
    }
}

/// The full algorithm's knock-out logic reads transmitter-side feedback the
/// same way; without strong CD no node can ever become leader through the
/// protocol's own logic.
#[test]
fn full_algorithm_never_self_elects_without_strong_cd() {
    let cfg = SimConfig::new(64)
        .seed(2)
        .cd_mode(CdMode::ReceiverOnly)
        .stop_when(StopWhen::Solved)
        .max_rounds(3_000);
    let mut exec = Engine::new(cfg);
    for _ in 0..50 {
        exec.add_node(FullAlgorithm::new(Params::practical(), 64, 1 << 10));
    }
    // The run may luck into a lone primary transmission (solving the
    // one-shot problem) or time out; either way, no leader self-elects.
    let leaders = match exec.run() {
        Ok(report) => report.leaders.len(),
        Err(SimError::Timeout { .. }) => 0,
        Err(e) => panic!("unexpected error: {e}"),
    };
    assert_eq!(leaders, 0, "self-election requires transmitter-side CD");
}

/// The no-CD baselines, by contrast, are honest about their model: they run
/// fine under `CdMode::None`.
#[test]
fn decay_is_cd_free() {
    let cfg = SimConfig::new(1)
        .seed(3)
        .cd_mode(CdMode::None)
        .max_rounds(100_000);
    let mut exec = Engine::new(cfg);
    for _ in 0..64 {
        exec.add_node(Decay::new(1 << 10));
    }
    assert!(exec.run().expect("solves").is_solved());
}

/// Binary descent under strong CD is deterministic: same activation set,
/// same number of rounds, every seed (it uses no randomness at all).
#[test]
fn binary_descent_is_seed_independent() {
    let rounds: Vec<u64> = (0..5)
        .map(|seed| {
            let cfg = SimConfig::new(1).seed(seed).max_rounds(10_000);
            let mut exec = Engine::new(cfg);
            for id in [5u64, 99, 731, 1000] {
                exec.add_node(BinaryDescent::new(id, 1 << 10));
            }
            exec.run()
                .expect("solves")
                .rounds_to_solve()
                .expect("solved")
        })
        .collect();
    assert!(rounds.windows(2).all(|w| w[0] == w[1]), "{rounds:?}");
}

/// Channel isolation: traffic on channel i is invisible on channel j. Two
/// disjoint populations running on disjoint channel ranges (via distinct
/// primary-channel use) cannot interfere — the two-node algorithm on 2
/// channels solves identically whether or not a decay population hammers
/// channels above 2.
#[test]
fn channels_are_isolated() {
    // Reference: clean two-node run on C=16 restricted to its own behavior.
    let clean = {
        let cfg = SimConfig::new(16).seed(4).max_rounds(10_000);
        let mut exec = Engine::new(cfg);
        exec.add_node(TwoActive::new(2, 1 << 8)); // uses only channels 1..2
        exec.add_node(TwoActive::new(2, 1 << 8));
        exec.run().expect("solves").solved_round
    };
    // Same two nodes, same seeds (node indices preserved), plus background
    // noise pinned to channels 3..=16 — sleepers that transmit off-range.
    use mac_sim::{Action, ChannelId, Feedback, Protocol, RoundContext, Status};
    use rand::rngs::SmallRng;
    use rand::Rng;
    struct Noise;
    impl Protocol for Noise {
        type Msg = u32;
        fn act(&mut self, _ctx: &RoundContext, rng: &mut SmallRng) -> Action<u32> {
            Action::transmit(ChannelId::new(rng.gen_range(3..=16)), 0)
        }
        fn observe(&mut self, _: &RoundContext, _: Feedback<u32>, _: &mut SmallRng) {}
        fn status(&self) -> Status {
            Status::Active
        }
    }
    let noisy = {
        let cfg = SimConfig::new(16).seed(4).max_rounds(10_000);
        let mut exec: Engine<Box<dyn Protocol<Msg = u32>>> = Engine::new(cfg);
        exec.add_node(Box::new(TwoActive::new(2, 1 << 8)));
        exec.add_node(Box::new(TwoActive::new(2, 1 << 8)));
        for _ in 0..20 {
            exec.add_node(Box::new(Noise));
        }
        exec.run().expect("solves").solved_round
    };
    assert_eq!(clean, noisy, "off-channel traffic must not affect the run");
}

/// Simultaneous vs staggered: the executor's wake-up machinery shifts an
/// execution in time without changing its structure when all offsets are
/// equal.
#[test]
fn uniform_offset_shifts_solve_round() {
    let run_at = |offset: u64| {
        let cfg = SimConfig::new(32).seed(9).max_rounds(100_000);
        let mut exec = Engine::new(cfg);
        for _ in 0..20 {
            exec.add_node_at(FullAlgorithm::new(Params::practical(), 32, 1 << 10), offset);
        }
        exec.run().expect("solves").solved_round.expect("solved")
    };
    let base = run_at(0);
    let shifted = run_at(17);
    assert_eq!(base + 17, shifted);
}
