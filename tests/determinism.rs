//! Reproducibility guarantees: every run is a pure function of
//! (seed, configuration, node set) — the property that makes the
//! experiment tables in EXPERIMENTS.md regenerable bit-for-bit.

use contention::baselines::CdTournament;
use contention::{FullAlgorithm, Params, TwoActive};
use mac_sim::{Engine, RunReport, SimConfig, StopWhen};

fn run_full(seed: u64, c: u32, n: u64, active: usize) -> RunReport {
    let cfg = SimConfig::new(c)
        .seed(seed)
        .stop_when(StopWhen::AllTerminated)
        .max_rounds(1_000_000);
    let mut exec = Engine::new(cfg);
    for _ in 0..active {
        exec.add_node(FullAlgorithm::new(Params::practical(), c, n));
    }
    exec.run().expect("runs")
}

#[test]
fn identical_seeds_identical_everything() {
    let a = run_full(12345, 64, 1 << 12, 300);
    let b = run_full(12345, 64, 1 << 12, 300);
    assert_eq!(a.solved_round, b.solved_round);
    assert_eq!(a.solver, b.solver);
    assert_eq!(a.leaders, b.leaders);
    assert_eq!(a.rounds_executed, b.rounds_executed);
    assert_eq!(a.metrics.transmissions, b.metrics.transmissions);
    assert_eq!(
        a.metrics.transmissions_per_node,
        b.metrics.transmissions_per_node
    );
}

#[test]
fn different_seeds_differ_somewhere() {
    let outcomes: Vec<Option<u64>> = (0..10)
        .map(|s| run_full(s, 64, 1 << 12, 300).solved_round)
        .collect();
    let first = outcomes[0];
    assert!(
        outcomes.iter().any(|&o| o != first),
        "10 different seeds all produced {first:?}"
    );
}

#[test]
fn node_insertion_order_defines_identity() {
    // Swapping insertion order re-seeds nodes, so outcomes may change, but
    // the same order twice must agree — node identity is positional.
    let build = |seed| {
        let cfg = SimConfig::new(8)
            .seed(seed)
            .stop_when(StopWhen::AllTerminated)
            .max_rounds(100_000);
        let mut exec = Engine::new(cfg);
        exec.add_node(TwoActive::new(8, 256));
        exec.add_node(TwoActive::new(8, 256));
        exec
    };
    let w1 = build(7).run().expect("runs").leaders;
    let w2 = build(7).run().expect("runs").leaders;
    assert_eq!(w1, w2);
}

#[test]
fn harness_parallel_runner_is_deterministic() {
    use mac_sim::trials::run_trials;
    let build = |seed: u64| {
        let mut exec = Engine::new(SimConfig::new(1).seed(seed).max_rounds(100_000));
        for _ in 0..32 {
            exec.add_node(CdTournament::new());
        }
        exec
    };
    let a: Vec<Option<u64>> = run_trials(16, 5, build)
        .iter()
        .map(|r| r.solved_round)
        .collect();
    let b: Vec<Option<u64>> = run_trials(16, 5, build)
        .iter()
        .map(|r| r.solved_round)
        .collect();
    assert_eq!(a, b, "thread scheduling leaked into results");
}

#[test]
fn trial_results_are_thread_count_invariant() {
    use mac_sim::trials::run_trials_with_threads;
    let build = |seed: u64| {
        let mut engine = Engine::new(SimConfig::new(4).seed(seed).max_rounds(100_000));
        for _ in 0..24 {
            engine.add_node(CdTournament::new());
        }
        engine
    };
    let extract = |_: &Engine<CdTournament>, r: &RunReport| {
        (r.summary(), r.metrics.transmissions_per_node.clone())
    };
    let serial = run_trials_with_threads(17, 900, 1, build, extract);
    for threads in [2, 4, 7, 16] {
        let parallel = run_trials_with_threads(17, 900, threads, build, extract);
        assert_eq!(
            serial, parallel,
            "{threads} worker threads changed trial results"
        );
    }
}

#[test]
fn trace_is_reproducible() {
    use mac_sim::TraceLevel;
    let run = || {
        let cfg = SimConfig::new(16)
            .seed(3)
            .trace_level(TraceLevel::Channels)
            .stop_when(StopWhen::AllTerminated)
            .max_rounds(100_000);
        let mut exec = Engine::new(cfg);
        for _ in 0..10 {
            exec.add_node(FullAlgorithm::new(Params::practical(), 16, 1 << 8));
        }
        exec.run().expect("runs").trace
    };
    assert_eq!(run(), run());
}
