//! Cross-crate integration: the full pipeline end to end, step hand-offs,
//! and agreement between the harness experiments and the core library.

use contention::{
    FullAlgorithm, IdReduction, IdReductionOutcome, LeafElection, Params, Reduce, ReduceOutcome,
    TwoActive,
};
use contention_harness::{sample_distinct, RunCtx, Scale};
use mac_sim::trials::run_trials_with;
use mac_sim::{Engine, Protocol as _, SimConfig, Status, StopWhen};
use std::collections::HashSet;

/// The whole pipeline, across a grid of (n, C, |A|), always elects at most
/// one leader, solves the problem, and leaves nobody active.
#[test]
fn full_pipeline_grid() {
    for &(c, n, active) in &[
        (8u32, 1u64 << 8, 3usize),
        (16, 1 << 10, 50),
        (64, 1 << 12, 500),
        (256, 1 << 14, 2000),
        (1024, 1 << 16, 1000),
    ] {
        let cfg = SimConfig::new(c)
            .seed(99)
            .stop_when(StopWhen::AllTerminated)
            .max_rounds(1_000_000);
        let mut exec = Engine::new(cfg);
        for _ in 0..active {
            exec.add_node(FullAlgorithm::new(Params::practical(), c, n));
        }
        let report = exec.run().expect("pipeline runs");
        assert!(report.is_solved(), "C={c} n={n} |A|={active}");
        assert!(report.leaders.len() <= 1, "C={c}: {:?}", report.leaders);
        assert!(report.active_remaining.is_empty());
    }
}

/// Manually chain the three steps the way `FullAlgorithm` does, verifying
/// the contracts at each hand-off: Reduce's survivors are few; IdReduction
/// renames them uniquely into [C/2]; LeafElection elects exactly one.
#[test]
fn step_contracts_chain_manually() {
    let (c, n, active) = (128u32, 1u64 << 12, 800usize);

    // Step 1: Reduce. A seed usually ends with a leader instead of
    // survivors (with |A| << n the early low-probability rounds make a lone
    // broadcast — which already solves the problem — the likely outcome),
    // so search seeds for the uncommon run that hands survivors to step 2.
    let mut survivors = 0usize;
    for seed in 0..200u64 {
        let cfg = SimConfig::new(1)
            .seed(seed)
            .stop_when(StopWhen::AllTerminated)
            .max_rounds(10_000);
        let mut exec = Engine::new(cfg);
        for _ in 0..active {
            exec.add_node(Reduce::new(n));
        }
        let report = exec.run().expect("reduce runs");
        let survived = exec
            .iter_nodes()
            .filter(|r| r.outcome() == Some(ReduceOutcome::Survived))
            .count();
        let led = report.leaders.len();
        assert!(survived + led >= 1, "seed {seed}: Reduce wiped everyone");
        assert!(
            survived <= 12 * 12,
            "seed {seed}: Reduce left too many: {survived}"
        );
        if survived >= 2 {
            survivors = survived;
            break;
        }
    }
    assert!(survivors >= 2, "no seed in 0..200 produced plain survivors");

    // Step 2: IdReduction over the survivors.
    let cfg = SimConfig::new(c)
        .seed(6)
        .stop_when(StopWhen::AllTerminated)
        .max_rounds(100_000);
    let mut exec = Engine::new(cfg);
    for _ in 0..survivors {
        exec.add_node(IdReduction::new(Params::practical(), c));
    }
    exec.run().expect("id reduction runs");
    let ids: Vec<u32> = exec
        .iter_nodes()
        .filter_map(|p| match p.outcome().expect("terminated") {
            IdReductionOutcome::Renamed(id) => Some(id),
            IdReductionOutcome::Eliminated => None,
        })
        .collect();
    assert!(!ids.is_empty());
    let set: HashSet<u32> = ids.iter().copied().collect();
    assert_eq!(set.len(), ids.len(), "duplicate ids from IdReduction");
    assert!(ids.iter().all(|&id| id >= 1 && id <= c / 2));

    // Step 3: LeafElection over the renamed ids.
    let cfg = SimConfig::new(c)
        .seed(7)
        .stop_when(StopWhen::AllTerminated)
        .max_rounds(100_000);
    let mut exec = Engine::new(cfg);
    for &id in &ids {
        exec.add_node(LeafElection::new(c, id));
    }
    let report = exec.run().expect("leaf election runs");
    assert_eq!(report.leaders.len(), 1);
    assert!(report.is_solved());
}

/// The two-node specialist and the general algorithm agree on the contract
/// (exactly one leader) for the restricted case, across seeds.
#[test]
fn specialist_and_generalist_agree_on_two_nodes() {
    for seed in 0..15 {
        let (c, n) = (64u32, 1u64 << 12);
        for use_specialist in [true, false] {
            let cfg = SimConfig::new(c)
                .seed(seed)
                .stop_when(StopWhen::AllTerminated)
                .max_rounds(1_000_000);
            let leaders = if use_specialist {
                let mut exec = Engine::new(cfg);
                exec.add_node(TwoActive::new(c, n));
                exec.add_node(TwoActive::new(c, n));
                exec.run().expect("runs").leaders.len()
            } else {
                let mut exec = Engine::new(cfg);
                exec.add_node(FullAlgorithm::new(Params::practical(), c, n));
                exec.add_node(FullAlgorithm::new(Params::practical(), c, n));
                exec.run().expect("runs").leaders.len()
            };
            assert!(
                leaders <= 1,
                "seed {seed} specialist={use_specialist}: {leaders} leaders"
            );
        }
    }
}

/// The harness's trial runner, sampling, and the core crate compose: run a
/// LeafElection sweep through the harness API and check its invariants.
#[test]
fn harness_drives_core_correctly() {
    let c = 128u32;
    let winners: Vec<u32> = run_trials_with(
        10,
        42,
        |seed| {
            let cfg = SimConfig::new(c)
                .seed(seed)
                .stop_when(StopWhen::AllTerminated)
                .max_rounds(100_000);
            let mut exec = Engine::new(cfg);
            for id in sample_distinct(64, 20, seed) {
                exec.add_node(LeafElection::new(c, id as u32 + 1));
            }
            exec
        },
        |exec, report| {
            assert_eq!(report.leaders.len(), 1);
            exec.node(report.leaders[0]).cohort_size()
        },
    );
    // Winners coalesced at least once in every trial (20 actives).
    assert!(winners.iter().all(|&size| size >= 2), "{winners:?}");
}

/// Quick-scale experiments run end to end and produce non-empty reports.
/// (The cheap ones only — the expensive sweeps run in `repro`/benches.)
#[test]
fn quick_experiments_produce_reports() {
    use contention_harness::experiments;
    for id in ["e3", "e4", "e7"] {
        let runner = experiments::by_id(id).expect("known id");
        let report = runner(&RunCtx::new(Scale::Quick));
        assert!(!report.sections.is_empty(), "{id}: no sections");
        assert!(
            report.sections.iter().all(|s| !s.table.is_empty()),
            "{id}: empty table"
        );
    }
}

/// Leaders reported by the executor are consistent with node-level status.
#[test]
fn leader_report_matches_node_status() {
    let cfg = SimConfig::new(32)
        .seed(3)
        .stop_when(StopWhen::AllTerminated)
        .max_rounds(100_000);
    let mut exec = Engine::new(cfg);
    for _ in 0..100 {
        exec.add_node(FullAlgorithm::new(Params::practical(), 32, 1 << 10));
    }
    let report = exec.run().expect("runs");
    let by_status: Vec<usize> = exec
        .iter_nodes()
        .enumerate()
        .filter(|(_, p)| p.status() == Status::Leader)
        .map(|(i, _)| i)
        .collect();
    let by_report: Vec<usize> = report.leaders.iter().map(|id| id.0).collect();
    assert_eq!(by_status, by_report);
}

/// Every experiment produces a non-empty report at quick scale — the full
/// harness exercised end to end. (Release-profile CI runs this in seconds;
/// debug takes a couple of minutes, which is still acceptable for a suite
/// gate.)
#[test]
fn all_experiments_render_at_quick_scale() {
    use contention_harness::experiments;
    let reports = experiments::run_all(&RunCtx::new(Scale::Quick));
    assert_eq!(reports.len(), 21);
    for report in &reports {
        assert!(!report.sections.is_empty(), "{}: no sections", report.id);
        for section in &report.sections {
            assert!(
                !section.table.is_empty(),
                "{}/{}: empty table",
                report.id,
                section.caption
            );
        }
        assert!(report.to_markdown().contains(report.id));
    }
}
