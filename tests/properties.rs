//! Property-based tests (proptest) over the workspace's core invariants.

use contention::tree::ChannelTree;
use contention::{
    FullAlgorithm, IdReduction, IdReductionOutcome, LeafElection, Params, Reduce, ReduceOutcome,
};
use crew_pram::search::{snir_boundary, split_points};
use mac_sim::{Engine, SimConfig, StopWhen};
use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    /// Tree ancestor arithmetic matches the paper's closed-form channel
    /// assignment at every level, for arbitrary tree sizes.
    #[test]
    fn tree_position_formula(h in 1u32..10, id_raw in 1u32..1024) {
        let leaves = 1u32 << h;
        let id = (id_raw - 1) % leaves + 1;
        let tree = ChannelTree::new(leaves);
        for m in 0..=h {
            let expected = id.div_ceil(1 << (h - m));
            prop_assert_eq!(tree.leaf(id).ancestor_at_level(m).position_in_level(), expected);
        }
    }

    /// Divergence level is symmetric, within [1, h], and is exactly the
    /// first level at which ancestors differ.
    #[test]
    fn tree_divergence_properties(h in 1u32..10, a_raw in 1u32..1024, b_raw in 1u32..1024) {
        let leaves = 1u32 << h;
        let a = (a_raw - 1) % leaves + 1;
        let b = (b_raw - 1) % leaves + 1;
        let tree = ChannelTree::new(leaves);
        match tree.divergence_level(a, b) {
            None => prop_assert_eq!(a, b),
            Some(level) => {
                prop_assert!(a != b);
                prop_assert!(level >= 1 && level <= h);
                prop_assert_eq!(tree.divergence_level(b, a), Some(level));
                prop_assert_ne!(
                    tree.leaf(a).ancestor_at_level(level),
                    tree.leaf(b).ancestor_at_level(level)
                );
                prop_assert_eq!(
                    tree.leaf(a).ancestor_at_level(level - 1),
                    tree.leaf(b).ancestor_at_level(level - 1)
                );
            }
        }
    }

    /// Snir's PRAM search returns the same boundary as a linear scan, for
    /// arbitrary monotone predicates and processor counts, within the
    /// iteration budget of `ideal_iterations`.
    #[test]
    fn snir_search_matches_linear_scan(
        zeros in 0usize..40,
        extra_ones in 1usize..40,
        p in 1usize..12,
    ) {
        let mut bits = vec![false; zeros];
        bits.extend(std::iter::repeat_n(true, extra_ones));
        let report = snir_boundary(&bits, p).expect("search runs");
        prop_assert_eq!(report.index, zeros + 1);
        let ideal = crew_pram::search::ideal_iterations(bits.len(), p);
        prop_assert!(report.iterations <= ideal);
    }

    /// `split_points` always produces a shrinking, covering subdivision.
    #[test]
    fn split_points_invariants(lo in 0usize..100, extra in 2usize..100, p in 1usize..64) {
        let hi = lo + extra;
        let (seg, k) = split_points(lo, hi, p);
        prop_assert!(seg >= 1);
        prop_assert!(k >= 2, "k={k} for range {extra}"); // range >= 2 here
        prop_assert!(k <= p + 1);
        prop_assert!(lo + (k - 1) * seg < hi);
        prop_assert!(lo + k * seg >= hi);
        prop_assert!(seg < extra, "interval must shrink");
    }
}

proptest! {
    // Simulation-heavy properties: fewer cases, still broad coverage.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// LeafElection with any nonempty set of distinct leaf ids elects
    /// exactly one leader, and the winning id belongs to the input set.
    #[test]
    fn leaf_election_always_one_leader(
        h in 2u32..8,
        ids_raw in vec(1u32..=256, 1..20),
        seed in 0u64..1000,
    ) {
        let leaves = 1u32 << h;
        let c = leaves * 2;
        let ids: HashSet<u32> = ids_raw.iter().map(|&x| (x - 1) % leaves + 1).collect();
        let cfg = SimConfig::new(c)
            .seed(seed)
            .stop_when(StopWhen::AllTerminated)
            .max_rounds(1_000_000);
        let mut exec = Engine::new(cfg);
        let ordered: Vec<u32> = ids.iter().copied().collect();
        for &id in &ordered {
            exec.add_node(LeafElection::new(c, id));
        }
        let report = exec.run().expect("elects");
        prop_assert_eq!(report.leaders.len(), 1);
        let winner_idx = report.leaders[0].0;
        prop_assert!(ids.contains(&ordered[winner_idx]));
        // Property 11 residue: the winner's cohort ids form [1..=size].
        let winner = exec.node(report.leaders[0]);
        let mut cids: Vec<u32> = exec
            .iter_nodes()
            .filter(|n| {
                n.cohort_node() == winner.cohort_node() && n.cohort_size() == winner.cohort_size()
            })
            .map(contention::LeafElection::cohort_id)
            .collect();
        cids.sort_unstable();
        let expect: Vec<u32> = (1..=winner.cohort_size()).collect();
        prop_assert_eq!(cids, expect);
    }

    /// IdReduction renames a random crowd into distinct ids from [C/2].
    #[test]
    fn id_reduction_unique_ids(ce in 3u32..10, active in 1usize..80, seed in 0u64..1000) {
        let c = 1u32 << ce;
        let cfg = SimConfig::new(c)
            .seed(seed)
            .stop_when(StopWhen::AllTerminated)
            .max_rounds(1_000_000);
        let mut exec = Engine::new(cfg);
        for _ in 0..active {
            exec.add_node(IdReduction::new(Params::practical(), c));
        }
        exec.run().expect("terminates");
        let ids: Vec<u32> = exec
            .iter_nodes()
            .filter_map(|p| match p.outcome().expect("terminated") {
                IdReductionOutcome::Renamed(id) => Some(id),
                IdReductionOutcome::Eliminated => None,
            })
            .collect();
        prop_assert!(!ids.is_empty());
        let set: HashSet<u32> = ids.iter().copied().collect();
        prop_assert_eq!(set.len(), ids.len());
        prop_assert!(ids.iter().all(|&id| id >= 1 && id <= c / 2));
    }

    /// Reduce never knocks out the entire population unless a leader
    /// emerged (who, by definition, already solved the problem).
    #[test]
    fn reduce_never_wipes_everyone(
        ne in 2u32..20,
        active in 1usize..300,
        seed in 0u64..1000,
    ) {
        let n = 1u64 << ne;
        let cfg = SimConfig::new(1)
            .seed(seed)
            .stop_when(StopWhen::AllTerminated)
            .max_rounds(100_000);
        let mut exec = Engine::new(cfg);
        for _ in 0..active {
            exec.add_node(Reduce::new(n));
        }
        exec.run().expect("terminates");
        let mut survivors = 0usize;
        let mut leaders = 0usize;
        for node in exec.iter_nodes() {
            match node.outcome().expect("terminated") {
                ReduceOutcome::Survived => survivors += 1,
                ReduceOutcome::Leader => leaders += 1,
                ReduceOutcome::Knocked => {}
            }
        }
        prop_assert!(leaders <= 1);
        prop_assert!(survivors + leaders >= 1);
    }

    /// The full algorithm solves for arbitrary (C, n, |A|) and never
    /// produces two leaders.
    #[test]
    fn full_algorithm_always_solves(
        ce in 0u32..10,
        ne in 1u32..16,
        active in 1usize..120,
        seed in 0u64..1000,
    ) {
        let c = 1u32 << ce;
        let n = 1u64 << ne.max(1);
        let cfg = SimConfig::new(c)
            .seed(seed)
            .stop_when(StopWhen::AllTerminated)
            .max_rounds(1_000_000);
        let mut exec = Engine::new(cfg);
        for _ in 0..active {
            exec.add_node(FullAlgorithm::new(Params::practical(), c, n));
        }
        let report = exec.run().expect("solves");
        prop_assert!(report.is_solved());
        prop_assert!(report.leaders.len() <= 1);
        prop_assert!(report.active_remaining.is_empty());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Cohort aggregation agrees with plain folds for every operator,
    /// cohort size, and value set.
    #[test]
    fn cohort_aggregate_matches_fold(values in vec(-1_000i64..1_000, 1..40)) {
        use contention::cohort_compute::{AggregateOp, CohortAggregate};
        use mac_sim::ChannelId;
        for (op, want) in [
            (AggregateOp::Max, *values.iter().max().expect("nonempty")),
            (AggregateOp::Min, *values.iter().min().expect("nonempty")),
            (AggregateOp::Sum, values.iter().sum::<i64>()),
            (AggregateOp::Count, values.len() as i64),
        ] {
            let cfg = SimConfig::new(64).stop_when(StopWhen::AllTerminated).max_rounds(1000);
            let mut exec = Engine::new(cfg);
            for (i, &v) in values.iter().enumerate() {
                exec.add_node(CohortAggregate::new(
                    ChannelId::new(2),
                    values.len() as u32,
                    i as u32 + 1,
                    v,
                    op,
                ));
            }
            exec.run().expect("aggregates");
            for node in exec.iter_nodes() {
                prop_assert_eq!(node.result(), Some(want));
            }
        }
    }

    /// The serializer serves every contender exactly once, under any
    /// contender count and seed.
    #[test]
    fn serializer_serves_everyone(k in 1usize..24, seed in 0u64..500) {
        use contention::serialize::SerializeAll;
        let cfg = SimConfig::new(16)
            .seed(seed)
            .stop_when(StopWhen::AllTerminated)
            .max_rounds(10_000_000);
        let mut exec = Engine::new(cfg);
        for payload in 0..k as u32 {
            let factory = move || FullAlgorithm::new(Params::practical(), 16, 1 << 10);
            exec.add_node(SerializeAll::new(factory, payload));
        }
        exec.run().expect("serializes");
        let mut served: Vec<u32> = exec
            .iter_nodes()
            .filter(|s| s.served_at().is_some())
            .map(|s| s.payload())
            .collect();
        served.sort_unstable();
        prop_assert_eq!(served, (0..k as u32).collect::<Vec<_>>());
    }

    /// The session facade solves for every algorithm at random valid
    /// configurations.
    #[test]
    fn session_facade_resolves(
        ce in 1u32..8,
        ne in 3u32..14,
        frac in 0.01f64..1.0,
        seed in 0u64..500,
    ) {
        use contention::session::{Algorithm, Session};
        let c = 1u32 << ce;
        let n = 1u64 << ne;
        let active = (((n as f64) * frac) as usize).clamp(1, 2000);
        for algo in [
            Algorithm::Paper(Params::practical()),
            Algorithm::CdTournament,
            Algorithm::BinaryDescent,
            Algorithm::Decay,
        ] {
            let res = Session::new(c, n)
                .algorithm(algo)
                .seed(seed)
                .run(active)
                .expect("resolves");
            prop_assert!(res.rounds().is_some(), "{}", algo.name());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The harness's distinct sampler is honest.
    #[test]
    fn sample_distinct_properties(universe in 1u64..10_000, frac in 0.0f64..1.0, seed in 0u64..1000) {
        let count = ((universe as f64) * frac) as usize;
        let sample = contention_harness::sample_distinct(universe, count, seed);
        prop_assert_eq!(sample.len(), count);
        let set: HashSet<u64> = sample.iter().copied().collect();
        prop_assert_eq!(set.len(), count);
        prop_assert!(sample.iter().all(|&x| x < universe));
    }
}
