//! Observer-effect freedom: attaching an observer — a `RunRecorder` span
//! sink or a `TelemetrySink` feeding a `MetricsHub` — must not change a
//! single bit of any run.
//!
//! The span-model recorder rides the engine's event stream and asks for
//! per-node phase labels (`wants_node_phases`), which makes the engine do
//! extra label reads on the observation path. This test replays the two
//! behavioral oracles' full grids — the 30-case `engine_oracle` grid and
//! the 42-case `phase_equivalence` grid — once bare and once with a
//! recorder attached, demanding identical reports, metrics, node statuses,
//! and stats; then replays the same grids with the telemetry sink, which
//! tallies counters only (no span tree), under the same demand. Protocols
//! draw randomness only inside `act`/`observe`, so a single extra RNG
//! draw anywhere would shift every subsequent decision of that node and
//! diverge the trajectory; bit-identical runs certify the observers
//! consumed zero draws.

use contention::{FullAlgorithm, FullStats, Params, TwoActive};
use mac_sim::obs::{RunRecord, RunRecorder};
use mac_sim::{
    CdMode, Engine, Protocol, Registry, RunReport, SimConfig, SimError, Status, StopWhen,
    TelemetrySink,
};

const MODES: [CdMode; 3] = [CdMode::Strong, CdMode::ReceiverOnly, CdMode::None];

fn finish<P: Protocol>(result: Result<RunReport, SimError>, exec: &Engine<P>) -> RunReport {
    match result {
        Ok(report) => report,
        // Weak CD modes can time out by design; the partial run is still a
        // deterministic fingerprint.
        Err(SimError::Timeout { .. }) => exec.report(),
        Err(e) => panic!("unexpected simulation error: {e}"),
    }
}

/// Runs the same configuration twice — bare, then with a recorder — and
/// returns everything observable from both runs.
#[allow(clippy::type_complexity)]
fn bare_and_recorded<P: Protocol>(
    c: u32,
    seed: u64,
    mode: CdMode,
    build: impl Fn() -> P,
    count: usize,
) -> (
    (RunReport, Vec<Status>),
    (RunReport, Vec<Status>),
    RunRecord,
) {
    let cfg = || {
        SimConfig::new(c)
            .seed(seed)
            .cd_mode(mode)
            .stop_when(StopWhen::Solved)
            .max_rounds(2_000)
    };
    let mut bare = Engine::new(cfg());
    for _ in 0..count {
        bare.add_node(build());
    }
    let bare_report = finish(bare.run(), &bare);
    let bare_statuses: Vec<Status> = bare.iter_nodes().map(Protocol::status).collect();

    let mut observed = Engine::new(cfg());
    for _ in 0..count {
        observed.add_node(build());
    }
    let mut recorder = RunRecorder::new();
    let observed_report = finish(observed.run_observed(&mut recorder), &observed);
    let observed_statuses: Vec<Status> = observed.iter_nodes().map(Protocol::status).collect();

    (
        (bare_report, bare_statuses),
        (observed_report, observed_statuses),
        recorder.into_record(seed),
    )
}

fn assert_identical(label: &str, bare: &(RunReport, Vec<Status>), obs: &(RunReport, Vec<Status>)) {
    assert_eq!(
        bare.0.solved_round, obs.0.solved_round,
        "{label}: solved_round"
    );
    assert_eq!(bare.0.solver, obs.0.solver, "{label}: solver");
    assert_eq!(
        bare.0.rounds_executed, obs.0.rounds_executed,
        "{label}: rounds_executed"
    );
    assert_eq!(bare.0.leaders, obs.0.leaders, "{label}: leader set");
    assert_eq!(bare.0.metrics, obs.0.metrics, "{label}: full metrics");
    assert_eq!(bare.1, obs.1, "{label}: node statuses");
}

/// The recorder's own totals must also be consistent with the run it
/// observed — a recorder that is inert but wrong would pass the identity
/// checks alone.
fn assert_record_consistent(label: &str, report: &RunReport, record: &RunRecord) {
    assert_eq!(
        record.rounds, report.rounds_executed,
        "{label}: record rounds"
    );
    assert_eq!(
        record.transmissions, report.metrics.transmissions,
        "{label}: record tx"
    );
    assert_eq!(record.listens, report.metrics.listens, "{label}: record rx");
    assert_eq!(
        record.solved_round, report.solved_round,
        "{label}: record solve"
    );
}

/// Runs the same configuration twice — bare, then with a [`TelemetrySink`]
/// tallying the metrics-hub counters — and returns both observations plus
/// the flushed registry.
#[allow(clippy::type_complexity)]
fn bare_and_metered<P: Protocol>(
    c: u32,
    seed: u64,
    mode: CdMode,
    build: impl Fn() -> P,
    count: usize,
) -> ((RunReport, Vec<Status>), (RunReport, Vec<Status>), Registry) {
    let cfg = || {
        SimConfig::new(c)
            .seed(seed)
            .cd_mode(mode)
            .stop_when(StopWhen::Solved)
            .max_rounds(2_000)
    };
    let mut bare = Engine::new(cfg());
    for _ in 0..count {
        bare.add_node(build());
    }
    let bare_report = finish(bare.run(), &bare);
    let bare_statuses: Vec<Status> = bare.iter_nodes().map(Protocol::status).collect();

    let mut observed = Engine::new(cfg());
    for _ in 0..count {
        observed.add_node(build());
    }
    let mut sink = TelemetrySink::new();
    let observed_report = finish(observed.run_observed(&mut sink), &observed);
    let observed_statuses: Vec<Status> = observed.iter_nodes().map(Protocol::status).collect();
    let mut registry = Registry::new();
    sink.flush_into(&mut registry);

    (
        (bare_report, bare_statuses),
        (observed_report, observed_statuses),
        registry,
    )
}

/// The telemetry counters must agree with the run they observed, for the
/// same reason `assert_record_consistent` exists: an inert-but-wrong
/// observer would pass the identity checks alone.
fn assert_registry_consistent(label: &str, report: &RunReport, registry: &Registry) {
    assert_eq!(registry.counter("engine_runs_total"), 1, "{label}: runs");
    assert_eq!(
        registry.counter("engine_rounds_total"),
        report.rounds_executed,
        "{label}: registry rounds"
    );
    assert_eq!(
        registry.counter("engine_transmissions_total"),
        report.metrics.transmissions,
        "{label}: registry tx"
    );
    assert_eq!(
        registry.counter("engine_listens_total"),
        report.metrics.listens,
        "{label}: registry rx"
    );
    assert_eq!(
        registry.counter("engine_solved_total"),
        u64::from(report.solved_round.is_some()),
        "{label}: registry solve"
    );
}

#[test]
fn engine_oracle_grid_is_observer_free() {
    let (c, n, active) = (16u32, 1u64 << 10, 60usize);
    let params = Params::practical();
    let mut cases = 0;
    for mode in MODES {
        for seed in [11u64, 22, 33, 44, 55] {
            let label = format!("full cd={mode:?} seed={seed}");
            let (bare, obs, record) =
                bare_and_recorded(c, seed, mode, || FullAlgorithm::new(params, c, n), active);
            assert_identical(&label, &bare, &obs);
            assert_record_consistent(&label, &obs.0, &record);
            cases += 1;

            let label = format!("two-active cd={mode:?} seed={seed}");
            let (bare, obs, record) = bare_and_recorded(c, seed, mode, || TwoActive::new(c, n), 2);
            assert_identical(&label, &bare, &obs);
            assert_record_consistent(&label, &obs.0, &record);
            cases += 1;
        }
    }
    assert_eq!(cases, 30, "the engine-oracle grid is 30 cases");
}

#[test]
fn phase_equivalence_grid_is_observer_free() {
    let params = Params::practical();
    // The same grid as tests/phase_equivalence.rs: the pipeline path and
    // the small-C fallback path.
    let configs: [(u32, u64, usize, &[u64]); 2] = [
        (16, 1 << 10, 60, &[11, 22, 33, 44, 55, 66, 77, 88, 99, 110]),
        (4, 1 << 10, 40, &[7, 14, 21, 28]),
    ];
    let mut cases = 0;
    for (c, n, active, seeds) in configs {
        for mode in MODES {
            for &seed in seeds {
                let label = format!("C={c} n={n} |A|={active} cd={mode:?} seed={seed}");
                let (bare, obs, record) =
                    bare_and_recorded(c, seed, mode, || FullAlgorithm::new(params, c, n), active);
                assert_identical(&label, &bare, &obs);
                assert_record_consistent(&label, &obs.0, &record);
                cases += 1;
            }
        }
    }
    assert_eq!(cases, 42, "the phase-equivalence grid is 42 cases");
}

#[test]
fn engine_oracle_grid_is_telemetry_free() {
    let (c, n, active) = (16u32, 1u64 << 10, 60usize);
    let params = Params::practical();
    let mut cases = 0;
    for mode in MODES {
        for seed in [11u64, 22, 33, 44, 55] {
            let label = format!("metered full cd={mode:?} seed={seed}");
            let (bare, obs, registry) =
                bare_and_metered(c, seed, mode, || FullAlgorithm::new(params, c, n), active);
            assert_identical(&label, &bare, &obs);
            assert_registry_consistent(&label, &obs.0, &registry);
            cases += 1;

            let label = format!("metered two-active cd={mode:?} seed={seed}");
            let (bare, obs, registry) = bare_and_metered(c, seed, mode, || TwoActive::new(c, n), 2);
            assert_identical(&label, &bare, &obs);
            assert_registry_consistent(&label, &obs.0, &registry);
            cases += 1;
        }
    }
    assert_eq!(cases, 30, "the engine-oracle grid is 30 cases");
}

#[test]
fn phase_equivalence_grid_is_telemetry_free() {
    let params = Params::practical();
    // The same grid as tests/phase_equivalence.rs: the pipeline path and
    // the small-C fallback path.
    let configs: [(u32, u64, usize, &[u64]); 2] = [
        (16, 1 << 10, 60, &[11, 22, 33, 44, 55, 66, 77, 88, 99, 110]),
        (4, 1 << 10, 40, &[7, 14, 21, 28]),
    ];
    let mut cases = 0;
    for (c, n, active, seeds) in configs {
        for mode in MODES {
            for &seed in seeds {
                let label = format!("metered C={c} n={n} |A|={active} cd={mode:?} seed={seed}");
                let (bare, obs, registry) =
                    bare_and_metered(c, seed, mode, || FullAlgorithm::new(params, c, n), active);
                assert_identical(&label, &bare, &obs);
                assert_registry_consistent(&label, &obs.0, &registry);
                cases += 1;
            }
        }
    }
    assert_eq!(cases, 42, "the phase-equivalence grid is 42 cases");
}

#[test]
fn stats_survive_observation_unchanged() {
    // FullStats (the per-node counters the experiments read) are part of
    // the observable surface too.
    let (c, n, active) = (16u32, 1u64 << 10, 60usize);
    let params = Params::practical();
    for seed in [5u64, 15, 25] {
        let run = |observe: bool| -> Vec<FullStats> {
            let cfg = SimConfig::new(c).seed(seed).max_rounds(2_000);
            let mut exec = Engine::new(cfg);
            for _ in 0..active {
                exec.add_node(FullAlgorithm::new(params, c, n));
            }
            if observe {
                let mut recorder = RunRecorder::new();
                exec.run_observed(&mut recorder).expect("solves");
            } else {
                exec.run().expect("solves");
            }
            exec.iter_nodes().map(FullAlgorithm::stats).collect()
        };
        assert_eq!(run(false), run(true), "seed {seed}: FullStats diverged");
    }
}
