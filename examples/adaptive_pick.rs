//! Scenario: estimate first, then pick the right algorithm.
//!
//! ```text
//! cargo run --release -p contention-bench --example adaptive_pick
//! ```
//!
//! The experiments show a density trade-off: the adaptive tournament is
//! great when few nodes contend, the paper's pipeline when many do (E9's
//! density table). A deployment can buy the best of both with one cheap
//! measurement: run the `lg n + 1`-round [`SizeEstimate`] sweep, then
//! dispatch on the agreed estimate. This example plays that policy against
//! three very different activation densities and prints what it chose and
//! what it cost end to end — estimation rounds included.

use contention::extensions::SizeEstimate;
use contention::session::{Algorithm, Session};
use contention::Params;
use mac_sim::{Engine, SimConfig, StopWhen};

const N: u64 = 1 << 12;
const C: u32 = 64;

/// Phase 1: all activated nodes run the estimator; returns the consensus
/// estimate and the rounds spent.
fn estimate(active: usize, seed: u64) -> (u64, u64) {
    let cfg = SimConfig::new(C)
        .seed(seed)
        .stop_when(StopWhen::AllTerminated)
        .max_rounds(1000);
    let mut exec = Engine::new(cfg);
    for _ in 0..active {
        exec.add_node(SizeEstimate::new(N));
    }
    let report = exec.run().expect("sweep finishes");
    let estimate = exec
        .iter_nodes()
        .next()
        .expect("nonempty")
        .estimate()
        .expect("agreed");
    (estimate, report.rounds_executed)
}

/// Phase 2: the dispatch policy. Sparse bursts go to the adaptive
/// tournament; dense ones to the paper's pipeline.
fn pick(estimate: u64) -> Algorithm {
    if estimate * 16 < N {
        Algorithm::CdTournament
    } else {
        Algorithm::Paper(Params::practical())
    }
}

fn main() {
    println!("adaptive policy on n = {N}, C = {C}: estimate |A|, then dispatch\n");
    for (label, active) in [("sparse", 6usize), ("medium", 200), ("dense", 4096)] {
        let (est, est_rounds) = estimate(active, 42);
        let algo = pick(est);
        let resolution = Session::new(C, N)
            .algorithm(algo)
            .seed(43)
            .run(active)
            .expect("resolves");
        let solve_rounds = resolution.rounds().expect("solved");
        println!(
            "{label:<7} |A| = {active:<5} estimate ≈ {est:<5} → {:<15} \
             {est_rounds} + {solve_rounds} rounds total",
            resolution.algorithm
        );
    }
    println!(
        "\nthe estimator costs a flat lg n + 1 = {} rounds and every node agrees on \
         its output by construction (strong CD makes the sweep a broadcast).",
        (N as f64).log2() as u64 + 1
    );
}
