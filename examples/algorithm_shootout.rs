//! Scenario: picking a symmetry-breaking algorithm for a given radio.
//!
//! ```text
//! cargo run --release -p contention-bench --example algorithm_shootout
//! ```
//!
//! A systems designer choosing between radios (with/without collision
//! detection, narrow/wideband) wants the contention-resolution landscape:
//! this example races the paper's algorithm against the three prior-art
//! baselines across channel counts and prints a decision table — a
//! miniature of experiment E9 (run `repro e9` for the full sweep).

use contention::baselines::{BinaryDescent, Decay, MultiChannelNoCd};
use contention::{FullAlgorithm, Params};
use contention_analysis::Table;
use mac_sim::{CdMode, Engine, SimConfig};

const N: u64 = 1 << 14;
// Dense activation (|A| = n): the adversarial case the worst-case bounds
// target, and where the landscape separates most cleanly.
const ACTIVE: usize = 1 << 14;
const TRIALS: usize = 12;

fn mean_rounds(build: impl Fn(u64) -> Engine<Box<dyn mac_sim::Protocol<Msg = u32>>> + Sync) -> f64 {
    // The summaries path skips metrics/trace entirely — all this shootout
    // needs is the solve round — and fans the trials out over threads.
    let total: u64 = mac_sim::trials::run_trials_summaries(TRIALS, 0, build)
        .iter()
        .map(|s| s.rounds_to_solve().expect("solved"))
        .sum();
    total as f64 / TRIALS as f64
}

fn main() {
    println!("algorithm shootout: n = {N}, |A| = {ACTIVE}, {TRIALS} trials/cell\n");

    let mut table = Table::new(&[
        "C",
        "this paper (CD)",
        "binary descent (CD)",
        "decay (no CD)",
        "multi no-CD",
    ]);

    for c in [1u32, 8, 64, 512] {
        let full = mean_rounds(|seed| {
            let mut exec = Engine::new(SimConfig::new(c).seed(seed).max_rounds(10_000_000));
            for _ in 0..ACTIVE {
                exec.add_node(Box::new(FullAlgorithm::new(Params::practical(), c, N)) as _);
            }
            exec
        });
        let descent = mean_rounds(|seed| {
            let mut exec = Engine::new(SimConfig::new(c).seed(seed).max_rounds(10_000_000));
            for i in 0..ACTIVE {
                // Spread ids evenly over the universe.
                let id = (i as u64) * (N / ACTIVE as u64);
                exec.add_node(Box::new(BinaryDescent::new(id, N)) as _);
            }
            exec
        });
        let decay = mean_rounds(|seed| {
            let cfg = SimConfig::new(c)
                .seed(seed)
                .cd_mode(CdMode::None)
                .max_rounds(10_000_000);
            let mut exec = Engine::new(cfg);
            for _ in 0..ACTIVE {
                exec.add_node(Box::new(Decay::new(N)) as _);
            }
            exec
        });
        let nocd = mean_rounds(|seed| {
            let cfg = SimConfig::new(c)
                .seed(seed)
                .cd_mode(CdMode::None)
                .max_rounds(10_000_000);
            let mut exec = Engine::new(cfg);
            for _ in 0..ACTIVE {
                exec.add_node(Box::new(MultiChannelNoCd::new(c, N)) as _);
            }
            exec
        });
        table.row_owned(vec![
            c.to_string(),
            format!("{full:.1}"),
            format!("{descent:.1}"),
            format!("{decay:.1}"),
            format!("{nocd:.1}"),
        ]);
    }

    println!("{table}");
    println!("\n(mean rounds to the first lone primary-channel transmission; lower is better)");
}
