//! Degraded network: the same contention-resolution run on increasingly
//! hostile radios.
//!
//! ```text
//! cargo run --release -p contention-bench --example degraded_network
//! ```
//!
//! The paper's model is a *clean* multiple-access channel: collision
//! detection never lies, frames are never lost, nodes never die. This
//! example runs the paper's pipeline on four progressively degraded
//! networks built from the `mac_sim::fault` layers —
//!
//! 1. a clean strong-CD channel (the paper's model),
//! 2. noisy collision detection (5% silence ↔ collision flips),
//! 3. the same noise over a 10% lossy channel,
//! 4. all of that with a crash-stop adversary killing a quarter of the
//!    fleet in the first 20 rounds —
//!
//! and finally pits the protocols against two hopeless radios: the
//! pipeline vs a reactive jammer with an unbounded budget (it detects the
//! dead channel and gives up cleanly), and `Decay` vs a flood jammer
//! drowning the primary channel in every round, where the round-budget
//! watchdog converts the wedged run into a structured `BudgetExhausted`
//! error instead of a hang.

use contention::baselines::Decay;
use contention::{FullAlgorithm, Params};
use mac_sim::adversary::JammedChannel;
use mac_sim::fault::{CrashStop, JamBudget, Layered, LossyChannel, NoisyCd};
use mac_sim::ChannelId;
use mac_sim::{CdMode, Engine, FeedbackModel, Protocol, SimConfig, SimError};

const N: u64 = 1 << 14;
const CHANNELS: u32 = 64;
const ACTIVE: usize = 300;
const BUDGET: u64 = 5_000;
const SEED: u64 = 2016;

fn fleet() -> Vec<FullAlgorithm> {
    (0..ACTIVE)
        .map(|_| FullAlgorithm::new(Params::practical(), CHANNELS, N))
        .collect()
}

fn run_on<P: Protocol, F: FeedbackModel>(label: &str, feedback: F, nodes: Vec<P>) {
    let config = SimConfig::new(CHANNELS).seed(SEED).round_budget(BUDGET);
    let mut engine = Engine::with_feedback(config, feedback);
    for node in nodes {
        engine.add_node(node);
    }
    match engine.run() {
        Ok(report) => match report.rounds_to_solve() {
            Some(rounds) => println!(
                "  {label:<46} solved in {rounds} rounds, {} transmissions",
                report.metrics.transmissions
            ),
            None => println!("  {label:<46} GAVE UP: every node terminated without a solve"),
        },
        Err(SimError::BudgetExhausted { budget, .. }) => {
            println!("  {label:<46} WEDGED: watchdog fired after {budget} rounds")
        }
        Err(e) => println!("  {label:<46} failed: {e}"),
    }
}

fn main() {
    println!(
        "degraded network: n = {N}, C = {CHANNELS}, |A| = {ACTIVE}, \
         round budget {BUDGET}\n"
    );

    run_on(
        "clean strong CD (the paper's model)",
        CdMode::Strong,
        fleet(),
    );
    run_on(
        "5% noisy collision detection",
        Layered::new(NoisyCd::symmetric(0.05), CdMode::Strong),
        fleet(),
    );
    run_on(
        "5% noise over a 10% lossy channel",
        Layered::new(
            NoisyCd::symmetric(0.05),
            Layered::new(LossyChannel::new(0.10), CdMode::Strong),
        ),
        fleet(),
    );
    run_on(
        "noise + loss + 25% of nodes crash by round 20",
        Layered::new(
            NoisyCd::symmetric(0.05),
            Layered::new(
                LossyChannel::new(0.10),
                Layered::new(CrashStop::random(ACTIVE / 4, ACTIVE, 20), CdMode::Strong),
            ),
        ),
        fleet(),
    );
    run_on(
        "pipeline vs unbounded reactive jammer",
        JamBudget::new(CdMode::Strong, u64::MAX),
        fleet(),
    );
    // Decay backs off forever but never gives up, so a flooded primary
    // channel wedges it — the watchdog turns the hang into an error.
    run_on(
        "Decay vs flooded primary channel",
        JammedChannel::new(CdMode::Strong, ChannelId::PRIMARY, 0, u64::MAX),
        (0..ACTIVE).map(|_| Decay::new(N)).collect(),
    );

    println!(
        "\nEvery run above used the same seed: rerun the binary and the numbers\n\
         repeat bit-for-bit — fault injection draws from RNG streams derived\n\
         from the master seed, disjoint from the per-node streams."
    );
}
