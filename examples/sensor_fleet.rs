//! Scenario: a fleet of battery-powered sensors waking at unpredictable
//! times on a multi-channel ISM band.
//!
//! ```text
//! cargo run --release -p contention-bench --example sensor_fleet
//! ```
//!
//! This is the motivating setting for the paper's model: cheap radios *do*
//! have energy-detection hardware (collision detection) and modern bands
//! offer many channels (e.g. 802.15.4 has 16; BLE has 37 data channels).
//! A freshly deployed fleet must elect a coordinator before it can do
//! anything else — i.e. solve contention resolution — and nodes power up
//! whenever their battery latch closes, not simultaneously.
//!
//! The example wraps the paper's full algorithm in the §3 staggered-start
//! transform, wakes sensors in bursts, and reports when the coordinator
//! emerged and how much transmission energy the fleet spent.

use contention::wakeup::StaggeredStart;
use contention::{FullAlgorithm, Params};
use mac_sim::{Engine, SimConfig, StopWhen};

fn main() -> Result<(), mac_sim::SimError> {
    let channels: u32 = 16; // an 802.15.4-style band
    let n: u64 = 1 << 12; // provisioned fleet size
    let seed: u64 = 7;

    // Deployment truck drops sensors in three bursts, 2 rounds apart, plus
    // a few stragglers that boot while the election is already underway.
    let mut wake_schedule: Vec<u64> = Vec::new();
    for burst in 0..3u64 {
        for _ in 0..40 {
            wake_schedule.push(burst * 2);
        }
    }
    wake_schedule.extend([7u64, 8, 9]);

    println!(
        "sensor fleet: {} sensors, {} channels, wake-ups spread over {} rounds\n",
        wake_schedule.len(),
        channels,
        wake_schedule.iter().max().expect("nonempty")
    );

    let config = SimConfig::new(channels)
        .seed(seed)
        .stop_when(StopWhen::Solved)
        .max_rounds(100_000);
    let mut exec = Engine::new(config);
    let mut ids = Vec::new();
    for &wake in &wake_schedule {
        let sensor = StaggeredStart::new(FullAlgorithm::new(Params::practical(), channels, n));
        ids.push(exec.add_node_at(sensor, wake));
    }

    let report = exec.run()?;
    let solved = report.solved_round.expect("fleet elects a coordinator");
    println!("coordinator elected in round {solved}");
    println!(
        "winning transmission by sensor {} (woke in round {})",
        report.solver.expect("solver recorded"),
        wake_schedule[report.solver.expect("solver").0]
    );

    // Energy accounting: how busy was the fleet?
    let max_tx = report.metrics.max_transmissions_per_node();
    println!(
        "\nenergy: {} total transmissions, busiest sensor sent {} frames",
        report.metrics.transmissions, max_tx
    );

    // Late stragglers should have retired without wasting energy.
    let strugglers = &ids[ids.len() - 3..];
    for (idx, id) in strugglers.iter().enumerate() {
        let sensor = exec.node(*id);
        println!(
            "straggler {} (woke round {}): retired early = {}",
            idx,
            wake_schedule[id.0],
            sensor.retired_early()
        );
    }
    Ok(())
}
