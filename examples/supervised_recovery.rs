//! Supervised recovery: restart-with-backoff turns a wedged run into a
//! late solve — when the fault is the kind that drains.
//!
//! ```text
//! cargo run --release -p contention-bench --example supervised_recovery
//! ```
//!
//! A reactive jammer with veto budget `B` silently cancels the first `B`
//! rounds in which the pipeline would have solved. The unsupervised
//! pipeline spends its whole round budget on one attempt, so a handful of
//! vetoes wedge it: the attempt that would have solved is exactly the one
//! the jammer kills. `contention::Supervised` splits the same budget into
//! slices and restarts any node whose attempt exhausts its slice (or
//! reports an invariant violation) from clean state on a fresh derived
//! RNG stream. Every attempt the jammer kills costs it budget, so each
//! restart faces a cleaner channel than the attempt it replaces — the
//! same total rounds, spent on several short attempts instead of one long
//! one, move the breakdown point several-fold (E19 quantifies the curve).
//!
//! The contrast case at the bottom is symmetric CD noise: it is
//! memoryless, a restarted attempt faces exactly the flip probability it
//! just wedged under, and supervision neither helps nor hurts. Restart
//! policies are transient-fault machinery, not a universal shield — see
//! docs/ROBUSTNESS.md.

use contention::phase::PhaseTelemetry;
use contention::supervise::RESTART_MARKER;
use contention::{supervised_paper_node, FullAlgorithm, Params, RestartPolicy};
use mac_sim::fault::{JamBudget, Layered, NoisyCd};
use mac_sim::{CdMode, Engine, FeedbackModel, SimConfig, SimError};

const N: u64 = 1 << 12;
const CHANNELS: u32 = 64;
const ACTIVE: usize = 96;
/// One total round budget for both algorithms: the supervisor gets no
/// extra rounds, only a different spending schedule (4 slices of 250).
const BUDGET: u64 = 1_000;
const SLICE: u64 = 250;
const ATTEMPTS: u32 = 4;
const SEED: u64 = 2016;

fn policy() -> RestartPolicy {
    RestartPolicy::new(SLICE, ATTEMPTS).backoff(1)
}

/// Runs the unsupervised pipeline once; reports solve or wedge.
fn unsupervised<F: FeedbackModel>(label: &str, feedback: F) {
    let config = SimConfig::new(CHANNELS).seed(SEED).round_budget(BUDGET);
    let mut engine = Engine::with_feedback(config, feedback);
    for _ in 0..ACTIVE {
        engine.add_node(FullAlgorithm::new(Params::practical(), CHANNELS, N));
    }
    match engine.run() {
        Ok(report) => match report.rounds_to_solve() {
            Some(rounds) => println!("  {label:<42} solved in {rounds} rounds"),
            None => println!("  {label:<42} GAVE UP without a solve"),
        },
        Err(SimError::BudgetExhausted { budget, .. }) => {
            println!("  {label:<42} WEDGED: one attempt burned all {budget} rounds")
        }
        Err(e) => println!("  {label:<42} failed: {e}"),
    }
}

/// Runs the supervised pipeline once; reports solve (with the solver's
/// restart count read off its telemetry spine) or wedge.
fn supervised<F: FeedbackModel>(label: &str, feedback: F) {
    let config = SimConfig::new(CHANNELS).seed(SEED).round_budget(BUDGET);
    let mut engine = Engine::with_feedback(config, feedback);
    for _ in 0..ACTIVE {
        engine.add_node(supervised_paper_node(
            Params::practical(),
            CHANNELS,
            N,
            policy(),
        ));
    }
    match engine.run() {
        Ok(report) => match (report.solver, report.solved_round) {
            (Some(id), Some(rounds)) => {
                let restarts = engine
                    .node(id)
                    .phase_stats()
                    .iter()
                    .filter(|s| s.name == RESTART_MARKER)
                    .count();
                println!(
                    "  {label:<42} solved in {rounds} rounds after {restarts} solver restart(s)"
                );
            }
            _ => println!("  {label:<42} GAVE UP without a solve"),
        },
        Err(SimError::BudgetExhausted { .. }) => {
            println!("  {label:<42} WEDGED: all {ATTEMPTS} attempts exhausted")
        }
        Err(e) => println!("  {label:<42} failed: {e}"),
    }
}

fn main() {
    println!(
        "supervised recovery: n = {N}, C = {CHANNELS}, |A| = {ACTIVE}, \
         round budget {BUDGET} ({ATTEMPTS} slices of {SLICE} when supervised)\n"
    );

    println!("reactive jammer, veto budget B = 8:");
    unsupervised(
        "one attempt, whole budget",
        JamBudget::new(CdMode::Strong, 8),
    );
    supervised(
        "restart-with-backoff, same budget",
        JamBudget::new(CdMode::Strong, 8),
    );

    println!("\nreactive jammer, veto budget B = 16:");
    unsupervised(
        "one attempt, whole budget",
        JamBudget::new(CdMode::Strong, 16),
    );
    supervised(
        "restart-with-backoff, same budget",
        JamBudget::new(CdMode::Strong, 16),
    );

    // The control: memoryless noise. A restart faces the same flip
    // probability the dead attempt did, so supervision buys nothing here.
    println!("\nsymmetric CD noise, p = 0.7 (memoryless — the control):");
    unsupervised(
        "one attempt, whole budget",
        Layered::new(NoisyCd::symmetric(0.7), CdMode::Strong),
    );
    supervised(
        "restart-with-backoff, same budget",
        Layered::new(NoisyCd::symmetric(0.7), CdMode::Strong),
    );

    println!(
        "\nSame seed, same total budget in every pair: only the spending\n\
         schedule differs. Each jammed attempt the supervisor sacrifices\n\
         drains the jammer's veto budget, so the restart it buys faces a\n\
         cleaner channel; noise has no budget to drain. Rerun the binary\n\
         and every line repeats bit-for-bit."
    );
}
