//! Custom pipeline: composing a hybrid protocol stack out of phases.
//!
//! ```text
//! cargo run --release -p contention-bench --example custom_pipeline
//! ```
//!
//! The paper's Theorem 4 algorithm is a composition of phases —
//! `Reduce → IdReduction → LeafElection` — and `contention::phase` makes
//! that composition operator available to everyone. This example builds a
//! hybrid stack the paper never wrote down:
//!
//! ```text
//! Reduce  →  CdTournament
//! ```
//!
//! knock the contender field down with the paper's multi-channel `Reduce`,
//! then finish on a single channel with the id-free tournament — skipping
//! the renaming and tree-search machinery entirely. The tournament costs
//! `O(log |survivors|)` rounds, so spending `Reduce`'s `O(log n / log C)`
//! rounds first is a sensible engineering trade at moderate `C`.
//!
//! The example then stresses the same stack on faulted radios (the
//! `mac_sim::fault` layers): symmetric collision-detection noise via
//! `fault::Layered`, a `bounded` watchdog that turns a jam-wedged stack
//! into a clean give-up, and the §3 wake-up combinator (`staggered`) over
//! the whole hybrid — phases compose with the fault and wake-up machinery
//! with no engine changes.

use contention::baselines::{CdTournament, Decay};
use contention::phase::{Phase, PhaseProtocol, PhaseTelemetry};
use contention::{FullAlgorithm, Params, Reduce};
use mac_sim::adversary::JammedChannel;
use mac_sim::fault::{Layered, NoisyCd};
use mac_sim::{CdMode, ChannelId, Engine, FeedbackModel, Protocol, SimConfig, SimError};

const N: u64 = 1 << 14;
const CHANNELS: u32 = 32;
const ACTIVE: usize = 300;
const BUDGET: u64 = 5_000;
const SEED: u64 = 4;

/// The hybrid stack: `Reduce` knocks the field down, survivors hand off —
/// at a barrier-synchronized round boundary — to the single-channel
/// tournament. `impl Phase` keeps the combinator type out of sight.
fn hybrid(params: Params, n: u64) -> impl Phase<Output = ()> {
    Reduce::with_params(params, n).and_then(|()| CdTournament::new())
}

fn report_run<P, F>(label: &str, mut engine: Engine<P, F>)
where
    P: Protocol,
    F: FeedbackModel,
{
    match engine.run() {
        Ok(report) => match report.rounds_to_solve() {
            Some(rounds) => println!(
                "  {label:<52} solved in {rounds} rounds, {} transmissions",
                report.metrics.transmissions
            ),
            None => println!("  {label:<52} GAVE UP: all nodes terminated, no solve"),
        },
        Err(SimError::BudgetExhausted { budget, .. }) => {
            println!("  {label:<52} WEDGED: watchdog fired after {budget} rounds")
        }
        Err(e) => println!("  {label:<52} failed: {e}"),
    }
}

fn main() {
    let params = Params::practical();
    println!(
        "custom pipeline: n = {N}, C = {CHANNELS}, |A| = {ACTIVE}, seed {SEED}\n\n\
         clean channel — the hybrid vs its ingredients:"
    );

    // 1. The hybrid stack on the paper's clean strong-CD channel, with the
    //    solver's telemetry spine showing where its rounds went.
    let mut engine = Engine::new(SimConfig::new(CHANNELS).seed(SEED).round_budget(BUDGET));
    for _ in 0..ACTIVE {
        engine.add_node(PhaseProtocol::new(hybrid(params, N)));
    }
    let report = engine.run().expect("clean run solves");
    let rounds = report.rounds_to_solve().expect("solved");
    println!(
        "  {:<52} solved in {rounds} rounds, {} transmissions",
        "Reduce -> CdTournament (hybrid)", report.metrics.transmissions
    );
    if let Some(solver) = report.solver {
        for record in engine.node(solver).phase_stats() {
            println!(
                "      solver spent {:>3} rounds ({} transmissions) in {}",
                record.rounds, record.transmissions, record.name
            );
        }
    }

    // Its two ingredients, for scale: the paper's full pipeline and the
    // tournament alone (which pays lg |A| with the whole field contending).
    let mut full = Engine::new(SimConfig::new(CHANNELS).seed(SEED).round_budget(BUDGET));
    for _ in 0..ACTIVE {
        full.add_node(FullAlgorithm::new(params, CHANNELS, N));
    }
    report_run("full paper pipeline", full);

    let mut alone = Engine::new(SimConfig::new(CHANNELS).seed(SEED).round_budget(BUDGET));
    for _ in 0..ACTIVE {
        alone.add_node(PhaseProtocol::new(CdTournament::new()));
    }
    report_run("CdTournament alone", alone);

    // 2. The same stack under fault::Layered collision-detection noise: a
    //    flipped observation can cost rounds, but modest noise is survivable.
    println!("\nnoisy collision detection (fault::Layered over strong CD):");
    for noise in [0.02, 0.10] {
        let config = SimConfig::new(CHANNELS).seed(SEED).round_budget(BUDGET);
        let feedback = Layered::new(NoisyCd::symmetric(noise), CdMode::Strong);
        let mut engine = Engine::with_feedback(config, feedback);
        for _ in 0..ACTIVE {
            engine.add_node(PhaseProtocol::new(hybrid(params, N)));
        }
        report_run(&format!("hybrid, {:.0}% CD noise", noise * 100.0), engine);
    }

    // 3. The `bounded` watchdog. A jammer owning the primary channel for
    //    the whole run fails the CD-driven stacks *fast* (every listener
    //    hears collisions and knocks itself out — a clean give-up). The
    //    protocol that wedges is `Decay`, which never listens: unbounded,
    //    it spins until the engine's round budget fires; `bounded(1500)`
    //    retires every node first and the run ends in a clean no-solve.
    println!("\nprimary channel jammed for the whole run:");
    let config = SimConfig::new(CHANNELS).seed(SEED).round_budget(BUDGET);
    let jammer = JammedChannel::new(CdMode::Strong, ChannelId::PRIMARY, 0, u64::MAX);
    let mut engine = Engine::with_feedback(config, jammer);
    for _ in 0..ACTIVE {
        engine.add_node(PhaseProtocol::new(hybrid(params, N)));
    }
    report_run("hybrid vs jammer (CD fails fast)", engine);

    let config = SimConfig::new(CHANNELS).seed(SEED).round_budget(BUDGET);
    let jammer = JammedChannel::new(CdMode::Strong, ChannelId::PRIMARY, 0, u64::MAX);
    let mut engine = Engine::with_feedback(config, jammer);
    for _ in 0..ACTIVE {
        engine.add_node(PhaseProtocol::new(Decay::new(N)));
    }
    report_run("Decay (never listens) vs jammer", engine);

    let config = SimConfig::new(CHANNELS).seed(SEED).round_budget(BUDGET);
    let jammer = JammedChannel::new(CdMode::Strong, ChannelId::PRIMARY, 0, u64::MAX);
    let mut engine = Engine::with_feedback(config, jammer);
    for _ in 0..ACTIVE {
        engine.add_node(PhaseProtocol::new(Decay::new(N).bounded(1_500)));
    }
    report_run("Decay.bounded(1500) vs jammer", engine);

    // 4. The §3 wake-up combinator over the whole hybrid: `staggered()`
    //    wraps any composed stack, tolerating adversarial wake offsets at
    //    the usual x2 round cost.
    println!("\nstaggered wake-ups (offsets i mod 5):");
    let mut engine = Engine::new(SimConfig::new(CHANNELS).seed(SEED).round_budget(BUDGET));
    for i in 0..ACTIVE as u64 {
        engine.add_node_at(hybrid(params, N).staggered(), i % 5);
    }
    report_run("hybrid.staggered()", engine);
}
