//! Quickstart: solve contention resolution with the paper's full algorithm.
//!
//! ```text
//! cargo run --release -p contention-bench --example quickstart
//! ```
//!
//! Spins up `|A|` active nodes out of an `n`-node universe on `C` channels
//! with strong collision detection, runs the three-step pipeline
//! (`Reduce → IdReduction → LeafElection`), and prints what happened.

use contention::{FullAlgorithm, Params};
use mac_sim::render::ActivityRecorder;
use mac_sim::{Engine, SimConfig, StopWhen};

fn main() -> Result<(), mac_sim::SimError> {
    let n: u64 = 1 << 14; // universe size (max possible nodes)
    let channels: u32 = 128; // C
    let active: usize = 1_000; // |A|: the adversary's activation choice
    let seed: u64 = 2016; // PODC'16

    println!("contention resolution: n = {n}, C = {channels}, |A| = {active}\n");

    let config = SimConfig::new(channels)
        .seed(seed)
        .stop_when(StopWhen::AllTerminated)
        .max_rounds(100_000);
    let mut exec = Engine::new(config);
    for _ in 0..active {
        exec.add_node(FullAlgorithm::new(Params::practical(), channels, n));
    }

    // Attach a chart-recording observer without enabling trace storage in
    // the engine itself — any EventSink can ride along like this.
    let mut recorder = ActivityRecorder::new();
    let report = exec.run_observed(&mut recorder)?;

    match report.solved_round {
        Some(round) => println!("solved in round {round} (rounds to solve: {})", round + 1),
        None => println!("not solved (this should not happen!)"),
    }
    println!("leader: {:?}", report.leaders.first());
    println!(
        "total transmissions (energy proxy): {}",
        report.metrics.transmissions
    );
    println!("\nrounds per phase:");
    for (phase, rounds) in report.metrics.phases.iter() {
        println!("  {phase:<16} {rounds}");
    }

    println!("\nfirst 60 rounds of channel activity:");
    print!("{}", recorder.chart(60));

    // The theory line this run reproduces (Theorem 4).
    let lg_n = (n as f64).log2();
    let theory = lg_n / f64::from(channels).log2() + lg_n.log2() * lg_n.log2().log2().max(1.0);
    println!(
        "\nTheorem 4 curve (lg n/lg C + lglg n·lglglg n) = {theory:.1}; measured {} rounds",
        report.rounds_to_solve().unwrap_or(0)
    );
    Ok(())
}
