//! Scenario: draining a burst of packets — repeated contention resolution.
//!
//! ```text
//! cargo run --release -p contention-bench --example packet_scheduler
//! ```
//!
//! The original conflict-resolution literature (ALOHA onward) wants every
//! packet delivered, not just one winner. `SerializeAll` lifts the paper's
//! election into exactly that: each epoch elects a sender, the sender
//! delivers in a dedicated ack slot, and the rest re-contend. The paper's
//! multi-channel speed-up then applies *per delivery*.
//!
//! This example drains a 24-packet burst and prints the delivery schedule
//! and per-packet latencies, then compares total drain time against a
//! single-channel tournament serializer on the same burst.

use contention::baselines::CdTournament;
use contention::serialize::SerializeAll;
use contention::{FullAlgorithm, Params};
use mac_sim::{Engine, SimConfig, StopWhen};

// A dense burst (every provisioned node has a packet): the regime where the
// paper's n-indexed knock-out schedule shines. With K << N, the adaptive
// O(log K) tournament wins instead — see the closing note this example
// prints.
const K: usize = 1 << 10;
const N: u64 = 1 << 10;

fn drain_with_pipeline(c: u32, seed: u64) -> (u64, Vec<(u32, u64)>) {
    let cfg = SimConfig::new(c)
        .seed(seed)
        .stop_when(StopWhen::AllTerminated)
        .max_rounds(1_000_000);
    let mut exec = Engine::new(cfg);
    for payload in 0..K as u32 {
        let factory = move || FullAlgorithm::new(Params::practical(), c, N);
        exec.add_node(SerializeAll::new(factory, payload));
    }
    let report = exec.run().expect("drains");
    let mut deliveries: Vec<(u32, u64)> = exec
        .iter_nodes()
        .filter_map(|s| s.served_at().map(|at| (s.payload(), at)))
        .collect();
    deliveries.sort_by_key(|&(_, at)| at);
    (report.rounds_executed, deliveries)
}

fn drain_with_tournament(seed: u64) -> u64 {
    let cfg = SimConfig::new(1)
        .seed(seed)
        .stop_when(StopWhen::AllTerminated)
        .max_rounds(1_000_000);
    let mut exec = Engine::new(cfg);
    for payload in 0..K as u32 {
        exec.add_node(SerializeAll::new(CdTournament::new, payload));
    }
    exec.run().expect("drains").rounds_executed
}

fn main() {
    let c = 64u32;
    let (total, deliveries) = drain_with_pipeline(c, 7);

    println!("packet burst: {K} packets, C = {c} channels, n = {N}\n");
    println!("first deliveries (packet id @ round):");
    for chunk in deliveries.chunks(6).take(4) {
        let line: Vec<String> = chunk
            .iter()
            .map(|(p, at)| format!("#{p:<4}@{at:<5}"))
            .collect();
        println!("  {}", line.join("  "));
    }
    println!("  ... {} more", deliveries.len().saturating_sub(24));

    let gaps: Vec<u64> = deliveries.windows(2).map(|w| w[1].1 - w[0].1).collect();
    let mean_gap = gaps.iter().sum::<u64>() as f64 / gaps.len().max(1) as f64;
    println!(
        "\nall {K} packets drained in {total} rounds ({mean_gap:.1} rounds/packet steady-state)"
    );

    let tournament_total = drain_with_tournament(7);
    println!(
        "single-channel tournament serializer on the same burst: {tournament_total} rounds \
         ({:.2}× slower)",
        tournament_total as f64 / total as f64
    );
    println!(
        "\nnote: the pipeline's per-epoch cost is indexed by n (its knock-out schedule \
         starts at probability 1/n), so it wins dense bursts like this one; for sparse \
         bursts (K << n) the adaptive O(log K) tournament catches up — measure both \
         with your workload before choosing."
    );
}
