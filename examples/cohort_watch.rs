//! Watching coalescing cohorts at work.
//!
//! ```text
//! cargo run --release -p contention-bench --example cohort_watch
//! ```
//!
//! Runs `LeafElection` (the paper's step 3) with channel tracing enabled
//! and narrates the coalescing-cohorts dynamics: how many phases ran, how
//! the per-phase `SplitSearch` cost shrinks as cohorts double (Lemma 16),
//! and which cohort produced the leader.

use contention::LeafElection;
use mac_sim::{Engine, SimConfig, StopWhen, TraceLevel};

fn main() -> Result<(), mac_sim::SimError> {
    let channels: u32 = 256; // tree with 128 leaves, height 7
    let ids: Vec<u32> = vec![
        3, 4, 17, 18, 40, 41, 90, 91, 100, 101, 120, 121, 6, 7, 55, 56,
    ];

    println!(
        "leaf election over a {}-leaf channel tree, {} occupied leaves\n",
        128,
        ids.len()
    );

    let config = SimConfig::new(channels)
        .seed(1)
        .stop_when(StopWhen::AllTerminated)
        .trace_level(TraceLevel::Channels)
        .max_rounds(10_000);
    let mut exec = Engine::new(config);
    let node_ids: Vec<_> = ids
        .iter()
        .map(|&id| exec.add_node(LeafElection::new(channels, id)))
        .collect();

    let report = exec.run()?;
    let winner_id = report.leaders[0];
    let winner = exec.node(winner_id);

    println!(
        "leader: node {} (leaf id {}), elected in round {}",
        winner_id,
        ids[winner_id.0],
        report.solved_round.expect("solved")
    );
    println!(
        "final cohort size {} — it absorbed {} merges\n",
        winner.cohort_size(),
        winner.stats().phases
    );

    println!("per-phase SplitSearch rounds (Lemma 16: ~ (1/i)·log h):");
    for (i, rounds) in winner.stats().search_rounds_by_phase.iter().enumerate() {
        let p = 1u32 << i;
        println!(
            "  phase {:>2} (cohort size {:>3}): {:>3} rounds",
            i + 1,
            p,
            rounds
        );
    }

    // Reconstruct the final cohort roster from node state.
    let mut members: Vec<(u32, u32)> = node_ids
        .iter()
        .enumerate()
        .map(|(i, &nid)| (exec.node(nid).cohort_id(), ids[i]))
        .filter(|_| true)
        .collect();
    members.retain(|&(_, leaf)| {
        let nid = node_ids[ids.iter().position(|&x| x == leaf).expect("present")];
        exec.node(nid).cohort_node() == winner.cohort_node()
            && exec.node(nid).cohort_size() == winner.cohort_size()
    });
    members.sort_unstable();
    println!("\nwinning cohort roster (cID → leaf):");
    for (cid, leaf) in members {
        println!("  cID {cid:>3} → leaf {leaf}");
    }

    println!("\nfirst 12 traced rounds (channel activity):");
    for rt in report.trace.rounds().iter().take(12) {
        print!("  r{:<3} [{}]", rt.round, rt.phase);
        for oc in &rt.outcomes {
            print!("  {oc}");
        }
        println!();
    }

    println!("\nactivity chart (S silence, M message, X collision):");
    print!("{}", mac_sim::render::activity_chart(&report.trace, 40));
    Ok(())
}
