//! Structured run records: span-model telemetry for one faulted run.
//!
//! ```text
//! cargo run --release -p contention-bench --example run_record
//! ```
//!
//! The markdown reports aggregate thousands of trials; this example goes
//! the other way and dissects a *single* run. It attaches a
//! [`mac_sim::obs::RunRecorder`] to the paper's full algorithm running
//! over noisy collision detection (5% silence ↔ collision flips), then
//! prints:
//!
//! 1. the run manifest (algorithm, topology, fault layers, seed) — the
//!    `kind: "manifest"` JSONL record CI stores next to every run,
//! 2. the span tree — each phase of the pipeline as a span with exact
//!    per-phase round, transmission, listen, and wall-clock accounting,
//! 3. the per-channel outcome tallies, and
//! 4. the `kind: "trial"` JSONL line itself, as `obsdiff` consumes it.

use contention::wakeup::StaggeredStart;
use contention::{FullAlgorithm, Params};
use mac_sim::fault::{Layered, NoisyCd};
use mac_sim::obs::{RunManifest, RunRecorder};
use mac_sim::{CdMode, Engine, SimConfig, StopWhen};

const N: u64 = 1 << 12;
const CHANNELS: u32 = 32;
const ACTIVE: usize = 200;
const SEED: u64 = 2016;

fn main() {
    // Run until *every* node terminates (not just the first solo
    // transmission), so the record covers the pipeline's whole journey
    // through its phases rather than stopping at the first solve.
    let config = SimConfig::new(CHANNELS)
        .seed(SEED)
        .stop_when(StopWhen::AllTerminated)
        .max_rounds(1_000_000);
    let noise = Layered::new(NoisyCd::symmetric(0.05), CdMode::Strong);

    let manifest = RunManifest::new("staggered full-algorithm", &config)
        .n(N)
        .active(ACTIVE as u64)
        .fault_layer("NoisyCd::symmetric(0.05) over strong CD")
        .fault_layer("staggered wake-ups, two waves 8 rounds apart")
        .crate_version("contention", env!("CARGO_PKG_VERSION"));
    println!("manifest:\n  {}\n", manifest.to_jsonl_line());

    let mut engine = Engine::with_feedback(config, noise);
    for i in 0..ACTIVE {
        // Wake the fleet in two waves: under staggered starts the
        // pipeline's phases genuinely overlap, which is exactly what the
        // span model exists to show.
        let inner = FullAlgorithm::new(Params::practical(), CHANNELS, N);
        engine.add_node_at(StaggeredStart::new(inner), if i % 2 == 0 { 0 } else { 8 });
    }

    let mut recorder = RunRecorder::new();
    let report = engine.run_observed(&mut recorder).expect("run completes");
    let record = recorder.into_record(SEED);

    match report.rounds_to_solve() {
        Some(rounds) => println!(
            "solved in {rounds} rounds ({} transmissions, {} listens)\n",
            report.metrics.transmissions, report.metrics.listens
        ),
        None => println!("no solve within the round budget\n"),
    }

    println!("span tree:\n{}", record.render_tree());

    println!("per-channel outcomes:");
    for ch in &record.channels {
        println!(
            "  channel {:>2}: {:>6} silences  {:>6} messages  {:>6} collisions",
            ch.channel, ch.silences, ch.messages, ch.collisions
        );
    }

    println!("\ntrial record (JSONL):\n{}", record.to_jsonl_line());
}
