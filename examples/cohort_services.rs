//! Scenario: cohorts as infrastructure — elect, then compute.
//!
//! ```text
//! cargo run --release -p contention-bench --example cohort_services
//! ```
//!
//! The paper's closing conjecture is that coalescing cohorts are useful
//! beyond leader election: a cohort is a ready-made CREW PRAM work group.
//! This example runs the two stages end to end:
//!
//! 1. `LeafElection` coalesces the active nodes; the *winning cohort*
//!    (leader plus its merged partners) survives with distinct cohort ids.
//! 2. That cohort then answers fleet-management questions in `O(log p)`
//!    rounds each, using `CohortAggregate`: how many members, the maximum
//!    battery level, and the total buffered telemetry.
//!
//! The same pattern backs any post-election coordination: the leader knows
//! it has `p` numbered peers and a channel range, which is all a parallel
//! fold needs.

use contention::cohort_compute::{AggregateOp, CohortAggregate};
use contention::LeafElection;
use mac_sim::{ChannelId, Engine, SimConfig, StopWhen};

fn main() -> Result<(), mac_sim::SimError> {
    let channels: u32 = 64; // 32-leaf channel tree

    // Stage 1: election over densely occupied leaves so cohorts coalesce.
    let ids: Vec<u32> = (1..=16).collect();
    let cfg = SimConfig::new(channels)
        .seed(11)
        .stop_when(StopWhen::AllTerminated)
        .max_rounds(10_000);
    let mut exec = Engine::new(cfg);
    let node_ids: Vec<_> = ids
        .iter()
        .map(|&id| exec.add_node(LeafElection::new(channels, id)))
        .collect();
    let report = exec.run()?;
    let winner = exec.node(report.leaders[0]);

    println!(
        "election: leader at leaf {}, winning cohort of {} members, {} rounds\n",
        ids[report.leaders[0].0],
        winner.cohort_size(),
        report.rounds_executed
    );

    // Collect the winning cohort's membership (cID -> leaf id).
    let mut roster: Vec<(u32, u32)> = node_ids
        .iter()
        .enumerate()
        .filter(|(_, &nid)| {
            exec.node(nid).cohort_node() == winner.cohort_node()
                && exec.node(nid).cohort_size() == winner.cohort_size()
        })
        .map(|(i, &nid)| (exec.node(nid).cohort_id(), ids[i]))
        .collect();
    roster.sort_unstable();
    let p = roster.len() as u32;

    // Stage 2: the cohort computes. Synthetic per-member sensor state,
    // keyed by leaf id for reproducibility.
    let battery = |leaf: u32| i64::from((leaf * 37) % 100);
    let buffered = |leaf: u32| i64::from(leaf * 3 + 5);

    type Metric<'a> = &'a dyn Fn(u32) -> i64;
    let queries: Vec<(&str, AggregateOp, Metric<'_>)> = vec![
        ("max battery level", AggregateOp::Max, &battery),
        ("total buffered telemetry", AggregateOp::Sum, &buffered),
        ("member count", AggregateOp::Count, &battery),
    ];
    for (question, op, value) in queries {
        let cfg = SimConfig::new(channels)
            .seed(12)
            .stop_when(StopWhen::AllTerminated)
            .max_rounds(100);
        let mut exec = Engine::new(cfg);
        for &(cid, leaf) in &roster {
            exec.add_node(CohortAggregate::new(
                ChannelId::new(2),
                p,
                cid,
                value(leaf),
                op,
            ));
        }
        let agg_report = exec.run()?;
        let result = exec
            .iter_nodes()
            .next()
            .expect("has members")
            .result()
            .expect("computed");
        println!(
            "{question:<26} = {result:>5}   ({} rounds for p = {p})",
            agg_report.rounds_executed
        );
    }

    println!(
        "\neach query costs ⌈lg p⌉+1 = {} rounds — the cohort structure pays rent \
         long after the election",
        (f64::from(p)).log2().ceil() as u32 + 1
    );
    Ok(())
}
